package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"sketchengine/internal/core"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the serve command writes
// to it from its own goroutine while the test polls String.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var (
	servingAddr = regexp.MustCompile(`serving\taddr=([^\t\n]+)`)
	pprofAddr   = regexp.MustCompile(`pprof\taddr=([^\t\n]+)`)
)

// TestCLIServe drives the serve subcommand end to end: start on a free
// port, ingest over HTTP, search for a hit, stop via the (test-hooked)
// signal context, and load the snapshot the shutdown left behind.
func TestCLIServe(t *testing.T) {
	dir := t.TempDir()
	index := filepath.Join(dir, "index.json")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	oldBase := serveBaseContext
	serveBaseContext = func() context.Context { return ctx }
	defer func() { serveBaseContext = oldBase }()

	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"serve", "-addr", "127.0.0.1:0", "-d", index, "-snapshot-every", "50ms",
			"-pprof-addr", "127.0.0.1:0"},
			&stdout, &stderr)
	}()

	var base, pprofBase string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if m := servingAddr.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
			if p := pprofAddr.FindStringSubmatch(stdout.String()); p != nil {
				pprofBase = "http://" + p[1]
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never reported its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if pprofBase == "" {
		t.Fatalf("serve never reported its pprof address; stdout=%q", stdout.String())
	}

	// The pprof side listener must answer on its own port, keeping
	// profiling off the public mux.
	resp0, err := http.Get(pprofBase + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp0.Body)
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", resp0.StatusCode)
	}

	body := `{"records": [
		{"name": "alpha", "data": "the quick brown fox jumps over the lazy dog and keeps running"},
		{"name": "beta",  "data": "the quick brown fox jumps over the lazy dog and keeps walking"}
	]}`
	resp, err := http.Post(base+"/v1/records", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"added":2`) {
		t.Fatalf("ingest = %d %s", resp.StatusCode, raw)
	}

	resp, err = http.Post(base+"/v1/search", "application/json",
		strings.NewReader(`{"name": "q", "data": "the quick brown fox jumps over the lazy dog and keeps sprinting", "k": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	var search struct {
		Results []struct {
			Ref        string  `json:"ref"`
			Similarity float64 `json:"similarity"`
		} `json:"results"`
	}
	err = json.NewDecoder(resp.Body).Decode(&search)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(search.Results) != 1 || search.Results[0].Similarity <= 0 {
		t.Fatalf("search = %+v, want one similar hit", search)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Stop the server (stands in for SIGTERM) and check the exit path.
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exited %d; stderr=%q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down")
	}

	ix, err := core.Open(index)
	if err != nil {
		t.Fatalf("shutdown snapshot is not loadable: %v", err)
	}
	if ix.Len() != 2 || ix.Get("alpha") == nil || ix.Get("beta") == nil {
		t.Fatalf("snapshot has %d records, want alpha and beta", ix.Len())
	}
}

func TestCLIServeErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unexpected args", []string{"serve", "-addr", "127.0.0.1:0", "extra.txt"}},
		{"bad mode", []string{"serve", "-mode", "fuzzy"}},
		{"bad banding", []string{"serve", "-addr", "127.0.0.1:0", "-d", "/tmp/serve-nope.json", "-bands", "3", "-rows", "5"}},
		{"bad address", []string{"serve", "-addr", "127.0.0.1:99999", "-d", "/tmp/serve-nope.json"}},
		{"unreadable index", []string{"serve", "-addr", "127.0.0.1:0", "-d", "testdata/alpha.txt"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("want nonzero exit, got 0 (stderr: %s)", stderr)
			}
			if stderr == "" {
				t.Fatal("want error message on stderr")
			}
		})
	}
}

package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func testdata(name string) string { return filepath.Join("testdata", name) }

// goldenPipeline drives the full sketch -> search -> dist pipeline over
// committed testdata and compares output against a golden file. Sketch
// hashing is deterministic, so the output is byte-stable. schemeArgs is
// appended to the subcommands that sketch from scratch (sketch, dist);
// search always derives the scheme from the index.
func goldenPipeline(t *testing.T, goldenFile string, schemeArgs ...string) {
	t.Helper()
	dir := t.TempDir()
	index := filepath.Join(dir, "index.json")

	var out strings.Builder

	stdout, stderr, code := runCLI(t, append([]string{"sketch", "-o", index, "-name", "golden"},
		append(schemeArgs, testdata("alpha.txt"), testdata("beta.txt"), testdata("gamma.txt"))...)...)
	if code != 0 {
		t.Fatalf("sketch failed (%d): %s", code, stderr)
	}
	out.WriteString("== sketch ==\n" + stdout)

	// Re-sketching one file must skip it, leaving the index unchanged.
	stdout, stderr, code = runCLI(t, append([]string{"sketch", "-o", index},
		append(schemeArgs, testdata("alpha.txt"))...)...)
	if code != 0 {
		t.Fatalf("incremental sketch failed (%d): %s", code, stderr)
	}
	out.WriteString("== sketch again ==\n" + stdout)

	stdout, stderr, code = runCLI(t, "search", "-d", index, "-top", "2", "-threads", "2",
		testdata("beta.txt"))
	if code != 0 {
		t.Fatalf("search failed (%d): %s", code, stderr)
	}
	out.WriteString("== search ==\n" + stdout)

	stdout, stderr, code = runCLI(t, append([]string{"dist", "-threads", "2"},
		append(schemeArgs, testdata("alpha.txt"), testdata("beta.txt"), testdata("gamma.txt"))...)...)
	if code != 0 {
		t.Fatalf("dist failed (%d): %s", code, stderr)
	}
	out.WriteString("== dist ==\n" + stdout)

	golden := testdata(goldenFile)
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if out.String() != string(want) {
		t.Errorf("CLI output differs from golden file.\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

// TestCLIGolden pins the pipeline output under the default (OPH) scheme.
func TestCLIGolden(t *testing.T) {
	goldenPipeline(t, "cli_golden.txt")
}

// TestCLIGoldenKMH pins the legacy scheme: cli_golden_kmh.txt is the
// byte-for-byte pre-OPH golden file, so `-scheme kmh` proving identical
// output means the legacy path still produces exactly what it did
// before the scheme switch.
func TestCLIGoldenKMH(t *testing.T) {
	goldenPipeline(t, "cli_golden_kmh.txt", "-scheme", "kmh")
}

func TestCLIThreadsFlag(t *testing.T) {
	// Output must be identical regardless of worker count.
	var outputs []string
	for _, threads := range []string{"1", "4"} {
		stdout, stderr, code := runCLI(t, "dist", "-threads", threads,
			testdata("alpha.txt"), testdata("beta.txt"), testdata("gamma.txt"))
		if code != 0 {
			t.Fatalf("dist -threads %s failed (%d): %s", threads, code, stderr)
		}
		outputs = append(outputs, stdout)
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("output depends on thread count:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

// TestCLISearchModesAgree: on the golden corpus, LSH mode must return
// the same top-K output as exact mode, byte for byte.
func TestCLISearchModesAgree(t *testing.T) {
	dir := t.TempDir()
	index := filepath.Join(dir, "index.json")
	if _, stderr, code := runCLI(t, "sketch", "-o", index,
		testdata("alpha.txt"), testdata("beta.txt"), testdata("gamma.txt")); code != 0 {
		t.Fatalf("sketch failed (%d): %s", code, stderr)
	}
	var outputs []string
	for _, mode := range []string{"lsh", "exact"} {
		stdout, stderr, code := runCLI(t, "search", "-d", index, "-top", "2", "-mode", mode,
			testdata("beta.txt"), testdata("alpha.txt"))
		if code != 0 {
			t.Fatalf("search -mode %s failed (%d): %s", mode, code, stderr)
		}
		outputs = append(outputs, stdout)
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("lsh and exact modes disagree:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

// TestCLILSHFlags drives -bands/-rows/-shards through sketch and
// search: a retuned index must keep returning identical results, and
// conflicting flags on an existing index are warned about and ignored.
func TestCLILSHFlags(t *testing.T) {
	dir := t.TempDir()
	index := filepath.Join(dir, "index.json")
	if _, stderr, code := runCLI(t, "sketch", "-o", index, "-bands", "16", "-rows", "8", "-shards", "4",
		testdata("alpha.txt"), testdata("beta.txt"), testdata("gamma.txt")); code != 0 {
		t.Fatalf("sketch failed (%d): %s", code, stderr)
	}
	base, stderr, code := runCLI(t, "search", "-d", index, "-top", "2", testdata("beta.txt"))
	if code != 0 {
		t.Fatalf("search failed (%d): %s", code, stderr)
	}
	// Retune the banding and sharding at search time; results must not
	// change (the fallback guarantees completeness on a 3-record corpus).
	retuned, stderr, code := runCLI(t, "search", "-d", index, "-top", "2",
		"-bands", "64", "-rows", "2", "-shards", "2", testdata("beta.txt"))
	if code != 0 {
		t.Fatalf("retuned search failed (%d): %s", code, stderr)
	}
	if base != retuned {
		t.Fatalf("retuned search differs:\n%s\nvs\n%s", base, retuned)
	}
	// Re-sketching with conflicting LSH flags warns and keeps the
	// index's stored parameters.
	_, stderr, code = runCLI(t, "sketch", "-o", index, "-bands", "32", "-rows", "4",
		testdata("alpha.txt"))
	if code != 0 {
		t.Fatalf("re-sketch failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stderr, "ignoring -bands/-rows/-shards") {
		t.Fatalf("want conflicting-flags warning, got: %q", stderr)
	}
}

// TestCLISchemeFlag drives -scheme end to end: a kmh index keeps
// serving kmh queries, conflicting flags on an existing index warn and
// are ignored, and bad scheme values are rejected.
func TestCLISchemeFlag(t *testing.T) {
	dir := t.TempDir()
	index := filepath.Join(dir, "index.json")
	if _, stderr, code := runCLI(t, "sketch", "-o", index, "-scheme", "kmh",
		testdata("alpha.txt"), testdata("beta.txt")); code != 0 {
		t.Fatalf("sketch -scheme kmh failed (%d): %s", code, stderr)
	}
	// Search derives the scheme from the index; it must hit.
	stdout, stderr, code := runCLI(t, "search", "-d", index, "-top", "1", testdata("beta.txt"))
	if code != 0 {
		t.Fatalf("search on kmh index failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "alpha.txt") {
		t.Fatalf("search on kmh index found no neighbor:\n%s", stdout)
	}
	// Re-sketching with a conflicting -scheme warns and keeps kmh.
	_, stderr, code = runCLI(t, "sketch", "-o", index, "-scheme", "oph", testdata("gamma.txt"))
	if code != 0 {
		t.Fatalf("re-sketch failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stderr, "ignoring -scheme") {
		t.Fatalf("want conflicting-scheme warning, got: %q", stderr)
	}
	// Unknown schemes are rejected up front — including against an
	// existing index, where the stored scheme would otherwise make the
	// flag a silently-ignored typo.
	if _, stderr, code := runCLI(t, "sketch", "-o", filepath.Join(dir, "bad.json"),
		"-scheme", "simhash", testdata("alpha.txt")); code == 0 || !strings.Contains(stderr, "unknown scheme") {
		t.Fatalf("sketch -scheme simhash: code=%d stderr=%q, want unknown-scheme error", code, stderr)
	}
	if _, stderr, code := runCLI(t, "sketch", "-o", index,
		"-scheme", "simhash", testdata("alpha.txt")); code == 0 || !strings.Contains(stderr, "unknown scheme") {
		t.Fatalf("sketch -scheme simhash on existing index: code=%d stderr=%q, want unknown-scheme error", code, stderr)
	}
	if _, stderr, code := runCLI(t, "serve", "-addr", "127.0.0.1:0", "-d", index,
		"-scheme", "simhash"); code == 0 || !strings.Contains(stderr, "unknown scheme") {
		t.Fatalf("serve -scheme simhash: code=%d stderr=%q, want unknown-scheme error", code, stderr)
	}
}

// TestCLIBitsFlag drives -bits end to end: a packed index returns the
// same hits on the golden corpus, `search -v` reports the packed arena
// footprint, conflicting flags on an existing index warn and are
// ignored, and unsupported widths are rejected.
func TestCLIBitsFlag(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	packed := filepath.Join(dir, "packed.json")
	inputs := []string{testdata("alpha.txt"), testdata("beta.txt"), testdata("gamma.txt")}
	if _, stderr, code := runCLI(t, append([]string{"sketch", "-o", full}, inputs...)...); code != 0 {
		t.Fatalf("sketch failed (%d): %s", code, stderr)
	}
	if _, stderr, code := runCLI(t, append([]string{"sketch", "-o", packed, "-bits", "8"}, inputs...)...); code != 0 {
		t.Fatalf("sketch -bits 8 failed (%d): %s", code, stderr)
	}
	// The 8-bit index must return the same neighbors on this tiny corpus
	// (quantized similarities may differ; refs may not).
	want, stderr, code := runCLI(t, "search", "-d", full, "-top", "1", testdata("beta.txt"))
	if code != 0 {
		t.Fatalf("search full failed (%d): %s", code, stderr)
	}
	got, stderr, code := runCLI(t, "search", "-d", packed, "-top", "1", "-v", testdata("beta.txt"))
	if code != 0 {
		t.Fatalf("search packed failed (%d): %s", code, stderr)
	}
	wantRef := strings.Fields(strings.Split(want, "\n")[1])[1]
	gotRef := strings.Fields(strings.Split(got, "\n")[1])[1]
	if wantRef != gotRef {
		t.Fatalf("8-bit index top hit %q, full-width %q", gotRef, wantRef)
	}
	// -v reports the arena memory on stderr: 128 slots at 8 bits is 128
	// bytes per record.
	if !strings.Contains(stderr, "bits=8") || !strings.Contains(stderr, "bytes_per_record=128.0") {
		t.Fatalf("search -v stderr = %q, want arena report with bits=8 bytes_per_record=128.0", stderr)
	}
	// Re-sketching with a conflicting -bits warns and keeps the stored
	// width.
	if _, stderr, code = runCLI(t, "sketch", "-o", packed, "-bits", "16", testdata("alpha.txt")); code != 0 {
		t.Fatalf("re-sketch failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stderr, "ignoring -bits 16") {
		t.Fatalf("want conflicting-bits warning, got: %q", stderr)
	}
	// Unsupported widths are rejected up front.
	if _, stderr, code := runCLI(t, "sketch", "-o", filepath.Join(dir, "bad.json"),
		"-bits", "12", testdata("alpha.txt")); code == 0 || !strings.Contains(stderr, "packing width") {
		t.Fatalf("sketch -bits 12: code=%d stderr=%q, want packing-width error", code, stderr)
	}
}

// TestCLIProfileFlags: -cpuprofile/-memprofile must leave non-empty
// pprof files behind on a successful run.
func TestCLIProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	_, stderr, code := runCLI(t, "dist", "-cpuprofile", cpu, "-memprofile", mem,
		testdata("alpha.txt"), testdata("beta.txt"))
	if code != 0 {
		t.Fatalf("dist with profiles failed (%d): %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// An unwritable profile path fails up front, not silently.
	if _, _, code := runCLI(t, "dist", "-cpuprofile", filepath.Join(dir, "missing", "cpu.pprof"),
		testdata("alpha.txt"), testdata("beta.txt")); code == 0 {
		t.Fatal("unwritable -cpuprofile path: want nonzero exit")
	}
}

func TestCLIErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"unknown command", []string{"frobnicate"}},
		{"sketch no files", []string{"sketch", "-o", "/tmp/nope.json"}},
		{"dist one file", []string{"dist", testdata("alpha.txt")}},
		{"search missing -d", []string{"search", testdata("alpha.txt")}},
		{"search no queries", []string{"search", "-d", testdata("alpha.txt")}},
		{"search bad index", []string{"search", "-d", testdata("alpha.txt"), testdata("beta.txt")}},
		{"missing input", []string{"dist", "testdata/does-not-exist.txt", testdata("alpha.txt")}},
		{"search bad mode", []string{"search", "-d", testdata("alpha.txt"), "-mode", "fuzzy", testdata("beta.txt")}},
		{"sketch bad banding", []string{"sketch", "-o", "/tmp/nope-lsh.json", "-bands", "3", "-rows", "3", testdata("alpha.txt")}},
		{"dist bad scheme", []string{"dist", "-scheme", "bogus", testdata("alpha.txt"), testdata("beta.txt")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("want nonzero exit, got 0 (stderr: %s)", stderr)
			}
			if stderr == "" {
				t.Fatal("want error message on stderr")
			}
		})
	}
}

func TestCLIVersion(t *testing.T) {
	stdout, _, code := runCLI(t, "version")
	if code != 0 || !strings.HasPrefix(stdout, "engine ") {
		t.Fatalf("version: code=%d stdout=%q", code, stdout)
	}
}

func TestCLIDuplicateRecordNames(t *testing.T) {
	// Two paths with the same base name would silently collide; the CLI
	// must reject them.
	dir := t.TempDir()
	dup := filepath.Join(dir, "alpha.txt")
	if err := os.WriteFile(dup, []byte("different content"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runCLI(t, "dist", testdata("alpha.txt"), dup)
	if code == 0 || !strings.Contains(stderr, "duplicate record name") {
		t.Fatalf("want duplicate-name error, got code=%d stderr=%q", code, stderr)
	}
}

// Command engine is the CLI front end of the sketch/index/query engine.
//
// Usage:
//
//	engine sketch -o index.json [flags] file...   sketch files into an index
//	engine dist [flags] file...                   all-vs-all pairwise distances
//	engine search -d index.json [flags] file...   top-K similarity search
//	engine serve -addr :8080 -d index.json        serve the index over HTTP
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"sketchengine/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch argv[0] {
	case "sketch":
		err = cmdSketch(argv[1:], stdout, stderr)
	case "dist":
		err = cmdDist(argv[1:], stdout, stderr)
	case "search":
		err = cmdSearch(argv[1:], stdout, stderr)
	case "serve":
		err = cmdServe(argv[1:], stdout, stderr)
	case "version", "-version", "--version":
		fmt.Fprintf(stdout, "engine %s\n", core.Version)
	case "help", "-h", "-help", "--help":
		usage(stdout)
	default:
		fmt.Fprintf(stderr, "engine: unknown command %q\n", argv[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// Asking for help is not an error; match `engine help`.
			return 0
		}
		if errors.Is(err, errFlagParse) {
			// The FlagSet already reported the problem on stderr.
			return 2
		}
		fmt.Fprintf(stderr, "engine: %v\n", err)
		return 1
	}
	return 0
}

// errFlagParse marks flag-parse failures already reported by the FlagSet.
var errFlagParse = errors.New("flag parse error")

func parseFlags(fs *flag.FlagSet, argv []string) error {
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return errFlagParse
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprint(w, `engine - sketch/index/query engine

Commands:
  sketch   sketch input files into a JSON index (incremental; existing names are skipped)
  dist     all-vs-all pairwise distances between input files
  search   top-K similarity search of query files against a saved index
  serve    long-lived HTTP server: batched ingest, search, stats, snapshots
           (-coordinator scatter-gathers over -backends instead of serving an index)
  version  print the engine version

Run "engine <command> -h" for per-command flags.
`)
}

// newFlagSet returns the FlagSet every subcommand starts from:
// continue-on-error parsing with diagnostics on stderr.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// threadsFlag adds the worker-pool flag shared by every subcommand.
func threadsFlag(fs *flag.FlagSet) *int {
	return fs.Int("threads", 0, "worker pool size (0 = GOMAXPROCS)")
}

// sketchFlags adds the sketching-parameter flags shared by the
// subcommands that may create an index.
func sketchFlags(fs *flag.FlagSet) (k, size, threads *int, scheme *string) {
	k = fs.Int("k", core.DefaultK, "shingle (k-mer) length")
	size = fs.Int("size", core.DefaultSignatureSize, "minhash signature size (slots)")
	threads = threadsFlag(fs)
	scheme = fs.String("scheme", string(core.DefaultScheme),
		"sketch scheme: oph (one-permutation, fast) or kmh (legacy k-minhash)")
	return
}

// profileFlags adds the pprof output flags shared by the one-shot
// subcommands (`serve` exposes net/http/pprof via -pprof-addr instead).
func profileFlags(fs *flag.FlagSet) (cpu, mem *string) {
	cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	mem = fs.String("memprofile", "", "write a heap profile to this file on exit")
	return
}

// withProfiles runs fn between starting a CPU profile and writing a
// heap profile, when the respective paths are non-empty.
func withProfiles(cpu, mem string, fn func() error) error {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if err := fn(); err != nil {
		return err
	}
	if mem != "" {
		f, err := os.Create(mem)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize final live-heap state
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// lshFlags adds the LSH banding / sharding flags shared by sketch and
// search. Zero values mean "use the defaults" (sketch) or "keep the
// index's stored parameters" (search).
func lshFlags(fs *flag.FlagSet) (bands, rows, shards *int) {
	bands = fs.Int("bands", 0, "LSH bands per signature (0 = default; bands*rows must equal -size)")
	rows = fs.Int("rows", 0, "LSH rows per band (0 = default)")
	shards = fs.Int("shards", 0, "index lock-stripe shards (0 = default)")
	return
}

// bitsFlag adds the signature packing width flag shared by the
// subcommands that may create an index (new indexes only; an existing
// index keeps its stored width).
func bitsFlag(fs *flag.FlagSet) *int {
	return fs.Int("bits", core.DefaultBits,
		"signature packing width: 64 (full minhash values), 16, or 8 (b-bit minwise hashing; 4x/8x smaller, tiny accuracy cost)")
}

// tierOpts carries the tiered-storage flag values into loadOrCreateIndex.
type tierOpts struct {
	enabled bool
	dataDir string
	segRows int
	budget  int
}

// tieredFlags adds the tiered-storage flags shared by sketch, search,
// and serve. See "Scaling past RAM" in the README.
func tieredFlags(fs *flag.FlagSet) (tiered *bool, dataDir *string, segRows, budget *int) {
	tiered = fs.Bool("tiered", false,
		"tiered storage: keep a packed prefilter in RAM and full-width signatures in mmap'd segment files under -data-dir")
	dataDir = fs.String("data-dir", "",
		"tiered index directory (MANIFEST.json + segments/); loaded if it holds an index, created or upgraded into with -tiered")
	segRows = fs.Int("segment-rows", 0,
		"records per sealed segment file (0 = default; new tiered indexes only)")
	budget = fs.Int("budget", 0,
		"tiered search: max full-width rescores per shard per query (0 = unbounded, results identical to non-tiered)")
	return
}

// flagWasSet reports whether the user set the named flag explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// tieredBits applies the tiered default packing width: a tiered index
// created without an explicit -bits gets an 8-bit prefilter (the
// memory-saving configuration tiering exists for), while non-tiered
// creation keeps the full-width default.
func tieredBits(fs *flag.FlagSet, bits int, tiered bool) int {
	if tiered && !flagWasSet(fs, "bits") {
		return 8
	}
	return bits
}

// resolveLSH turns the flag values into concrete parameters for a new
// index with signature size sigSize.
func resolveLSH(bands, rows, shards, sigSize int) (core.LSHParams, int, error) {
	lsh := core.DefaultLSHParams(sigSize)
	if bands != 0 || rows != 0 {
		var err error
		if lsh, err = core.NewLSHParams(bands, rows, sigSize); err != nil {
			return core.LSHParams{}, 0, err
		}
	}
	if shards <= 0 {
		shards = core.DefaultShards
	}
	return lsh, shards, nil
}

// warnIgnoredIndexFlags warns about explicitly-set flags that conflict
// with an existing index's stored parameters; the stored parameters
// always win so an index is never silently re-parameterized.
func warnIgnoredIndexFlags(cmd string, fs *flag.FlagSet, meta core.Metadata,
	k, size int, scheme string, bands, rows, shards, bits int, name string, stderr io.Writer) {
	flagSet := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })
	if (flagSet["k"] && meta.K != k) || (flagSet["size"] && meta.SignatureSize != size) {
		fmt.Fprintf(stderr, "engine: %s: existing index %q uses k=%d size=%d; ignoring -k/-size flags\n",
			cmd, meta.Name, meta.K, meta.SignatureSize)
	}
	if flagSet["scheme"] && string(meta.Scheme) != scheme {
		fmt.Fprintf(stderr, "engine: %s: existing index %q uses scheme=%s; ignoring -scheme %s\n",
			cmd, meta.Name, meta.Scheme, scheme)
	}
	if flagSet["bits"] && meta.Bits != bits {
		fmt.Fprintf(stderr, "engine: %s: existing index %q uses bits=%d; ignoring -bits %d\n",
			cmd, meta.Name, meta.Bits, bits)
	}
	if (flagSet["bands"] && meta.Bands != bands) || (flagSet["rows"] && meta.RowsPerBand != rows) ||
		(flagSet["shards"] && meta.Shards != shards) {
		fmt.Fprintf(stderr, "engine: %s: existing index %q uses bands=%d rows=%d shards=%d; ignoring -bands/-rows/-shards flags\n",
			cmd, meta.Name, meta.Bands, meta.RowsPerBand, meta.Shards)
	}
	if flagSet["name"] && meta.Name != name {
		fmt.Fprintf(stderr, "engine: %s: existing index is named %q; ignoring -name %q\n",
			cmd, meta.Name, name)
	}
}

func cmdSketch(argv []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("sketch", stderr)
	k, size, threads, scheme := sketchFlags(fs)
	bands, rows, shards := lshFlags(fs)
	bits := bitsFlag(fs)
	tiered, dataDir, segRows, budget := tieredFlags(fs)
	cpu, mem := profileFlags(fs)
	out := fs.String("o", "index.json", "output index path (loaded first if it exists)")
	name := fs.String("name", "default", "index name (new indexes only)")
	if err := parseFlags(fs, argv); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("sketch: no input files")
	}
	// Validate the scheme up front so a typo fails loudly even when an
	// existing index (whose stored scheme wins) is about to ignore it.
	sch, err := core.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	return withProfiles(*cpu, *mem, func() error {
		ix, err := loadOrCreateIndex(*out, *name, *k, *size, sch, *bands, *rows, *shards,
			tieredBits(fs, *bits, *tiered), tierOpts{*tiered, *dataDir, *segRows, *budget})
		if err != nil {
			return err
		}
		defer ix.Close()
		meta := ix.Metadata()
		warnIgnoredIndexFlags("sketch", fs, meta, *k, *size, *scheme, *bands, *rows, *shards, *bits, *name, stderr)
		eng, err := core.NewEngineWithIndex(ix, *threads)
		if err != nil {
			return err
		}

		recs, err := readRecords(fs.Args())
		if err != nil {
			return err
		}
		// Skip already-indexed names before sketching so incremental runs
		// don't pay the minhash cost for records that will be discarded.
		skipped := 0
		fresh := recs[:0]
		for _, rec := range recs {
			if ix.Has(rec.Name) {
				skipped++
				fmt.Fprintf(stdout, "skip\t%s\t(already indexed)\n", rec.Name)
				continue
			}
			fresh = append(fresh, rec)
		}
		// Batched streaming ingest: sketching and shard inserts both fan
		// out over the worker pool.
		added, err := eng.AddBatch(fresh)
		if err != nil {
			return err
		}
		skipped += len(fresh) - added
		if ix.Tiered() {
			err = ix.SaveDir()
		} else {
			err = ix.SaveFile(*out)
		}
		if err != nil {
			return err
		}
		meta = ix.Metadata()
		fmt.Fprintf(stdout, "index\t%s\trecords=%d\tadded=%d\tskipped=%d\tk=%d\tsize=%d\n",
			meta.Name, meta.RecordCount, added, skipped, meta.K, meta.SignatureSize)
		return nil
	})
}

func cmdDist(argv []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("dist", stderr)
	k, size, threads, scheme := sketchFlags(fs)
	cpu, mem := profileFlags(fs)
	if err := parseFlags(fs, argv); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("dist: need at least two input files")
	}
	sch, err := core.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	return withProfiles(*cpu, *mem, func() error {
		sketcher, err := core.NewSketcherScheme(*k, *size, sch)
		if err != nil {
			return err
		}
		recs, err := readRecords(fs.Args())
		if err != nil {
			return err
		}
		pool := core.NewPool(*threads)
		sketches := make([]*core.Sketch, len(recs))
		pool.Map(len(recs), func(i int) {
			sketches[i] = sketcher.Sketch(recs[i])
		})
		results, err := core.PairwiseDistances(sketches, pool)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "a\tb\tsimilarity\tdistance")
		for _, r := range results {
			fmt.Fprintf(stdout, "%s\t%s\t%.4f\t%.4f\n", r.Query, r.Ref, r.Similarity, r.Distance)
		}
		return nil
	})
}

func cmdSearch(argv []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("search", stderr)
	// No -k/-size/-scheme/-bits here: queries are always sketched with
	// the index's own parameters (see below).
	threads := threadsFlag(fs)
	bands, rows, shards := lshFlags(fs)
	tiered, dataDir, segRows, budget := tieredFlags(fs)
	cpu, mem := profileFlags(fs)
	db := fs.String("d", "", "index file to search (or use -data-dir for a tiered index directory)")
	topK := fs.Int("top", 5, "maximum results per query")
	minSim := fs.Float64("min", 0, "minimum similarity to report")
	modeFlag := fs.String("mode", "lsh", "search mode: lsh (banded candidate filter) or exact (full scan)")
	verbose := fs.Bool("v", false, "report index and arena memory details on stderr")
	if err := parseFlags(fs, argv); err != nil {
		return err
	}
	if *db == "" && *dataDir == "" {
		return fmt.Errorf("search: -d index file (or -data-dir tiered directory) is required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("search: no query files")
	}
	mode, err := core.ParseSearchMode(*modeFlag)
	if err != nil {
		return err
	}
	return withProfiles(*cpu, *mem, func() error {
		ix, err := loadSearchIndex(*db, *dataDir, *tiered, *segRows, *budget)
		if err != nil {
			return err
		}
		defer ix.Close()
		// Band postings are rebuilt from signatures at load time, so the
		// banding scheme and shard count can be retuned per search run
		// without re-sketching.
		if *bands != 0 || *rows != 0 || *shards != 0 {
			meta := ix.Metadata()
			lsh := ix.LSHParams()
			if *bands != 0 || *rows != 0 {
				if lsh, err = core.NewLSHParams(*bands, *rows, meta.SignatureSize); err != nil {
					return fmt.Errorf("search: %w", err)
				}
			}
			n := meta.Shards
			if *shards != 0 {
				n = *shards
			}
			if err := ix.Rebucket(lsh, n); err != nil {
				return fmt.Errorf("search: %w", err)
			}
		}
		// The engine derives sketch parameters (including the scheme)
		// from the index metadata, so queries are always sketched
		// compatibly.
		eng, err := core.NewEngineWithIndex(ix, *threads)
		if err != nil {
			return err
		}
		eng.SetMode(mode)
		if *verbose {
			meta, arena := ix.Metadata(), ix.Arena()
			fmt.Fprintf(stderr, "engine: search: index=%s records=%d bits=%d signature_bytes=%d bytes_per_record=%.1f arena_utilization=%.2f\n",
				meta.Name, meta.RecordCount, arena.Bits, arena.SignatureBytes, arena.BytesPerRecord, arena.Utilization)
			if ts := ix.Tier(); ts != nil {
				fmt.Fprintf(stderr, "engine: search: tier: prefilter_bits=%d segments=%d resident_bytes=%d mapped_bytes=%d head_bytes=%d budget=%d\n",
					ts.PrefilterBits, ts.Segments, ts.ResidentBytes, ts.MappedBytes, ts.HeadBytes, ts.Budget)
			}
		}
		recs, err := readRecords(fs.Args())
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "query\tref\trank\tsimilarity\tdistance")
		for _, rec := range recs {
			results, err := eng.Search(rec, *topK, *minSim)
			if err != nil {
				return err
			}
			for rank, r := range results {
				fmt.Fprintf(stdout, "%s\t%s\t%d\t%.4f\t%.4f\n",
					r.Query, r.Ref, rank+1, r.Similarity, r.Distance)
			}
		}
		return nil
	})
}

// loadSearchIndex resolves the search command's index source: a tiered
// directory when -data-dir points at one, a plain JSON index otherwise.
// With both -d and -tiered -data-dir, the JSON index is migrated into
// the directory and persisted there — the CLI's explicit upgrade path —
// keeping its stored packing width for the prefilter.
func loadSearchIndex(db, dataDir string, tiered bool, segRows, budget int) (*core.Index, error) {
	switch {
	case dataDir != "" && hasManifest(dataDir):
		ix, err := core.Open(dataDir)
		if err != nil {
			return nil, err
		}
		ix.SetBudget(budget)
		return ix, nil
	case dataDir != "":
		if !tiered {
			return nil, fmt.Errorf("search: %s is not a tiered index directory (no %s); pass -tiered with -d to migrate a JSON index into it",
				dataDir, core.ManifestFile)
		}
		if db == "" {
			return nil, fmt.Errorf("search: migrating to a tiered directory needs the source index via -d")
		}
		ix, err := core.Open(db)
		if err != nil {
			return nil, err
		}
		if err := ix.EnableTiered(dataDir, segRows, 0); err != nil {
			return nil, err
		}
		if err := ix.SaveDir(); err != nil {
			ix.Close()
			return nil, err
		}
		ix.SetBudget(budget)
		return ix, nil
	default:
		return core.Open(db)
	}
}

// hasManifest reports whether dir holds a committed tiered index. The
// manifest rename is the commit point, so its presence is the test;
// core.Open handles everything after that.
func hasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, core.ManifestFile))
	return err == nil
}

func loadOrCreateIndex(path, name string, k, size int, scheme core.Scheme, bands, rows, shards, bits int, t tierOpts) (*core.Index, error) {
	if t.enabled && t.dataDir == "" {
		return nil, fmt.Errorf("index: -tiered requires -data-dir")
	}
	// An existing tiered directory wins over everything: it IS the index.
	if t.dataDir != "" && hasManifest(t.dataDir) {
		ix, err := core.Open(t.dataDir)
		if err != nil {
			return nil, err
		}
		ix.SetBudget(t.budget)
		return ix, nil
	}
	if t.dataDir != "" && !t.enabled {
		return nil, fmt.Errorf("index: %s is not a tiered index directory (no %s); create one by adding -tiered",
			t.dataDir, core.ManifestFile)
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		lsh, n, rerr := resolveLSH(bands, rows, shards, size)
		if rerr != nil {
			return nil, rerr
		}
		ix, nerr := core.NewIndexWith(name, k, size, scheme, lsh, n, bits)
		if nerr != nil {
			return nil, nerr
		}
		if t.enabled {
			if terr := ix.EnableTiered(t.dataDir, t.segRows, 0); terr != nil {
				return nil, terr
			}
			ix.SetBudget(t.budget)
		}
		return ix, nil
	}
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	ix, err := core.LoadIndex(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if t.enabled {
		// First tiered run over a legacy JSON index: migrate it into the
		// data directory (lossless re-truncation from full-width slots).
		// The JSON file is left behind untouched; from the next run on,
		// the directory is the index.
		if err := ix.EnableTiered(t.dataDir, t.segRows, bits); err != nil {
			return nil, err
		}
		ix.SetBudget(t.budget)
	}
	return ix, nil
}

// readRecords loads each path as one record named by its base name.
func readRecords(paths []string) ([]core.Record, error) {
	recs := make([]core.Record, 0, len(paths))
	seen := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		name := filepath.Base(p)
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("duplicate record name %q (from %s and %s)", name, prev, p)
		}
		seen[name] = p
		recs = append(recs, core.Record{Name: name, Data: data})
	}
	return recs, nil
}

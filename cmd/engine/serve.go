package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sketchengine/internal/cluster"
	"sketchengine/internal/core"
	"sketchengine/internal/fault"
	"sketchengine/internal/server"
)

// serveBaseContext is the parent of the serve loop's signal context.
// Tests override it to stop a running serve command without delivering
// real signals to the test process.
var serveBaseContext = context.Background

func cmdServe(argv []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("serve", stderr)
	k, size, threads, scheme := sketchFlags(fs)
	bands, rows, shards := lshFlags(fs)
	bits := bitsFlag(fs)
	tiered, dataDir, segRows, budget := tieredFlags(fs)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	pprofAddr := fs.String("pprof-addr", "",
		"listen address for net/http/pprof (e.g. 127.0.0.1:6060; empty disables)")
	coordinator := fs.Bool("coordinator", false,
		"run as a cluster coordinator: serve no local index, scatter-gather over -backends")
	backends := fs.String("backends", "",
		"comma-separated backend addresses (host:port,...) for -coordinator mode")
	replication := fs.Int("replication", cluster.DefaultReplication,
		"backends holding each record in -coordinator mode (writes need a majority)")
	fanoutTimeout := fs.Duration("fanout-timeout", cluster.DefaultFanoutTimeout,
		"per-backend request timeout inside a coordinator fan-out")
	healthEvery := fs.Duration("health-every", cluster.DefaultHealthInterval,
		"coordinator backend health probe interval")
	hintsDir := fs.String("hints-dir", "",
		"coordinator hinted-handoff directory: durable hints for replicas that miss quorum-acked writes (empty keeps hints in memory)")
	hintTTL := fs.Duration("hint-ttl", cluster.DefaultHintTTL,
		"how long a queued hint waits for its backend before expiring")
	repairEvery := fs.Duration("repair-every", 0,
		"coordinator anti-entropy repair sweep interval (0 disables; POST /v1/admin/repair always works)")
	db := fs.String("d", "index.json", "index file: loaded if present, created otherwise, and the snapshot destination")
	name := fs.String("name", "default", "index name (new indexes only)")
	modeFlag := fs.String("mode", "lsh", "default search mode: lsh or exact (requests may override)")
	snapEvery := fs.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval (0 disables; shutdown always snapshots)")
	maxInFlight := fs.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently served requests")
	maxBatch := fs.Int("max-batch", server.DefaultMaxBatch, "max records per ingest request and per coalesced index batch")
	queueDepth := fs.Int("queue-depth", server.DefaultQueueDepth, "ingest queue capacity, in pending requests")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "max request body size in bytes")
	drain := fs.Duration("drain-timeout", server.DefaultDrainTimeout, "how long shutdown waits for in-flight requests")
	faultSpec := fs.String("fault-spec", "",
		"chaos-testing only: arm fault injection, e.g. \"backend.rt:error=0.1;wal.fsync:fail-once\" (see docs/API.md)")
	faultSeed := fs.Int64("fault-seed", 1, "seed for -fault-spec probability rolls, for exact replay of a schedule")
	if err := parseFlags(fs, argv); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %q (records are ingested over HTTP, not the command line)", fs.Args())
	}
	if *faultSpec != "" {
		plan, err := fault.Parse(*faultSpec, *faultSeed)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		fault.Enable(plan)
		fmt.Fprintf(stderr, "engine: serve: FAULT INJECTION ARMED spec=%q seed=%d (test tooling; disarm by restarting without -fault-spec)\n",
			*faultSpec, *faultSeed)
	}
	if *coordinator {
		cfg := cluster.Config{
			Addr:           *addr,
			Replication:    *replication,
			FanoutTimeout:  *fanoutTimeout,
			HealthInterval: *healthEvery,
			HintsDir:       *hintsDir,
			HintTTL:        *hintTTL,
			RepairInterval: *repairEvery,
			MaxInFlight:    *maxInFlight,
			MaxBatch:       *maxBatch,
			MaxBodyBytes:   *maxBody,
			DrainTimeout:   *drain,
		}
		return serveCoordinator(fs, cfg, *backends, *pprofAddr, stdout, stderr)
	}
	if *backends != "" {
		return fmt.Errorf("serve: -backends requires -coordinator")
	}
	for flagName, v := range map[string]bool{"hints-dir": *hintsDir != "", "hint-ttl": *hintTTL != cluster.DefaultHintTTL, "repair-every": *repairEvery != 0} {
		if v {
			return fmt.Errorf("serve: -%s requires -coordinator", flagName)
		}
	}
	mode, err := core.ParseSearchMode(*modeFlag)
	if err != nil {
		return err
	}
	// Validate the scheme up front so a typo fails loudly even when an
	// existing index (whose stored scheme wins) is about to ignore it.
	sch, err := core.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	ix, err := loadOrCreateIndex(*db, *name, *k, *size, sch, *bands, *rows, *shards,
		tieredBits(fs, *bits, *tiered), tierOpts{*tiered, *dataDir, *segRows, *budget})
	if err != nil {
		return err
	}
	defer ix.Close()
	meta := ix.Metadata()
	warnIgnoredIndexFlags("serve", fs, meta, *k, *size, *scheme, *bands, *rows, *shards, *bits, *name, stderr)
	eng, err := core.NewEngineWithIndex(ix, *threads)
	if err != nil {
		return err
	}
	eng.SetMode(mode)
	if *pprofAddr != "" {
		stop, bound, err := servePprof(*pprofAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(stdout, "pprof\taddr=%s\n", bound)
	}
	// Tiered indexes snapshot into their data directory (sealing new
	// segments, rewriting the small manifest); the -d JSON path is then
	// unused as a snapshot destination.
	indexPath, snapDest := *db, *db
	if ix.Tiered() {
		indexPath, snapDest = "", ix.DataDir()
	}
	srv, err := server.New(eng, server.Config{
		Addr:          *addr,
		IndexPath:     indexPath,
		DataDir:       ix.DataDir(),
		SnapshotEvery: *snapEvery,
		MaxInFlight:   *maxInFlight,
		MaxBatch:      *maxBatch,
		MaxBodyBytes:  *maxBody,
		QueueDepth:    *queueDepth,
		DrainTimeout:  *drain,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "engine: serve: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	bound, err := srv.Listen()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serving\taddr=%s\tindex=%s\trecords=%d\tmode=%s\tsnapshot=%s\n",
		bound, meta.Name, ix.Len(), mode, snapDest)
	ctx, stop := signal.NotifyContext(serveBaseContext(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Serve(ctx)
}

// serveCoordinator is the -coordinator branch of cmdServe: it builds a
// cluster.Coordinator over the parsed backend list instead of loading
// an index, and mirrors the single-node serve lifecycle (serving line,
// pprof side listener, signal-driven drain).
func serveCoordinator(fs *flag.FlagSet, cfg cluster.Config, backends, pprofAddr string,
	stdout, stderr io.Writer) error {
	for _, part := range strings.Split(backends, ",") {
		if part = strings.TrimSpace(part); part != "" {
			cfg.Backends = append(cfg.Backends, part)
		}
	}
	if len(cfg.Backends) == 0 {
		return fmt.Errorf("serve: -coordinator requires -backends host1:port,host2:port,...")
	}
	if len(cfg.Backends) < cfg.Replication {
		return fmt.Errorf("serve: -replication %d needs at least that many backends, got %d",
			cfg.Replication, len(cfg.Backends))
	}
	// Index flags are meaningless without an index; catch the ones a
	// single-node invocation would care about so a copy-pasted command
	// line fails loudly instead of silently dropping its index.
	ignored := map[string]bool{"d": true, "tiered": true, "data-dir": true, "snapshot-every": true,
		"queue-depth": true, "mode": true, "name": true}
	var bad []string
	fs.Visit(func(f *flag.Flag) {
		if ignored[f.Name] {
			bad = append(bad, "-"+f.Name)
		}
	})
	if len(bad) > 0 {
		fmt.Fprintf(stderr, "engine: serve: warning: %s ignored in -coordinator mode (the coordinator owns no index)\n",
			strings.Join(bad, ", "))
	}
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(stderr, "engine: serve: "+format+"\n", args...)
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	if pprofAddr != "" {
		stop, bound, err := servePprof(pprofAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(stdout, "pprof\taddr=%s\n", bound)
	}
	bound, err := coord.Listen()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serving\taddr=%s\tcoordinator=true\tbackends=%d\treplication=%d\tquorum=%d\n",
		bound, len(cfg.Backends), coord.Ring().Replication(), cfg.Replication/2+1)
	ctx, stop := signal.NotifyContext(serveBaseContext(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return coord.Serve(ctx)
}

// servePprof mounts the net/http/pprof handlers on their own listener,
// kept off the service mux so profiling endpoints are never reachable
// through the public address. It returns a stop function and the bound
// address (useful with port 0).
func servePprof(addr string) (stop func(), bound net.Addr, err error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("pprof: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	go func() {
		// Serve exits with an "use of closed connection" error when the
		// stop closure closes the listener; nothing to report.
		_ = http.Serve(lis, mux) //nolint:gosec // profiling side channel, bounded by -pprof-addr choice
	}()
	return func() { lis.Close() }, lis.Addr(), nil
}

package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sketchengine/internal/core"
	"sketchengine/internal/server"
)

// serveBaseContext is the parent of the serve loop's signal context.
// Tests override it to stop a running serve command without delivering
// real signals to the test process.
var serveBaseContext = context.Background

func cmdServe(argv []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("serve", stderr)
	k, size, threads := sketchFlags(fs)
	bands, rows, shards := lshFlags(fs)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	db := fs.String("d", "index.json", "index file: loaded if present, created otherwise, and the snapshot destination")
	name := fs.String("name", "default", "index name (new indexes only)")
	modeFlag := fs.String("mode", "lsh", "default search mode: lsh or exact (requests may override)")
	snapEvery := fs.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval (0 disables; shutdown always snapshots)")
	maxInFlight := fs.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently served requests")
	maxBatch := fs.Int("max-batch", server.DefaultMaxBatch, "max records per ingest request and per coalesced index batch")
	queueDepth := fs.Int("queue-depth", server.DefaultQueueDepth, "ingest queue capacity, in pending requests")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "max request body size in bytes")
	drain := fs.Duration("drain-timeout", server.DefaultDrainTimeout, "how long shutdown waits for in-flight requests")
	if err := parseFlags(fs, argv); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %q (records are ingested over HTTP, not the command line)", fs.Args())
	}
	mode, err := core.ParseSearchMode(*modeFlag)
	if err != nil {
		return err
	}
	ix, err := loadOrCreateIndex(*db, *name, *k, *size, *bands, *rows, *shards)
	if err != nil {
		return err
	}
	meta := ix.Metadata()
	warnIgnoredIndexFlags("serve", fs, meta, *k, *size, *bands, *rows, *shards, *name, stderr)
	eng, err := core.NewEngineWithIndex(ix, *threads)
	if err != nil {
		return err
	}
	eng.SetMode(mode)
	srv, err := server.New(eng, server.Config{
		Addr:          *addr,
		IndexPath:     *db,
		SnapshotEvery: *snapEvery,
		MaxInFlight:   *maxInFlight,
		MaxBatch:      *maxBatch,
		MaxBodyBytes:  *maxBody,
		QueueDepth:    *queueDepth,
		DrainTimeout:  *drain,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "engine: serve: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	bound, err := srv.Listen()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serving\taddr=%s\tindex=%s\trecords=%d\tmode=%s\tsnapshot=%s\n",
		bound, meta.Name, ix.Len(), mode, *db)
	ctx, stop := signal.NotifyContext(serveBaseContext(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Serve(ctx)
}

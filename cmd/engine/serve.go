package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sketchengine/internal/core"
	"sketchengine/internal/server"
)

// serveBaseContext is the parent of the serve loop's signal context.
// Tests override it to stop a running serve command without delivering
// real signals to the test process.
var serveBaseContext = context.Background

func cmdServe(argv []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("serve", stderr)
	k, size, threads, scheme := sketchFlags(fs)
	bands, rows, shards := lshFlags(fs)
	bits := bitsFlag(fs)
	tiered, dataDir, segRows, budget := tieredFlags(fs)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	pprofAddr := fs.String("pprof-addr", "",
		"listen address for net/http/pprof (e.g. 127.0.0.1:6060; empty disables)")
	db := fs.String("d", "index.json", "index file: loaded if present, created otherwise, and the snapshot destination")
	name := fs.String("name", "default", "index name (new indexes only)")
	modeFlag := fs.String("mode", "lsh", "default search mode: lsh or exact (requests may override)")
	snapEvery := fs.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval (0 disables; shutdown always snapshots)")
	maxInFlight := fs.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently served requests")
	maxBatch := fs.Int("max-batch", server.DefaultMaxBatch, "max records per ingest request and per coalesced index batch")
	queueDepth := fs.Int("queue-depth", server.DefaultQueueDepth, "ingest queue capacity, in pending requests")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "max request body size in bytes")
	drain := fs.Duration("drain-timeout", server.DefaultDrainTimeout, "how long shutdown waits for in-flight requests")
	if err := parseFlags(fs, argv); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %q (records are ingested over HTTP, not the command line)", fs.Args())
	}
	mode, err := core.ParseSearchMode(*modeFlag)
	if err != nil {
		return err
	}
	// Validate the scheme up front so a typo fails loudly even when an
	// existing index (whose stored scheme wins) is about to ignore it.
	sch, err := core.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	ix, err := loadOrCreateIndex(*db, *name, *k, *size, sch, *bands, *rows, *shards,
		tieredBits(fs, *bits, *tiered), tierOpts{*tiered, *dataDir, *segRows, *budget})
	if err != nil {
		return err
	}
	defer ix.Close()
	meta := ix.Metadata()
	warnIgnoredIndexFlags("serve", fs, meta, *k, *size, *scheme, *bands, *rows, *shards, *bits, *name, stderr)
	eng, err := core.NewEngineWithIndex(ix, *threads)
	if err != nil {
		return err
	}
	eng.SetMode(mode)
	if *pprofAddr != "" {
		stop, bound, err := servePprof(*pprofAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(stdout, "pprof\taddr=%s\n", bound)
	}
	// Tiered indexes snapshot into their data directory (sealing new
	// segments, rewriting the small manifest); the -d JSON path is then
	// unused as a snapshot destination.
	indexPath, snapDest := *db, *db
	if ix.Tiered() {
		indexPath, snapDest = "", ix.DataDir()
	}
	srv, err := server.New(eng, server.Config{
		Addr:          *addr,
		IndexPath:     indexPath,
		DataDir:       ix.DataDir(),
		SnapshotEvery: *snapEvery,
		MaxInFlight:   *maxInFlight,
		MaxBatch:      *maxBatch,
		MaxBodyBytes:  *maxBody,
		QueueDepth:    *queueDepth,
		DrainTimeout:  *drain,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "engine: serve: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	bound, err := srv.Listen()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serving\taddr=%s\tindex=%s\trecords=%d\tmode=%s\tsnapshot=%s\n",
		bound, meta.Name, ix.Len(), mode, snapDest)
	ctx, stop := signal.NotifyContext(serveBaseContext(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Serve(ctx)
}

// servePprof mounts the net/http/pprof handlers on their own listener,
// kept off the service mux so profiling endpoints are never reachable
// through the public address. It returns a stop function and the bound
// address (useful with port 0).
func servePprof(addr string) (stop func(), bound net.Addr, err error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("pprof: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	go func() {
		// Serve exits with an "use of closed connection" error when the
		// stop closure closes the listener; nothing to report.
		_ = http.Serve(lis, mux) //nolint:gosec // profiling side channel, bounded by -pprof-addr choice
	}()
	return func() { lis.Close() }, lis.Addr(), nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLITiered drives the out-of-core flags end to end: creating a
// tiered index with sketch, searching it through -data-dir, and
// checking the results are byte-identical to the plain JSON index over
// the same corpus (the tier is a storage change, not a ranking change).
func TestCLITiered(t *testing.T) {
	dir := t.TempDir()
	index := filepath.Join(dir, "index.json")
	dataDir := filepath.Join(dir, "tiered")
	inputs := []string{testdata("alpha.txt"), testdata("beta.txt"), testdata("gamma.txt")}

	if _, stderr, code := runCLI(t, append([]string{"sketch", "-o", index}, inputs...)...); code != 0 {
		t.Fatalf("plain sketch failed (%d): %s", code, stderr)
	}
	if _, stderr, code := runCLI(t, append([]string{"sketch", "-tiered", "-data-dir", dataDir,
		"-segment-rows", "2", "-o", filepath.Join(dir, "unused.json")}, inputs...)...); code != 0 {
		t.Fatalf("tiered sketch failed (%d): %s", code, stderr)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "MANIFEST.json")); err != nil {
		t.Fatalf("tiered sketch wrote no manifest: %v", err)
	}

	plain, stderr, code := runCLI(t, "search", "-d", index, "-top", "2", testdata("beta.txt"))
	if code != 0 {
		t.Fatalf("plain search failed (%d): %s", code, stderr)
	}
	tiered, stderr, code := runCLI(t, "search", "-data-dir", dataDir, "-top", "2", testdata("beta.txt"))
	if code != 0 {
		t.Fatalf("tiered search failed (%d): %s", code, stderr)
	}
	if plain != tiered {
		t.Fatalf("tiered search output differs from plain:\n%s\nvs\n%s", tiered, plain)
	}

	// Incremental tiered sketch: re-running over the same inputs skips
	// everything and leaves the index intact.
	stdout, stderr, code := runCLI(t, append([]string{"sketch", "-tiered", "-data-dir", dataDir,
		"-o", filepath.Join(dir, "unused.json")}, inputs...)...)
	if code != 0 {
		t.Fatalf("incremental tiered sketch failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "records=3") || !strings.Contains(stdout, "added=0") {
		t.Fatalf("incremental tiered sketch output: %s", stdout)
	}

	// -v surfaces the tier line (resident vs mapped bytes) on stderr.
	if _, stderr, code = runCLI(t, "search", "-data-dir", dataDir, "-v", testdata("beta.txt")); code != 0 {
		t.Fatalf("verbose tiered search failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stderr, "resident_bytes=") || !strings.Contains(stderr, "mapped_bytes=") {
		t.Fatalf("search -v on tiered index did not report tier bytes: %s", stderr)
	}
}

// TestCLITieredMigration: pointing search at a legacy JSON index with
// -tiered -data-dir upgrades it into a v5 directory on the spot; later
// runs load the directory directly and the JSON file is left behind
// untouched.
func TestCLITieredMigration(t *testing.T) {
	dir := t.TempDir()
	index := filepath.Join(dir, "index.json")
	dataDir := filepath.Join(dir, "tiered")
	inputs := []string{testdata("alpha.txt"), testdata("beta.txt"), testdata("gamma.txt")}

	if _, stderr, code := runCLI(t, append([]string{"sketch", "-o", index}, inputs...)...); code != 0 {
		t.Fatalf("sketch failed (%d): %s", code, stderr)
	}
	before, err := os.ReadFile(index)
	if err != nil {
		t.Fatal(err)
	}
	plain, stderr, code := runCLI(t, "search", "-d", index, "-top", "2", testdata("gamma.txt"))
	if code != 0 {
		t.Fatalf("plain search failed (%d): %s", code, stderr)
	}

	migrated, stderr, code := runCLI(t, "search", "-d", index, "-tiered", "-data-dir", dataDir,
		"-top", "2", testdata("gamma.txt"))
	if code != 0 {
		t.Fatalf("migrating search failed (%d): %s", code, stderr)
	}
	if migrated != plain {
		t.Fatalf("migration changed search output:\n%s\nvs\n%s", migrated, plain)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "MANIFEST.json")); err != nil {
		t.Fatalf("migration wrote no manifest: %v", err)
	}
	after, err := os.ReadFile(index)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("migration modified the legacy JSON index")
	}

	// The upgraded directory now stands on its own.
	again, stderr, code := runCLI(t, "search", "-data-dir", dataDir, "-top", "2", testdata("gamma.txt"))
	if code != 0 {
		t.Fatalf("post-migration search failed (%d): %s", code, stderr)
	}
	if again != plain {
		t.Fatalf("post-migration search output differs:\n%s\nvs\n%s", again, plain)
	}
}

// TestCLITieredErrors pins the flag-validation failure modes.
func TestCLITieredErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]string{
		"tiered without data-dir": {"sketch", "-tiered", "-o", filepath.Join(dir, "x.json"), testdata("alpha.txt")},
		"data-dir without tiered": {"sketch", "-data-dir", filepath.Join(dir, "nothere"),
			"-o", filepath.Join(dir, "y.json"), testdata("alpha.txt")},
		"search empty data-dir": {"search", "-data-dir", filepath.Join(dir, "missing"), testdata("alpha.txt")},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if _, stderr, code := runCLI(t, args...); code == 0 {
				t.Fatalf("%v succeeded, want error; stderr: %s", args, stderr)
			}
		})
	}
}

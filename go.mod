module sketchengine

go 1.24

// Package fault is a seeded, rule-based fault-injection subsystem for
// chaos testing. Production code is instrumented with named faultpoints
// (Check for disk paths, RoundTripper for HTTP transports); each point
// is evaluated against a parsed spec of rules like
//
//	backend.rt:error=0.1;wal.fsync:fail-once;backend.rt:delay=50ms@0.2
//
// The evaluation PRNG is seeded explicitly, so a failing schedule is
// replayed exactly by re-running with the same seed and spec. When no
// plan is enabled every faultpoint collapses to a single atomic nil
// check, so the hooks cost nothing in production builds.
//
// The package is test-and-operator tooling: the only way to arm it in a
// server binary is the explicit -fault-spec flag, and an armed plan
// advertises itself in /stats and /metrics so an injected fault can
// never be mistaken for a real one.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rule kinds. Disk points treat every terminal kind as "fail the
// operation with an injected error"; the HTTP RoundTripper maps each
// kind to a distinct transport failure mode.
const (
	KindDelay    = "delay"     // add latency before the operation
	KindError    = "error"     // HTTP: synthesized 503; disk: operation fails
	KindReset    = "reset"     // HTTP: connection reset (transport error)
	KindTorn     = "torn"      // HTTP: truncated response body; disk: fails
	KindFailOnce = "fail-once" // fail exactly the first evaluation, then disarm
)

// rule is one parsed clause of a fault spec.
type rule struct {
	point string
	kind  string
	prob  float64       // probability the rule fires per evaluation
	delay time.Duration // KindDelay only
	fired atomic.Bool   // KindFailOnce: set once consumed
	count atomic.Int64  // times this rule fired
}

// Plan is a parsed fault spec plus the seeded PRNG that drives it.
// A Plan is safe for concurrent evaluation.
type Plan struct {
	Seed int64
	Spec string

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string][]*rule
	order []*rule // spec order, for stable counter output
}

// Decision is the outcome of evaluating a faultpoint: an optional
// delay plus at most one terminal fault kind.
type Decision struct {
	Point string
	Delay time.Duration
	Kind  string // "" when no terminal fault fired
}

// InjectedError marks an error as fault-injected so tests (and humans
// reading logs) can tell it apart from an organic failure.
type InjectedError struct {
	Point string
	Kind  string
}

func (e *InjectedError) Error() string {
	return "fault: injected " + e.Kind + " at " + e.Point
}

// Parse compiles a spec string against a seed. Clauses are separated
// by ';'; each clause is name:kind[=param][@prob]. For delay the param
// is a duration ("50ms"); for error/reset/torn it is the probability
// (equivalent to @prob); fail-once takes no param. Probability
// defaults to 1.
func Parse(spec string, seed int64) (*Plan, error) {
	p := &Plan{
		Seed:  seed,
		Spec:  spec,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string][]*rule),
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		p.rules[r.point] = append(p.rules[r.point], r)
		p.order = append(p.order, r)
	}
	if len(p.order) == 0 {
		return nil, fmt.Errorf("fault: empty spec")
	}
	return p, nil
}

func parseClause(clause string) (*rule, error) {
	name, rest, ok := strings.Cut(clause, ":")
	name = strings.TrimSpace(name)
	rest = strings.TrimSpace(rest)
	if !ok || name == "" || rest == "" {
		return nil, fmt.Errorf("fault: clause %q: want name:kind[=param][@prob]", clause)
	}
	// Split off @prob first so "delay=50ms@0.2" parses cleanly.
	rest, probStr, hasProb := strings.Cut(rest, "@")
	kind, param, hasParam := strings.Cut(rest, "=")
	kind = strings.TrimSpace(kind)
	r := &rule{point: name, kind: kind, prob: 1}
	if hasProb {
		v, err := strconv.ParseFloat(strings.TrimSpace(probStr), 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("fault: clause %q: bad probability %q", clause, probStr)
		}
		r.prob = v
	}
	switch kind {
	case KindDelay:
		if !hasParam {
			return nil, fmt.Errorf("fault: clause %q: delay needs a duration", clause)
		}
		d, err := time.ParseDuration(strings.TrimSpace(param))
		if err != nil || d < 0 {
			return nil, fmt.Errorf("fault: clause %q: bad duration %q", clause, param)
		}
		r.delay = d
	case KindError, KindReset, KindTorn:
		if hasParam {
			if hasProb {
				return nil, fmt.Errorf("fault: clause %q: both =prob and @prob", clause)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(param), 64)
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("fault: clause %q: bad probability %q", clause, param)
			}
			r.prob = v
		}
	case KindFailOnce:
		if hasParam {
			return nil, fmt.Errorf("fault: clause %q: fail-once takes no param", clause)
		}
	default:
		return nil, fmt.Errorf("fault: clause %q: unknown kind %q", clause, kind)
	}
	return r, nil
}

// active is the globally armed plan. Nil means every faultpoint is a
// single atomic load and an untaken branch.
var active atomic.Pointer[Plan]

// Enable arms a plan globally. Passing nil disarms.
func Enable(p *Plan) {
	if p == nil {
		active.Store(nil)
		return
	}
	active.Store(p)
}

// Disable disarms fault injection.
func Disable() { active.Store(nil) }

// Active returns the armed plan, or nil.
func Active() *Plan { return active.Load() }

// Point evaluates a named faultpoint against the armed plan. It
// returns nil when no plan is armed or no rule fires — the fast path.
func Point(name string) *Decision {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.evaluate(name)
}

// Check evaluates a faultpoint for a disk-style operation: any fired
// delay is slept inline and any terminal kind becomes an error.
func Check(name string) error {
	d := Point(name)
	if d == nil {
		return nil
	}
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Kind == "" {
		return nil
	}
	return &InjectedError{Point: name, Kind: d.Kind}
}

func (p *Plan) evaluate(name string) *Decision {
	rules := p.rules[name]
	if len(rules) == 0 {
		return nil
	}
	var dec *Decision
	for _, r := range rules {
		if r.kind == KindFailOnce {
			if !r.fired.CompareAndSwap(false, true) {
				continue
			}
		} else if r.prob < 1 {
			p.mu.Lock()
			roll := p.rng.Float64()
			p.mu.Unlock()
			if roll >= r.prob {
				continue
			}
		}
		r.count.Add(1)
		if dec == nil {
			dec = &Decision{Point: name}
		}
		if r.kind == KindDelay {
			dec.Delay += r.delay
			continue
		}
		if dec.Kind == "" {
			dec.Kind = r.kind // first terminal kind wins
		}
	}
	return dec
}

// Counters returns fired-rule counts keyed "point:kind", sorted keys
// merged (two rules with the same point and kind share a key).
func (p *Plan) Counters() map[string]int64 {
	out := make(map[string]int64, len(p.order))
	for _, r := range p.order {
		out[r.point+":"+r.kind] += r.count.Load()
	}
	return out
}

// CounterKeys returns the sorted key set of Counters, for stable
// metrics output.
func (p *Plan) CounterKeys() []string {
	seen := make(map[string]bool, len(p.order))
	var keys []string
	for _, r := range p.order {
		k := r.point + ":" + r.kind
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Injected reports the total number of fired rules across the plan.
func (p *Plan) Injected() int64 {
	var n int64
	for _, r := range p.order {
		n += r.count.Load()
	}
	return n
}

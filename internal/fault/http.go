package fault

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"time"
)

// RoundTripper wraps an http.RoundTripper with a faultpoint evaluated
// once per request. Fault kinds map to transport failure modes:
//
//	delay — sleep before forwarding (canceled by the request context)
//	reset, fail-once — the request fails with a transport error, as if
//	  the connection were reset mid-flight
//	error — a synthesized 503 response (the backend "answered" with a
//	  server error; no bytes reach the real backend)
//	torn — the real response's body is truncated mid-stream
type RoundTripper struct {
	Point string
	Base  http.RoundTripper
}

func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	d := Point(rt.Point)
	if d == nil {
		return rt.Base.RoundTrip(req)
	}
	if d.Delay > 0 {
		t := time.NewTimer(d.Delay)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	switch d.Kind {
	case KindReset, KindFailOnce:
		// Drain nothing; fail as the transport would on a reset peer.
		return nil, &InjectedError{Point: rt.Point, Kind: d.Kind}
	case KindError:
		body := `{"error":{"code":"internal","message":"fault: injected 503"}}`
		resp := &http.Response{
			StatusCode:    http.StatusServiceUnavailable,
			Status:        "503 Service Unavailable",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
		return resp, nil
	}
	resp, err := rt.Base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.Kind == KindTorn {
		// Let roughly half the advertised body through, then cut the
		// stream so the caller sees a mid-body EOF.
		limit := int64(64)
		if resp.ContentLength > 1 {
			limit = resp.ContentLength / 2
		}
		resp.Body = &tornBody{rc: resp.Body, remain: limit, point: rt.Point}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

type tornBody struct {
	rc     io.ReadCloser
	remain int64
	point  string
}

func (t *tornBody) Read(p []byte) (int, error) {
	if t.remain <= 0 {
		return 0, &InjectedError{Point: t.point, Kind: KindTorn}
	}
	if int64(len(p)) > t.remain {
		p = p[:t.remain]
	}
	n, err := t.rc.Read(p)
	t.remain -= int64(n)
	if err == nil && t.remain <= 0 {
		err = &InjectedError{Point: t.point, Kind: KindTorn}
	}
	return n, err
}

func (t *tornBody) Close() error { return t.rc.Close() }

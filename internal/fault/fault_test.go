package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                        // empty spec
		";;",                      // only empty clauses
		"wal.fsync",               // no kind
		"wal.fsync:",              // empty kind
		":error",                  // empty name
		"wal.fsync:explode",       // unknown kind
		"wal.fsync:delay",         // delay without duration
		"wal.fsync:delay=banana",  // bad duration
		"wal.fsync:delay=-5ms",    // negative duration
		"wal.fsync:error=2",       // prob > 1
		"wal.fsync:error=-0.1",    // prob < 0
		"wal.fsync:error=0.5@0.5", // both =prob and @prob
		"wal.fsync:error@nope",    // bad @prob
		"wal.fsync:fail-once=1",   // fail-once takes no param
	}
	for _, spec := range cases {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseAccepts(t *testing.T) {
	p, err := Parse("backend.rt:error=0.1; wal.fsync:fail-once ;backend.rt:delay=50ms@0.2", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.order) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(p.order))
	}
	keys := p.CounterKeys()
	want := []string{"backend.rt:delay", "backend.rt:error", "wal.fsync:fail-once"}
	if len(keys) != len(want) {
		t.Fatalf("CounterKeys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("CounterKeys = %v, want %v", keys, want)
		}
	}
}

func TestSeededReplay(t *testing.T) {
	run := func(seed int64) []bool {
		p, err := Parse("p:error=0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.evaluate("p") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at evaluation %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-roll schedule (suspicious)")
	}
}

func TestFailOnce(t *testing.T) {
	p, err := Parse("wal.fsync:fail-once", 1)
	if err != nil {
		t.Fatal(err)
	}
	Enable(p)
	defer Disable()
	err = Check("wal.fsync")
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != "wal.fsync" || inj.Kind != KindFailOnce {
		t.Fatalf("first Check = %v, want injected fail-once", err)
	}
	for i := 0; i < 8; i++ {
		if err := Check("wal.fsync"); err != nil {
			t.Fatalf("Check %d after fail-once fired = %v, want nil", i, err)
		}
	}
	if got := p.Counters()["wal.fsync:fail-once"]; got != 1 {
		t.Fatalf("fail-once fired %d times, want 1", got)
	}
}

func TestDisarmedFastPath(t *testing.T) {
	Disable()
	if Point("anything") != nil {
		t.Fatal("Point with no armed plan must be nil")
	}
	if err := Check("anything"); err != nil {
		t.Fatalf("Check with no armed plan = %v, want nil", err)
	}
	if Active() != nil {
		t.Fatal("Active with no armed plan must be nil")
	}
}

func TestUnmatchedPointIsFree(t *testing.T) {
	p, err := Parse("other.point:error", 1)
	if err != nil {
		t.Fatal(err)
	}
	Enable(p)
	defer Disable()
	if err := Check("wal.fsync"); err != nil {
		t.Fatalf("Check on an unmatched point = %v, want nil", err)
	}
	if p.Injected() != 0 {
		t.Fatal("unmatched point must not count an injection")
	}
}

func TestDelayAccumulatesAndCounts(t *testing.T) {
	p, err := Parse("p:delay=1ms;p:delay=2ms;p:error", 1)
	if err != nil {
		t.Fatal(err)
	}
	d := p.evaluate("p")
	if d == nil || d.Delay != 3*time.Millisecond || d.Kind != KindError {
		t.Fatalf("decision = %+v, want 3ms delay + error", d)
	}
	if p.Injected() != 3 {
		t.Fatalf("Injected = %d, want 3", p.Injected())
	}
}

func TestRoundTripperError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	p, err := Parse("backend.rt:error", 1)
	if err != nil {
		t.Fatal(err)
	}
	Enable(p)
	defer Disable()
	rt := &RoundTripper{Point: "backend.rt", Base: http.DefaultTransport}
	hc := &http.Client{Transport: rt}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected error status = %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"error"`) {
		t.Fatalf("injected 503 body = %s, want an error envelope", body)
	}
}

func TestRoundTripperReset(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	p, err := Parse("backend.rt:reset", 1)
	if err != nil {
		t.Fatal(err)
	}
	Enable(p)
	defer Disable()
	hc := &http.Client{Transport: &RoundTripper{Point: "backend.rt", Base: http.DefaultTransport}}
	_, err = hc.Get(ts.URL)
	if err == nil {
		t.Fatal("injected reset must surface as a transport error")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Kind != KindReset {
		t.Fatalf("reset error = %v, want InjectedError{reset}", err)
	}
}

func TestRoundTripperTorn(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(payload))
	}))
	defer ts.Close()
	p, err := Parse("backend.rt:torn", 1)
	if err != nil {
		t.Fatal(err)
	}
	Enable(p)
	defer Disable()
	hc := &http.Client{Transport: &RoundTripper{Point: "backend.rt", Base: http.DefaultTransport}}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("torn body must end in an error, not EOF")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Kind != KindTorn {
		t.Fatalf("torn read error = %v, want InjectedError{torn}", err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("torn body delivered %d of %d bytes; it must truncate", len(got), len(payload))
	}
}

func TestRoundTripperDelayRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	p, err := Parse("backend.rt:delay=10s", 1)
	if err != nil {
		t.Fatal(err)
	}
	Enable(p)
	defer Disable()
	hc := &http.Client{
		Transport: &RoundTripper{Point: "backend.rt", Base: http.DefaultTransport},
		Timeout:   50 * time.Millisecond,
	}
	start := time.Now()
	_, err = hc.Get(ts.URL)
	if err == nil {
		t.Fatal("want timeout error through an injected 10s delay")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay ignored the request context: took %v", elapsed)
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"sketchengine/internal/server"
)

// Error codes the coordinator adds to the envelope vocabulary.
const (
	// CodeBackendDown: no backend could serve the request at all.
	CodeBackendDown = "backend_down"
	// CodeQuorumFailed: a write reached fewer than quorum replicas for
	// at least one record; the envelope's Records list names them.
	CodeQuorumFailed = "quorum_failed"
	// CodeRebucketFailed: the coordinator could not apply a rebucket on
	// every backend; the envelope's Records list names the failures by
	// backend address.
	CodeRebucketFailed = "rebucket_failed"
)

// placementFor returns name's write set: the authoritative (old-ring)
// replicas, plus — while a join/drain streams — the extra replicas the
// target ring adds, so a mid-migration write can never miss its new
// home. Quorum is counted on the authoritative set only.
func (c *Coordinator) placementFor(ring, next *Ring, name string) (primary, extras []string) {
	primary = ring.Replicas(name)
	if next == nil {
		return primary, nil
	}
	for _, addr := range next.Replicas(name) {
		if !contains(primary, addr) {
			extras = append(extras, addr)
		}
	}
	return primary, extras
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// handleIngest fans one ingest batch out by replica set: each backend
// receives a single sub-batch holding every record it replicates, so a
// request costs at most one POST per backend no matter how the ring
// scatters the records. A record is acknowledged only when a write
// quorum (majority) of its replicas acked its sub-batch; records below
// quorum are reported individually in a quorum_failed envelope. Acked
// records are durable on every replica that succeeded — a quorum
// failure never rolls anything back. Replicas that missed an acked
// record get a hinted handoff: the drainer replays the write once the
// backend is healthy again.
func (c *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	c.metrics.ingestRequests.Add(1)
	release := c.acquireFanout()
	if release == nil {
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeOverloaded,
			fmt.Sprintf("ingest: coordinator at fan-out capacity (%d); retry later", c.cfg.MaxFanout))
		return
	}
	defer release()
	var req server.IngestRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "ingest: no records in request")
		return
	}
	if len(req.Records) > c.cfg.MaxBatch {
		server.WriteError(w, http.StatusRequestEntityTooLarge, server.CodePayloadTooLarge,
			fmt.Sprintf("ingest: batch of %d records exceeds the %d-record limit", len(req.Records), c.cfg.MaxBatch))
		return
	}
	for i, rec := range req.Records {
		if rec.Name == "" {
			server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
				fmt.Sprintf("ingest: record %d has an empty name", i))
			return
		}
	}

	// Group records into one sub-batch per backend. Writes go to every
	// replica regardless of health state: the probe view may lag, and a
	// down replica simply counts as a failed ack (and earns a hint).
	type subBatch struct {
		b    *backend
		pos  map[int]int // request record index -> index in req.Records slice
		req  server.IngestRequest
		resp server.IngestResponse
		err  error
	}
	ring, next := c.rings()
	batches := make(map[string]*subBatch)
	replicas := make([][]string, len(req.Records)) // authoritative set per record
	extras := make([][]string, len(req.Records))   // migration-target additions
	addTo := func(i int, rec server.IngestRecord, addr string) {
		sb, ok := batches[addr]
		if !ok {
			sb = &subBatch{b: c.lookup(addr), pos: make(map[int]int)}
			sb.req.Detailed = true
			batches[addr] = sb
		}
		sb.pos[i] = len(sb.req.Records)
		sb.req.Records = append(sb.req.Records, rec)
	}
	for i, rec := range req.Records {
		replicas[i], extras[i] = c.placementFor(ring, next, rec.Name)
		for _, addr := range replicas[i] {
			addTo(i, rec, addr)
		}
		for _, addr := range extras[i] {
			addTo(i, rec, addr)
		}
		c.metrics.recordsRouted.Add(int64(len(replicas[i]) + len(extras[i])))
	}

	var wg sync.WaitGroup
	for _, sb := range batches {
		sb.b.routedRecords.Add(int64(len(sb.req.Records)))
		wg.Add(1)
		go func(sb *subBatch) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.FanoutTimeout)
			defer cancel()
			sb.err = c.client.do(ctx, sb.b, "POST", "/v1/records", &sb.req, &sb.resp)
			if sb.err == nil && len(sb.resp.Results) != len(sb.req.Records) {
				sb.err = fmt.Errorf("backend %s: ingest response lists %d results for %d records",
					sb.b.addr, len(sb.resp.Results), len(sb.req.Records))
			}
		}(sb)
	}
	wg.Wait()

	quorum := c.quorum()
	resp := server.IngestResponse{Received: len(req.Records)}
	var failures []server.RecordError
	hintsByAddr := make(map[string][]hint)
	expires := time.Now().Add(c.cfg.HintTTL).UnixNano()
	for i, rec := range req.Records {
		acks, added := 0, false
		var replicaErrs []string
		var missed []string
		for _, addr := range replicas[i] {
			sb := batches[addr]
			if sb.err != nil {
				replicaErrs = append(replicaErrs, sb.err.Error())
				missed = append(missed, addr)
				continue
			}
			acks++
			if sb.resp.Results[sb.pos[i]] {
				added = true
			}
		}
		if acks < quorum {
			failures = append(failures, server.RecordError{
				Name: rec.Name,
				Code: CodeBackendDown,
				Message: fmt.Sprintf("%d/%d replicas acked (need %d): %s",
					acks, len(replicas[i]), quorum, strings.Join(replicaErrs, "; ")),
			})
			continue
		}
		// The record is acked. Queue a hint for every replica that
		// missed it — authoritative or migration-target — so the write
		// catches up with the backend instead of waiting for a sweep.
		for _, addr := range extras[i] {
			if batches[addr].err != nil {
				missed = append(missed, addr)
			}
		}
		for _, addr := range missed {
			hintsByAddr[addr] = append(hintsByAddr[addr], hint{op: hintOpAdd, name: rec.Name, data: rec.Data, expires: expires})
		}
		// A record counts as added if any acking replica had not seen the
		// name before; replicas disagree only after a past partial write,
		// and "added somewhere" is the honest summary then.
		if added {
			resp.Added++
		} else {
			resp.Skipped++
		}
	}
	c.queueHints(hintsByAddr)
	if len(failures) > 0 {
		c.metrics.quorumFailures.Add(int64(len(failures)))
		server.WriteErrorDetail(w, http.StatusBadGateway, server.ErrorDetail{
			Code: CodeQuorumFailed,
			Message: fmt.Sprintf("%d of %d records missed their write quorum; records not listed were acked and are durable on their replicas",
				len(failures), len(req.Records)),
			Records: failures,
		})
		return
	}
	if req.Detailed {
		// Mirror the single-node contract for detailed callers: one flag
		// per request record. Recompute from the replica responses.
		resp.Results = make([]bool, len(req.Records))
		for i := range req.Records {
			for _, addr := range replicas[i] {
				sb := batches[addr]
				if sb.err == nil && sb.resp.Results[sb.pos[i]] {
					resp.Results[i] = true
					break
				}
			}
		}
	}
	server.WriteJSON(w, http.StatusOK, resp)
}

// queueHints enqueues one request's hints, one durable append per
// backend. Enqueue failures only cost convergence speed (the sweep is
// the backstop), so they are logged, never surfaced to the writer —
// its quorum already held.
func (c *Coordinator) queueHints(byAddr map[string][]hint) {
	for addr, hs := range byAddr {
		if err := c.hints.enqueue(addr, hs...); err != nil {
			c.logf("hint enqueue for %s: %v", addr, err)
		}
	}
}

// handleDeleteRecord routes a delete to the record's replica set. The
// outcome follows the same quorum rule as ingest: with a majority of
// replicas responding, at least one 200 means deleted and unanimous
// 404s mean the record was never indexed; below quorum the truth is
// unknowable and the client gets quorum_failed with the record
// itemized, exactly like a failed ingest. Replicas that missed an
// acknowledged delete get a tombstone hint.
func (c *Coordinator) handleDeleteRecord(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	release := c.acquireFanout()
	if release == nil {
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeOverloaded,
			fmt.Sprintf("delete: coordinator at fan-out capacity (%d); retry later", c.cfg.MaxFanout))
		return
	}
	defer release()
	ring, next := c.rings()
	primary, extras := c.placementFor(ring, next, name)
	targets := append(append([]string(nil), primary...), extras...)
	type result struct {
		addr string
		err  error
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for i, addr := range targets {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.FanoutTimeout)
			defer cancel()
			results[i] = result{addr: b.addr, err: c.client.do(ctx, b, "DELETE", "/v1/records/"+url.PathEscape(name), nil, nil)}
		}(i, c.lookup(addr))
	}
	wg.Wait()

	deleted, notFound := 0, 0
	var replicaErrs []string
	var missed []string
	for i, res := range results {
		authoritative := i < len(primary)
		var berr *BackendError
		switch {
		case res.err == nil:
			if authoritative {
				deleted++
			}
		case errors.As(res.err, &berr) && berr.Status == http.StatusNotFound:
			if authoritative {
				notFound++
			}
		default:
			if authoritative {
				replicaErrs = append(replicaErrs, res.err.Error())
			}
			missed = append(missed, res.addr)
		}
	}
	if deleted+notFound < c.quorum() {
		c.metrics.quorumFailures.Add(1)
		msg := fmt.Sprintf("%d/%d replicas responded (need %d): %s",
			deleted+notFound, len(primary), c.quorum(), strings.Join(replicaErrs, "; "))
		server.WriteErrorDetail(w, http.StatusBadGateway, server.ErrorDetail{
			Code:    CodeQuorumFailed,
			Message: fmt.Sprintf("delete %q: %s", name, msg),
			Records: []server.RecordError{{Name: name, Code: CodeBackendDown, Message: msg}},
		})
		return
	}
	if deleted == 0 {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound, fmt.Sprintf("record %q is not indexed", name))
		return
	}
	// The delete is acknowledged: hint the tombstone to every replica
	// that missed it so it cannot resurrect the record on recovery.
	if len(missed) > 0 {
		expires := time.Now().Add(c.cfg.HintTTL).UnixNano()
		hs := make([]hint, 0, len(missed))
		for range missed {
			hs = append(hs, hint{op: hintOpDelete, name: name, expires: expires})
		}
		byAddr := make(map[string][]hint, len(missed))
		for i, addr := range missed {
			byAddr[addr] = append(byAddr[addr], hs[i])
		}
		c.queueHints(byAddr)
	}
	c.metrics.deletes.Add(1)
	server.WriteJSON(w, http.StatusOK, server.DeleteResponse{Deleted: name})
}

// handleGetRecord tries the record's replicas in ring order and
// returns the first hit. A 404 from one replica is not authoritative —
// it may have missed a quorum write the others took — so the lookup
// only reports not_found after every replica has answered 404. A hit
// found after another replica 404ed is replica disagreement: the name
// goes to the read-repair queue.
func (c *Coordinator) handleGetRecord(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ring, next := c.rings()
	primary, extras := c.placementFor(ring, next, name)
	saw404 := false
	var lastErr error
	for _, addr := range append(append([]string(nil), primary...), extras...) {
		b := c.lookup(addr)
		if b == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.FanoutTimeout)
		var rec server.RecordResponse
		err := c.client.do(ctx, b, "GET", "/v1/records/"+url.PathEscape(name), nil, &rec)
		cancel()
		if err == nil {
			if saw404 {
				c.repairs.offer(name)
			}
			server.WriteJSON(w, http.StatusOK, rec)
			return
		}
		var berr *BackendError
		if errors.As(err, &berr) && berr.Status == http.StatusNotFound {
			saw404 = true
			continue
		}
		lastErr = err
	}
	if saw404 && lastErr == nil {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound, fmt.Sprintf("record %q is not indexed", name))
		return
	}
	server.WriteError(w, http.StatusBadGateway, CodeBackendDown,
		fmt.Sprintf("record %q: no replica could answer: %v", name, lastErr))
}

// handleRebucket fans a rebucket out to every backend: a banding
// scheme is a fleet-wide property — backends disagreeing on bands
// would make per-backend LSH recall uneven — so the call succeeds only
// when every backend applied it. Failures are itemized per backend in
// the envelope, addressed by backend address.
func (c *Coordinator) handleRebucket(w http.ResponseWriter, r *http.Request) {
	var req server.RebucketRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	backends := c.backendList()
	type result struct {
		b    *backend
		resp server.RebucketResponse
		err  error
	}
	results := make([]result, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.FanoutTimeout)
			defer cancel()
			results[i] = result{b: b}
			results[i].err = c.client.do(ctx, b, "POST", "/v1/admin/rebucket", &req, &results[i].resp)
		}(i, b)
	}
	wg.Wait()

	var failures []server.RecordError
	agg := server.RebucketResponse{}
	applied := false
	for _, res := range results {
		if res.err != nil {
			code := CodeBackendDown
			var berr *BackendError
			if errors.As(res.err, &berr) && berr.Code != "" {
				code = berr.Code
			}
			failures = append(failures, server.RecordError{Name: res.b.addr, Code: code, Message: res.err.Error()})
			continue
		}
		if !applied {
			agg.Bands, agg.RowsPerBand, agg.Shards = res.resp.Bands, res.resp.RowsPerBand, res.resp.Shards
			applied = true
		}
		agg.Records += res.resp.Records
	}
	if len(failures) > 0 {
		server.WriteErrorDetail(w, http.StatusBadGateway, server.ErrorDetail{
			Code: CodeRebucketFailed,
			Message: fmt.Sprintf("rebucket: %d of %d backends failed; backends not listed have applied the new scheme",
				len(failures), len(backends)),
			Records: failures,
		})
		return
	}
	server.WriteJSON(w, http.StatusOK, agg)
}

// decodeBody mirrors the single-node server's body handling: size cap,
// strict JSON, trailing-garbage rejection.
func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			server.WriteError(w, http.StatusRequestEntityTooLarge, server.CodePayloadTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("malformed JSON body: %v", err))
		return false
	}
	if dec.More() {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "malformed JSON body: trailing data")
		return false
	}
	return true
}

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"sketchengine/internal/server"
)

// Error codes the coordinator adds to the envelope vocabulary.
const (
	// CodeBackendDown: no backend could serve the request at all.
	CodeBackendDown = "backend_down"
	// CodeQuorumFailed: a write reached fewer than quorum replicas for
	// at least one record; the envelope's Records list names them.
	CodeQuorumFailed = "quorum_failed"
)

// handleIngest fans one ingest batch out by replica set: each backend
// receives a single sub-batch holding every record it replicates, so a
// request costs at most one POST per backend no matter how the ring
// scatters the records. A record is acknowledged only when a write
// quorum (majority) of its replicas acked its sub-batch; records below
// quorum are reported individually in a quorum_failed envelope. Acked
// records are durable on every replica that succeeded — a quorum
// failure never rolls anything back.
func (c *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	c.metrics.ingestRequests.Add(1)
	var req server.IngestRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "ingest: no records in request")
		return
	}
	if len(req.Records) > c.cfg.MaxBatch {
		server.WriteError(w, http.StatusRequestEntityTooLarge, server.CodePayloadTooLarge,
			fmt.Sprintf("ingest: batch of %d records exceeds the %d-record limit", len(req.Records), c.cfg.MaxBatch))
		return
	}
	for i, rec := range req.Records {
		if rec.Name == "" {
			server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
				fmt.Sprintf("ingest: record %d has an empty name", i))
			return
		}
	}

	// Group records into one sub-batch per backend. Writes go to every
	// replica regardless of health state: the probe view may lag, and a
	// down replica simply counts as a failed ack.
	type subBatch struct {
		b    *backend
		pos  map[int]int // request record index -> index in req.Records slice
		req  server.IngestRequest
		resp server.IngestResponse
		err  error
	}
	batches := make(map[string]*subBatch)
	replicas := make([][]string, len(req.Records))
	var scratch []string
	for i, rec := range req.Records {
		scratch = c.ring.ReplicasAppend(scratch[:0], rec.Name)
		replicas[i] = append([]string(nil), scratch...)
		for _, addr := range scratch {
			sb, ok := batches[addr]
			if !ok {
				sb = &subBatch{b: c.byAddr[addr], pos: make(map[int]int)}
				sb.req.Detailed = true
				batches[addr] = sb
			}
			sb.pos[i] = len(sb.req.Records)
			sb.req.Records = append(sb.req.Records, rec)
		}
		c.metrics.recordsRouted.Add(int64(len(scratch)))
	}

	var wg sync.WaitGroup
	for _, sb := range batches {
		sb.b.routedRecords.Add(int64(len(sb.req.Records)))
		wg.Add(1)
		go func(sb *subBatch) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.FanoutTimeout)
			defer cancel()
			sb.err = c.client.do(ctx, sb.b, "POST", "/v1/records", &sb.req, &sb.resp)
			if sb.err == nil && len(sb.resp.Results) != len(sb.req.Records) {
				sb.err = fmt.Errorf("backend %s: ingest response lists %d results for %d records",
					sb.b.addr, len(sb.resp.Results), len(sb.req.Records))
			}
		}(sb)
	}
	wg.Wait()

	quorum := c.quorum()
	resp := server.IngestResponse{Received: len(req.Records)}
	var failures []server.RecordError
	for i, rec := range req.Records {
		acks, added := 0, false
		var replicaErrs []string
		for _, addr := range replicas[i] {
			sb := batches[addr]
			if sb.err != nil {
				replicaErrs = append(replicaErrs, sb.err.Error())
				continue
			}
			acks++
			if sb.resp.Results[sb.pos[i]] {
				added = true
			}
		}
		if acks < quorum {
			failures = append(failures, server.RecordError{
				Name: rec.Name,
				Code: CodeBackendDown,
				Message: fmt.Sprintf("%d/%d replicas acked (need %d): %s",
					acks, len(replicas[i]), quorum, strings.Join(replicaErrs, "; ")),
			})
			continue
		}
		// A record counts as added if any acking replica had not seen the
		// name before; replicas disagree only after a past partial write,
		// and "added somewhere" is the honest summary then.
		if added {
			resp.Added++
		} else {
			resp.Skipped++
		}
	}
	if len(failures) > 0 {
		c.metrics.quorumFailures.Add(int64(len(failures)))
		server.WriteErrorDetail(w, http.StatusBadGateway, server.ErrorDetail{
			Code: CodeQuorumFailed,
			Message: fmt.Sprintf("%d of %d records missed their write quorum; records not listed were acked and are durable on their replicas",
				len(failures), len(req.Records)),
			Records: failures,
		})
		return
	}
	if req.Detailed {
		// Mirror the single-node contract for detailed callers: one flag
		// per request record. Recompute from the replica responses.
		resp.Results = make([]bool, len(req.Records))
		for i := range req.Records {
			for _, addr := range replicas[i] {
				sb := batches[addr]
				if sb.err == nil && sb.resp.Results[sb.pos[i]] {
					resp.Results[i] = true
					break
				}
			}
		}
	}
	server.WriteJSON(w, http.StatusOK, resp)
}

// handleDeleteRecord routes a delete to the record's replica set. The
// outcome follows the same quorum rule as ingest: with a majority of
// replicas responding, at least one 200 means deleted and unanimous
// 404s mean the record was never indexed; below quorum the truth is
// unknowable and the client gets quorum_failed.
func (c *Coordinator) handleDeleteRecord(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	replicas := c.ring.Replicas(name)
	type result struct {
		addr string
		err  error
	}
	results := make([]result, len(replicas))
	var wg sync.WaitGroup
	for i, addr := range replicas {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.FanoutTimeout)
			defer cancel()
			results[i] = result{addr: b.addr, err: c.client.do(ctx, b, "DELETE", "/v1/records/"+url.PathEscape(name), nil, nil)}
		}(i, c.byAddr[addr])
	}
	wg.Wait()

	deleted, notFound := 0, 0
	var replicaErrs []string
	for _, res := range results {
		var berr *BackendError
		switch {
		case res.err == nil:
			deleted++
		case errors.As(res.err, &berr) && berr.Status == http.StatusNotFound:
			notFound++
		default:
			replicaErrs = append(replicaErrs, res.err.Error())
		}
	}
	if deleted+notFound < c.quorum() {
		c.metrics.quorumFailures.Add(1)
		server.WriteErrorDetail(w, http.StatusBadGateway, server.ErrorDetail{
			Code: CodeQuorumFailed,
			Message: fmt.Sprintf("delete %q: %d/%d replicas responded (need %d): %s",
				name, deleted+notFound, len(replicas), c.quorum(), strings.Join(replicaErrs, "; ")),
		})
		return
	}
	if deleted == 0 {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound, fmt.Sprintf("record %q is not indexed", name))
		return
	}
	c.metrics.deletes.Add(1)
	server.WriteJSON(w, http.StatusOK, server.DeleteResponse{Deleted: name})
}

// handleGetRecord tries the record's replicas in ring order and
// returns the first hit. A 404 from one replica is not authoritative —
// it may have missed a quorum write the others took — so the lookup
// only reports not_found after every replica has answered 404.
func (c *Coordinator) handleGetRecord(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	saw404 := false
	var lastErr error
	for _, addr := range c.ring.Replicas(name) {
		b := c.byAddr[addr]
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.FanoutTimeout)
		var rec server.RecordResponse
		err := c.client.do(ctx, b, "GET", "/v1/records/"+url.PathEscape(name), nil, &rec)
		cancel()
		if err == nil {
			server.WriteJSON(w, http.StatusOK, rec)
			return
		}
		var berr *BackendError
		if errors.As(err, &berr) && berr.Status == http.StatusNotFound {
			saw404 = true
			continue
		}
		lastErr = err
	}
	if saw404 && lastErr == nil {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound, fmt.Sprintf("record %q is not indexed", name))
		return
	}
	server.WriteError(w, http.StatusBadGateway, CodeBackendDown,
		fmt.Sprintf("record %q: no replica could answer: %v", name, lastErr))
}

// decodeBody mirrors the single-node server's body handling: size cap,
// strict JSON, trailing-garbage rejection.
func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			server.WriteError(w, http.StatusRequestEntityTooLarge, server.CodePayloadTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("malformed JSON body: %v", err))
		return false
	}
	if dec.More() {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "malformed JSON body: trailing data")
		return false
	}
	return true
}

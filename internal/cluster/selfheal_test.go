package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sketchengine/internal/core"
	"sketchengine/internal/server"
)

// restartableBackend is a single-node backend whose HTTP listener can
// be killed and rebound to the same address, which httptest servers
// cannot do. The engine survives the restart, modeling a node that
// comes back with its pre-crash state — without the writes it missed.
type restartableBackend struct {
	srv  *server.Server
	addr string
	hs   *http.Server
}

func newRestartableBackend(t *testing.T) *restartableBackend {
	t.Helper()
	eng, err := core.NewEngine(core.Options{K: 4, SignatureSize: 64, IndexName: "clustertest", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(eng, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rb := &restartableBackend{srv: srv, addr: lis.Addr().String()}
	rb.serve(lis)
	t.Cleanup(func() {
		rb.stop()
		_ = srv.Close()
	})
	return rb
}

func (rb *restartableBackend) serve(lis net.Listener) {
	hs := &http.Server{Handler: rb.srv.Handler()}
	rb.hs = hs
	go func() { _ = hs.Serve(lis) }()
}

func (rb *restartableBackend) stop() {
	if rb.hs != nil {
		_ = rb.hs.Close()
		rb.hs = nil
	}
}

func (rb *restartableBackend) restart(t *testing.T) {
	t.Helper()
	var lis net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if lis, err = net.Listen("tcp", rb.addr); err == nil {
			rb.serve(lis)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("rebind %s: %v", rb.addr, err)
}

// selfHealCluster is n restartable backends behind a coordinator with
// hand-driven health probes and hint drains.
type selfHealCluster struct {
	coord    *Coordinator
	backends []*restartableBackend
	ts       *httptest.Server
}

func newSelfHealCluster(t *testing.T, n, replication int, cfg Config) *selfHealCluster {
	t.Helper()
	sc := &selfHealCluster{}
	for i := 0; i < n; i++ {
		b := newRestartableBackend(t)
		sc.backends = append(sc.backends, b)
		cfg.Backends = append(cfg.Backends, b.addr)
	}
	cfg.Replication = replication
	cfg.HealthInterval = -1
	cfg.HintInterval = -1
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc.coord = coord
	sc.ts = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		sc.ts.Close()
		_ = coord.Close()
	})
	return sc
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHintedHandoffRecovery is the headline recovery matrix entry: a
// backend dies, writes keep flowing (quorum 2/3 holds at replication
// 3), the dead replica's misses are hinted, and once the backend is
// back a drain pass makes every acked record readable from it directly
// — no manual repair.
func TestHintedHandoffRecovery(t *testing.T) {
	sc := newSelfHealCluster(t, 3, 3, Config{HintsDir: t.TempDir()})
	victim := sc.backends[0]
	victim.stop()

	resp, out := postJSON(t, sc.ts.URL+"/v1/records", corpus(6))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest through the outage = %d, want 200 (quorum 2/3 holds); body %s", resp.StatusCode, out)
	}
	// Every record replicates everywhere at replication 3, so the victim
	// missed all six — all six must be hinted.
	if d := sc.coord.hints.depthFor(victim.addr); d != 6 {
		t.Fatalf("hints pending for the dead backend = %d, want 6", d)
	}
	_, stats := getBody(t, sc.ts.URL+"/stats")
	var st StatsResponse
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Hints.Pending != 6 || st.Hints.Queued != 6 {
		t.Errorf("stats hints = %+v, want 6 pending / 6 queued", st.Hints)
	}
	found := false
	for _, bs := range st.Backends {
		if bs.Addr == victim.addr {
			found = true
			if bs.PendingHints != 6 {
				t.Errorf("backend row pending_hints = %d, want 6", bs.PendingHints)
			}
		}
	}
	if !found {
		t.Fatalf("victim %s missing from stats backends", victim.addr)
	}
	_, metrics := getBody(t, sc.ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "sketchengine_cluster_hint_depth 6") {
		t.Errorf("/metrics missing hint_depth gauge; got %s", metrics)
	}

	victim.restart(t)
	sc.coord.drainHints(context.Background())
	if d := sc.coord.hints.depthFor(victim.addr); d != 0 {
		t.Fatalf("hints pending after drain = %d, want 0", d)
	}
	// The recovered backend answers for a record it never saw land.
	resp, out = getBody(t, "http://"+victim.addr+"/v1/records/rec-00.txt")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"name":"rec-00.txt"`) {
		t.Fatalf("direct read from the recovered backend = %d, body %s; want the hinted record", resp.StatusCode, out)
	}
}

// TestHintedHandoffDurable: hints survive a coordinator restart — a
// fresh coordinator over the same hints directory reloads the queue
// and drains it.
func TestHintedHandoffDurable(t *testing.T) {
	dir := t.TempDir()
	sc := newSelfHealCluster(t, 3, 3, Config{HintsDir: dir})
	victim := sc.backends[1]
	victim.stop()
	if resp, out := postJSON(t, sc.ts.URL+"/v1/records", corpus(4)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	if d := sc.coord.hints.depthFor(victim.addr); d != 4 {
		t.Fatalf("hints pending = %d, want 4", d)
	}
	// Coordinator dies; its successor picks the hint files up.
	sc.ts.Close()
	if err := sc.coord.Close(); err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for _, b := range sc.backends {
		addrs = append(addrs, b.addr)
	}
	coord2, err := New(Config{
		Backends: addrs, Replication: 3,
		HealthInterval: -1, HintInterval: -1, HintsDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if d := coord2.hints.depthFor(victim.addr); d != 4 {
		t.Fatalf("reloaded hints = %d, want 4", d)
	}
	victim.restart(t)
	coord2.drainHints(context.Background())
	if d := coord2.hints.depthFor(victim.addr); d != 0 {
		t.Fatalf("hints after drain = %d, want 0", d)
	}
	if resp, out := getBody(t, "http://"+victim.addr+"/v1/records/rec-03.txt"); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered backend read = %d, body %s", resp.StatusCode, out)
	}
}

// TestHintedHandoffDeleteReplay: a delete acked while a replica was
// down must reach that replica as a tombstone hint, or recovery would
// resurrect the record.
func TestHintedHandoffDeleteReplay(t *testing.T) {
	sc := newSelfHealCluster(t, 3, 3, Config{})
	if resp, out := postJSON(t, sc.ts.URL+"/v1/records", corpus(4)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	victim := sc.backends[2]
	victim.stop()

	req, _ := http.NewRequest("DELETE", sc.ts.URL+"/v1/records/rec-01.txt", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete through the outage = %d, want 200 (quorum holds)", dresp.StatusCode)
	}
	if d := sc.coord.hints.depthFor(victim.addr); d != 1 {
		t.Fatalf("tombstone hints pending = %d, want 1", d)
	}
	victim.restart(t)
	// Sanity: the victim still holds the record its peers deleted.
	if !victim.srv.Engine().Index().Has("rec-01.txt") {
		t.Fatal("victim lost the record without replaying the delete; test setup broken")
	}
	sc.coord.drainHints(context.Background())
	if victim.srv.Engine().Index().Has("rec-01.txt") {
		t.Fatal("tombstone hint did not delete the record on the recovered replica")
	}
	if d := sc.coord.hints.depthFor(victim.addr); d != 0 {
		t.Fatalf("hints after drain = %d, want 0", d)
	}
}

// TestHintExpiry: hints past their TTL are dropped, counted, and not
// replayed — the sweep is the backstop for that window.
func TestHintExpiry(t *testing.T) {
	sc := newSelfHealCluster(t, 3, 3, Config{HintTTL: time.Nanosecond})
	victim := sc.backends[0]
	victim.stop()
	if resp, out := postJSON(t, sc.ts.URL+"/v1/records", corpus(2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	victim.restart(t)
	time.Sleep(time.Millisecond) // let the nanosecond TTL lapse
	sc.coord.drainHints(context.Background())
	if got := sc.coord.hints.expired.Load(); got != 2 {
		t.Fatalf("expired hints = %d, want 2", got)
	}
	if victim.srv.Engine().Index().Len() != 0 {
		t.Fatal("expired hints must not be replayed")
	}
}

// TestReadRepair: reads that expose replica disagreement converge it.
// A GET that 404s on one replica and hits on another, or a search hit
// a responding replica failed to return, both queue the record for
// repair; the background worker copies it back.
func TestReadRepair(t *testing.T) {
	t.Run("get", func(t *testing.T) {
		tc := newTestCluster(t, 3, 2)
		if resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(8)); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
		}
		name := "rec-03.txt"
		// Wound the FIRST replica in ring order so the coordinator's GET
		// sees its 404 before the second replica's hit.
		lagging := tc.backendFor(tc.coord.Ring().Replicas(name)[0])
		req, _ := http.NewRequest("DELETE", lagging.ts.URL+"/v1/records/"+name, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if lagging.srv.Engine().Index().Has(name) {
			t.Fatal("direct delete did not take; test setup broken")
		}

		if resp, out := getBody(t, tc.ts.URL+"/v1/records/"+name); resp.StatusCode != http.StatusOK {
			t.Fatalf("coordinator GET with one lagging replica = %d, body %s; want 200 from the healthy one", resp.StatusCode, out)
		}
		waitFor(t, "read repair to restore the record", func() bool {
			return lagging.srv.Engine().Index().Has(name)
		})
	})

	t.Run("search", func(t *testing.T) {
		tc := newTestCluster(t, 3, 2)
		if resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(8)); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
		}
		name := "rec-03.txt"
		lagging := tc.backendFor(tc.coord.Ring().Replicas(name)[0])
		req, _ := http.NewRequest("DELETE", lagging.ts.URL+"/v1/records/"+name, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()

		// k beyond any backend's corpus share: every responding replica
		// returns everything it has, so the missing hit is provable.
		if resp, out := postJSON(t, tc.ts.URL+"/v1/search", searchBody(16)); resp.StatusCode != http.StatusOK {
			t.Fatalf("search = %d, body %s", resp.StatusCode, out)
		}
		waitFor(t, "search-triggered repair to restore the record", func() bool {
			return lagging.srv.Engine().Index().Has(name)
		})
	})
}

// TestRepairSweepConverges: the admin sweep walks the whole corpus,
// restores under-replicated records, and removes strays — but only
// after the replica set is verifiably complete.
func TestRepairSweepConverges(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	const n = 12
	if resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(n)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	// Under-replicate two records by deleting one copy directly.
	for _, name := range []string{"rec-02.txt", "rec-07.txt"} {
		b := tc.backendFor(tc.coord.Ring().Replicas(name)[0])
		req, _ := http.NewRequest("DELETE", b.ts.URL+"/v1/records/"+name, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
	}
	// Plant a stray: copy a record onto a backend outside its replica
	// set, like an aborted rebalance would.
	strayName := "rec-05.txt"
	replicas := tc.coord.Ring().Replicas(strayName)
	var outsider *testBackend
	for _, b := range tc.backends {
		inSet := false
		for _, addr := range replicas {
			if b.addr() == addr {
				inSet = true
			}
		}
		if !inSet {
			outsider = b
			break
		}
	}
	_, raw := getBody(t, tc.backendFor(replicas[0]).ts.URL+"/v1/records/"+strayName+"?signature=1")
	var rec server.RecordResponse
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if resp, out := postJSON(t, outsider.ts.URL+"/v1/admin/replicate", server.ReplicateRequest{
		Records: []server.ReplicaRecord{{Name: strayName, Shingles: rec.Shingles, Bits: rec.Bits, Signature: rec.Signature}},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("planting stray = %d, body %s", resp.StatusCode, out)
	}

	resp, out := postJSON(t, tc.ts.URL+"/v1/admin/repair", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair sweep = %d, body %s", resp.StatusCode, out)
	}
	var sw RepairSweepResponse
	if err := json.Unmarshal(out, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Records != n || sw.Repaired != 2 || sw.RemovedStrays != 1 || sw.Failures != 0 {
		t.Fatalf("sweep = %+v, want %d records, 2 repaired, 1 stray removed, 0 failures", sw, n)
	}

	// Census: every record on exactly its replica set, nowhere else.
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("rec-%02d.txt", i))
	}
	assertCensus(t, tc.coord.Ring(), tc.backends, names)

	// A second sweep finds nothing to do: the fleet converged.
	resp, out = postJSON(t, tc.ts.URL+"/v1/admin/repair", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second sweep = %d, body %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Repaired != 0 || sw.RemovedStrays != 0 || sw.Failures != 0 {
		t.Fatalf("second sweep = %+v, want a no-op", sw)
	}
}

// assertCensus checks the replication invariant record by record:
// present on every ring replica, absent everywhere else.
func assertCensus(t *testing.T, ring *Ring, backends []*testBackend, names []string) {
	t.Helper()
	for _, name := range names {
		want := make(map[string]bool)
		for _, addr := range ring.Replicas(name) {
			want[addr] = true
		}
		for _, b := range backends {
			if has := b.srv.Engine().Index().Has(name); has != want[b.addr()] {
				t.Errorf("census: %s on %s = %v, want %v", name, b.addr(), has, want[b.addr()])
			}
		}
	}
}

// TestDeleteQuorumFailureEnvelope: a delete that cannot reach its
// quorum itemizes the record in the envelope's Records list, exactly
// like a failed ingest — the satellite contract.
func TestDeleteQuorumFailureEnvelope(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	if resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(8)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	name := "rec-04.txt"
	tc.backendFor(tc.coord.Ring().Replicas(name)[0]).ts.Close()

	req, _ := http.NewRequest("DELETE", tc.ts.URL+"/v1/records/"+name, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := readAll(dresp)
	if dresp.StatusCode != http.StatusBadGateway {
		t.Fatalf("delete with a dead replica = %d, want 502; body %s", dresp.StatusCode, out)
	}
	var env errEnvelope
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeQuorumFailed {
		t.Fatalf("envelope code = %q, want %q", env.Error.Code, CodeQuorumFailed)
	}
	if len(env.Error.Records) != 1 || env.Error.Records[0].Name != name || env.Error.Records[0].Code != CodeBackendDown {
		t.Fatalf("envelope must itemize the failed record like ingest does; got %s", out)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// TestProbeBackoff: a backend that stays down is reprobed on an
// exponentially growing, capped interval; recovery resets it.
func TestProbeBackoff(t *testing.T) {
	coord, err := New(Config{
		Backends:         []string{"h1:1", "h2:1", "h3:1"},
		Replication:      2,
		HealthInterval:   50 * time.Millisecond,
		MaxProbeInterval: 400 * time.Millisecond,
		HintInterval:     -1,
		DownAfter:        3,
		UpAfter:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	b := coord.backendList()[0]

	steps := []time.Duration{0, 0, 50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	for i, want := range steps {
		coord.observeProbe(b, false)
		if got := time.Duration(b.probeInterval.Load()); got != want {
			t.Fatalf("after %d failures probe interval = %s, want %s", i+1, got, want)
		}
	}
	if b.up.Load() {
		t.Fatal("backend must be down by now")
	}
	if b.nextProbe.IsZero() {
		t.Fatal("a down backend must have a reprobe deadline")
	}
	// The jittered deadline stays within +-20% of the nominal interval.
	until := time.Until(b.nextProbe)
	if until > 400*time.Millisecond*12/10 {
		t.Fatalf("reprobe deadline %s exceeds interval + 20%% jitter", until)
	}
	// Stats surface the backed-off cadence.
	found := false
	for _, bs := range coord.backendStats() {
		if bs.Addr == b.addr {
			found = true
			if bs.ProbeIntervalSeconds != 0.4 {
				t.Errorf("stats probe_interval_seconds = %v, want 0.4", bs.ProbeIntervalSeconds)
			}
		}
	}
	if !found {
		t.Fatal("backend missing from stats")
	}

	coord.observeProbe(b, true)
	coord.observeProbe(b, true)
	if !b.up.Load() {
		t.Fatal("two successes must mark the backend up")
	}
	if got := time.Duration(b.probeInterval.Load()); got != 50*time.Millisecond {
		t.Fatalf("recovery must reset the probe interval, got %s", got)
	}
	if !b.nextProbe.IsZero() {
		t.Fatal("recovery must clear the reprobe deadline")
	}
	// The up transition kicked the hint drainer.
	select {
	case <-coord.hintKick:
	default:
		t.Fatal("down->up transition must kick the hint drainer")
	}
}

// TestRebucketFanout: the coordinator applies a rebucket fleet-wide
// and itemizes per-backend failures in the envelope.
func TestRebucketFanout(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	if resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(10)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	wantRecords := 0
	for _, b := range tc.backends {
		wantRecords += b.srv.Engine().Index().Len()
	}

	resp, out := postJSON(t, tc.ts.URL+"/v1/admin/rebucket", server.RebucketRequest{Bands: 8, RowsPerBand: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebucket fan-out = %d, body %s", resp.StatusCode, out)
	}
	var rb server.RebucketResponse
	if err := json.Unmarshal(out, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Bands != 8 || rb.RowsPerBand != 8 {
		t.Fatalf("rebucket echoed scheme %d/%d, want 8/8", rb.Bands, rb.RowsPerBand)
	}
	if rb.Records != wantRecords {
		t.Fatalf("rebucket records = %d, want the fleet total %d", rb.Records, wantRecords)
	}
	for _, b := range tc.backends {
		if got := b.srv.Engine().Index().Metadata().Bands; got != 8 {
			t.Errorf("backend %s bands = %d, want 8", b.addr(), got)
		}
	}

	// One dead backend: the scheme must not fork silently. 502 with the
	// failing backend itemized by address.
	dead := tc.backends[1]
	dead.ts.Close()
	resp, out = postJSON(t, tc.ts.URL+"/v1/admin/rebucket", server.RebucketRequest{Bands: 4, RowsPerBand: 16})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("rebucket with a dead backend = %d, want 502; body %s", resp.StatusCode, out)
	}
	var env errEnvelope
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeRebucketFailed {
		t.Fatalf("envelope code = %q, want %q", env.Error.Code, CodeRebucketFailed)
	}
	if len(env.Error.Records) != 1 || env.Error.Records[0].Name != dead.addr() {
		t.Fatalf("envelope must itemize the failed backend by address; got %s", out)
	}
}

package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"sketchengine/internal/fault"
	"sketchengine/internal/server"
)

// faultCounters snapshots the armed fault plan's injection counters,
// keyed "point:kind", or nil when no spec is armed.
func faultCounters() map[string]int64 {
	p := fault.Active()
	if p == nil {
		return nil
	}
	return p.Counters()
}

func (c *Coordinator) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/records", c.timed("ingest", c.handleIngest))
	mux.HandleFunc("POST /v1/search", c.timed("search", c.handleSearch))
	mux.HandleFunc("GET /v1/records/{name}", c.timed("get_record", c.handleGetRecord))
	mux.HandleFunc("DELETE /v1/records/{name}", c.timed("delete_record", c.handleDeleteRecord))
	mux.HandleFunc("POST /v1/admin/rebucket", c.timed("rebucket", c.handleRebucket))
	mux.HandleFunc("POST /v1/admin/repair", c.timed("repair", c.handleRepairSweep))
	mux.HandleFunc("POST /v1/admin/join", c.timed("join", c.handleJoin))
	mux.HandleFunc("POST /v1/admin/drain", c.timed("drain", c.handleDrain))
	mux.HandleFunc("GET /healthz", c.timed("healthz", c.handleHealthz))
	mux.HandleFunc("GET /stats", c.timed("stats", c.handleStats))
	mux.HandleFunc("GET /metrics", c.timed("metrics", c.handleMetrics))
	return mux
}

// HealthResponse is the coordinator's GET /healthz body. Status is
// "ok" while every backend is up and "degraded" otherwise; the
// coordinator itself answering is what makes either healthy.
type HealthResponse struct {
	Status      string `json:"status"`
	Backends    int    `json:"backends"`
	BackendsUp  int    `json:"backends_up"`
	Replication int    `json:"replication"`
}

// BackendStats is one backend's row in the coordinator's /stats.
type BackendStats struct {
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
	// Breaker is the circuit-breaker state gating first-wave traffic to
	// this backend: "closed" (healthy), "open" (shed), or "half-open"
	// (recovery probation). The transition counters record how often the
	// breaker tripped, entered probation, and recovered.
	Breaker          string  `json:"breaker"`
	BreakerOpens     int64   `json:"breaker_opens,omitempty"`
	BreakerHalfOpens int64   `json:"breaker_half_opens,omitempty"`
	BreakerCloses    int64   `json:"breaker_closes,omitempty"`
	Requests         int64   `json:"requests"`
	Failures         int64   `json:"failures"`
	RoutedRecords    int64   `json:"routed_records"`
	Transitions      int64   `json:"transitions"`
	DownSeconds      float64 `json:"down_seconds,omitempty"`
	// PendingHints is how many quorum-acked writes this backend still
	// has to catch up on; ProbeIntervalSeconds is the health prober's
	// current (backed-off) cadence for it.
	PendingHints         int     `json:"pending_hints"`
	ProbeIntervalSeconds float64 `json:"probe_interval_seconds,omitempty"`
	LastError            string  `json:"last_error,omitempty"`
}

// HintStats summarizes the hinted-handoff store in /stats.
type HintStats struct {
	Pending  int   `json:"pending"`
	Queued   int64 `json:"queued"`
	Replayed int64 `json:"replayed"`
	Expired  int64 `json:"expired"`
	Dropped  int64 `json:"dropped"`
}

// RepairStats summarizes anti-entropy activity in /stats.
type RepairStats struct {
	QueueDepth int   `json:"queue_depth"`
	Enqueued   int64 `json:"enqueued"`
	Dropped    int64 `json:"dropped"`
	Checked    int64 `json:"checked"`
	Applied    int64 `json:"applied"`
	Removed    int64 `json:"removed_strays"`
	Failures   int64 `json:"failures"`
	Sweeps     int64 `json:"sweeps"`
}

// RebalanceStats summarizes ring membership changes in /stats.
type RebalanceStats struct {
	Active   bool  `json:"active"`
	Joins    int64 `json:"joins"`
	Drains   int64 `json:"drains"`
	Failures int64 `json:"failures"`
	Moved    int64 `json:"records_moved"`
	Copied   int64 `json:"copies_streamed"`
}

// RetryBudgetStats reports the coordinator-wide retry token bucket.
type RetryBudgetStats struct {
	Remaining    float64 `json:"remaining"`
	Max          int     `json:"max"`
	RefillPerSec float64 `json:"refill_per_sec"`
	Spent        int64   `json:"spent"`
	Denied       int64   `json:"denied"`
}

// StatsResponse is the coordinator's GET /stats body.
type StatsResponse struct {
	UptimeSeconds  float64        `json:"uptime_seconds"`
	Replication    int            `json:"replication"`
	WriteQuorum    int            `json:"write_quorum"`
	Ring           []string       `json:"ring"`
	Requests       int64          `json:"requests"`
	Searches       int64          `json:"searches"`
	IngestRequests int64          `json:"ingest_requests"`
	RecordsRouted  int64          `json:"records_routed"`
	Deletes        int64          `json:"deletes"`
	Retries        int64          `json:"retries"`
	PartialResults int64          `json:"partial_results"`
	QuorumFailures int64          `json:"quorum_failures"`
	// Shed counts fan-outs refused with 503 at the MaxFanout bound;
	// DeadlineExceeded counts backend calls that came back 504 after the
	// propagated deadline expired.
	Shed             int64            `json:"shed,omitempty"`
	DeadlineExceeded int64            `json:"deadline_exceeded,omitempty"`
	RetryBudget      RetryBudgetStats `json:"retry_budget"`
	// Faults is populated only while a fault spec is armed: injection
	// counts keyed "point:kind".
	Faults    map[string]int64 `json:"faults,omitempty"`
	Hints     HintStats        `json:"hints"`
	Repair    RepairStats      `json:"repair"`
	Rebalance RebalanceStats   `json:"rebalance"`
	Backends  []BackendStats   `json:"backends"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	backends := c.backendList()
	up := 0
	for _, b := range backends {
		if b.up.Load() {
			up++
		}
	}
	status := "ok"
	if up < len(backends) {
		status = "degraded"
	}
	server.WriteJSON(w, http.StatusOK, HealthResponse{
		Status:      status,
		Backends:    len(backends),
		BackendsUp:  up,
		Replication: c.cfg.Replication,
	})
}

func (c *Coordinator) backendStats() []BackendStats {
	backends := c.backendList()
	out := make([]BackendStats, 0, len(backends))
	for _, b := range backends {
		bs := BackendStats{
			Addr:             b.addr,
			Up:               b.up.Load(),
			Breaker:          breakerStateName(b.bState.Load()),
			BreakerOpens:     b.opens.Load(),
			BreakerHalfOpens: b.halfOpens.Load(),
			BreakerCloses:    b.closes.Load(),
			Requests:         b.requests.Load(),
			Failures:         b.failures.Load(),
			RoutedRecords:    b.routedRecords.Load(),
			Transitions:      b.transitions.Load(),
			PendingHints:     c.hints.depthFor(b.addr),
		}
		if since := b.downSince.Load(); since != 0 {
			bs.DownSeconds = time.Since(time.Unix(0, since)).Seconds()
		}
		if iv := b.probeInterval.Load(); iv != 0 {
			bs.ProbeIntervalSeconds = time.Duration(iv).Seconds()
		}
		if msg := b.lastErr.Load(); msg != nil {
			bs.LastError = *msg
		}
		out = append(out, bs)
	}
	return out
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	m := c.metrics
	ring, _ := c.rings()
	server.WriteJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds:  time.Since(m.start).Seconds(),
		Replication:    c.cfg.Replication,
		WriteQuorum:    c.quorum(),
		Ring:           ring.Backends(),
		Requests:       m.requests.Load(),
		Searches:       m.searches.Load(),
		IngestRequests: m.ingestRequests.Load(),
		RecordsRouted:  m.recordsRouted.Load(),
		Deletes:        m.deletes.Load(),
		Retries:          m.retries.Load(),
		PartialResults:   m.partials.Load(),
		QuorumFailures:   m.quorumFailures.Load(),
		Shed:             m.shed.Load(),
		DeadlineExceeded: m.deadlineExceeded.Load(),
		RetryBudget: RetryBudgetStats{
			Remaining:    c.budget.remaining(),
			Max:          c.cfg.RetryBudget,
			RefillPerSec: c.cfg.RetryRefillPerSec,
			Spent:        c.budget.spent.Load(),
			Denied:       c.budget.denied.Load(),
		},
		Faults: faultCounters(),
		Hints: HintStats{
			Pending:  c.hints.depth(),
			Queued:   c.hints.queued.Load(),
			Replayed: c.hints.replayed.Load(),
			Expired:  c.hints.expired.Load(),
			Dropped:  c.hints.dropped.Load(),
		},
		Repair: RepairStats{
			QueueDepth: c.repairs.depth(),
			Enqueued:   c.repairs.enqueued.Load(),
			Dropped:    c.repairs.dropped.Load(),
			Checked:    c.repairs.checked.Load(),
			Applied:    c.repairs.applied.Load(),
			Removed:    c.repairs.removed.Load(),
			Failures:   c.repairs.failed.Load(),
			Sweeps:     c.repairs.sweeps.Load(),
		},
		Rebalance: RebalanceStats{
			Active:   m.rebalanceActive.Load(),
			Joins:    m.joins.Load(),
			Drains:   m.drains.Load(),
			Failures: m.rebalanceFailures.Load(),
			Moved:    m.rebalanceMoved.Load(),
			Copied:   m.rebalanceCopied.Load(),
		},
		Backends: c.backendStats(),
	})
}

// handleMetrics renders the coordinator's counters in the Prometheus
// text format, namespaced under sketchengine_cluster_. Per-backend
// series carry a backend label; the routed-records gauge doubles as
// the observed ring occupancy.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := c.metrics
	backends := c.backendList()
	var buf bytes.Buffer

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&buf, "# HELP sketchengine_cluster_%s %s\n# TYPE sketchengine_cluster_%s counter\nsketchengine_cluster_%s %d\n",
			name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&buf, "# HELP sketchengine_cluster_%s %s\n# TYPE sketchengine_cluster_%s gauge\nsketchengine_cluster_%s %d\n",
			name, help, name, name, v)
	}
	counter("requests_total", "Requests accepted by the coordinator.", m.requests.Load())
	counter("searches_total", "Search fan-outs served.", m.searches.Load())
	counter("ingest_requests_total", "Ingest requests received.", m.ingestRequests.Load())
	counter("records_routed_total", "Record-replica assignments routed by ingest.", m.recordsRouted.Load())
	counter("deletes_total", "Deletes routed to replica sets.", m.deletes.Load())
	counter("retries_total", "Backend calls retried after a failed first wave.", m.retries.Load())
	counter("partial_results_total", "Search responses degraded to partial.", m.partials.Load())
	counter("quorum_failures_total", "Records that missed their write quorum.", m.quorumFailures.Load())
	counter("shed_total", "Fan-outs refused with 503 at the MaxFanout bound.", m.shed.Load())
	counter("deadline_exceeded_total", "Backend calls that answered 504 past the propagated deadline.", m.deadlineExceeded.Load())
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_retry_budget_tokens Retry tokens currently available.\n# TYPE sketchengine_cluster_retry_budget_tokens gauge\nsketchengine_cluster_retry_budget_tokens %.3f\n",
		c.budget.remaining())
	counter("retry_budget_spent_total", "Retry tokens spent on second waves, hint replays, and repair copies.", c.budget.spent.Load())
	counter("retry_budget_denied_total", "Retries denied on an empty budget.", c.budget.denied.Load())

	gauge("hint_depth", "Hints pending across all backends.", int64(c.hints.depth()))
	counter("hints_queued_total", "Hints enqueued for replicas that missed an acked write.", c.hints.queued.Load())
	counter("hints_replayed_total", "Hints successfully replayed to their backend.", c.hints.replayed.Load())
	counter("hints_expired_total", "Hints dropped past their TTL.", c.hints.expired.Load())
	counter("hints_dropped_total", "Hints discarded because the backend left the ring.", c.hints.dropped.Load())

	gauge("repair_queue_depth", "Record names waiting for the read-repair worker.", int64(c.repairs.depth()))
	counter("repair_enqueued_total", "Records enqueued for read repair.", c.repairs.enqueued.Load())
	counter("repair_dropped_total", "Read-repair enqueues dropped on a full queue.", c.repairs.dropped.Load())
	counter("repair_checked_total", "Repair probes completed.", c.repairs.checked.Load())
	counter("repair_applied_total", "Record copies written by repair.", c.repairs.applied.Load())
	counter("repair_removed_strays_total", "Stray copies deleted by the sweep.", c.repairs.removed.Load())
	counter("repair_failures_total", "Repairs that could not converge.", c.repairs.failed.Load())
	counter("repair_sweeps_total", "Full anti-entropy sweeps completed.", c.repairs.sweeps.Load())

	active := int64(0)
	if m.rebalanceActive.Load() {
		active = 1
	}
	gauge("rebalance_active", "1 while a join/drain stream is in flight.", active)
	counter("rebalance_joins_total", "Committed ring joins.", m.joins.Load())
	counter("rebalance_drains_total", "Committed ring drains.", m.drains.Load())
	counter("rebalance_failures_total", "Join/drain attempts aborted before commit.", m.rebalanceFailures.Load())
	counter("rebalance_moved_total", "Records whose replica set changed across commits.", m.rebalanceMoved.Load())
	counter("rebalance_copied_total", "Record copies streamed to new replicas.", m.rebalanceCopied.Load())

	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_backend_up Backend health as seen by the checker (1 up, 0 down).\n# TYPE sketchengine_cluster_backend_up gauge\n")
	for _, b := range backends {
		up := 0
		if b.up.Load() {
			up = 1
		}
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_up{backend=%q} %d\n", b.addr, up)
	}
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_backend_breaker_state Per-backend breaker state (1 on the active state's series).\n# TYPE sketchengine_cluster_backend_breaker_state gauge\n")
	for _, b := range backends {
		cur := breakerStateName(b.bState.Load())
		for _, state := range []string{"closed", "open", "half-open"} {
			v := 0
			if state == cur {
				v = 1
			}
			fmt.Fprintf(&buf, "sketchengine_cluster_backend_breaker_state{backend=%q,state=%q} %d\n", b.addr, state, v)
		}
	}
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_backend_breaker_transitions_total Breaker transitions per backend by kind.\n# TYPE sketchengine_cluster_backend_breaker_transitions_total counter\n")
	for _, b := range backends {
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_breaker_transitions_total{backend=%q,kind=\"open\"} %d\n", b.addr, b.opens.Load())
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_breaker_transitions_total{backend=%q,kind=\"half_open\"} %d\n", b.addr, b.halfOpens.Load())
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_breaker_transitions_total{backend=%q,kind=\"close\"} %d\n", b.addr, b.closes.Load())
	}
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_backend_requests_total Requests proxied to each backend.\n# TYPE sketchengine_cluster_backend_requests_total counter\n")
	for _, b := range backends {
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_requests_total{backend=%q} %d\n", b.addr, b.requests.Load())
	}
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_backend_failures_total Proxied requests that failed, per backend.\n# TYPE sketchengine_cluster_backend_failures_total counter\n")
	for _, b := range backends {
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_failures_total{backend=%q} %d\n", b.addr, b.failures.Load())
	}
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_backend_pending_hints Hints queued per backend.\n# TYPE sketchengine_cluster_backend_pending_hints gauge\n")
	for _, b := range backends {
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_pending_hints{backend=%q} %d\n", b.addr, c.hints.depthFor(b.addr))
	}
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_ring_records Record-replica assignments per backend: the observed ring occupancy.\n# TYPE sketchengine_cluster_ring_records counter\n")
	for _, b := range backends {
		fmt.Fprintf(&buf, "sketchengine_cluster_ring_records{backend=%q} %d\n", b.addr, b.routedRecords.Load())
	}

	names := make([]string, 0, len(m.latencies))
	m.histMu.Lock()
	for name := range m.latencies {
		names = append(names, name)
	}
	m.histMu.Unlock()
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&buf, "# HELP sketchengine_cluster_fanout_duration_seconds Whole-fan-out latency by endpoint.\n# TYPE sketchengine_cluster_fanout_duration_seconds histogram\n")
	}
	for _, name := range names {
		server.WritePromHistogram(&buf, "sketchengine_cluster_fanout_duration_seconds",
			fmt.Sprintf("endpoint=%q", name), m.hist(name))
	}
	server.WriteFaultMetrics(&buf)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"sketchengine/internal/server"
)

func (c *Coordinator) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/records", c.timed("ingest", c.handleIngest))
	mux.HandleFunc("POST /v1/search", c.timed("search", c.handleSearch))
	mux.HandleFunc("GET /v1/records/{name}", c.timed("get_record", c.handleGetRecord))
	mux.HandleFunc("DELETE /v1/records/{name}", c.timed("delete_record", c.handleDeleteRecord))
	mux.HandleFunc("GET /healthz", c.timed("healthz", c.handleHealthz))
	mux.HandleFunc("GET /stats", c.timed("stats", c.handleStats))
	mux.HandleFunc("GET /metrics", c.timed("metrics", c.handleMetrics))
	return mux
}

// HealthResponse is the coordinator's GET /healthz body. Status is
// "ok" while every backend is up and "degraded" otherwise; the
// coordinator itself answering is what makes either healthy.
type HealthResponse struct {
	Status      string `json:"status"`
	Backends    int    `json:"backends"`
	BackendsUp  int    `json:"backends_up"`
	Replication int    `json:"replication"`
}

// BackendStats is one backend's row in the coordinator's /stats.
type BackendStats struct {
	Addr          string  `json:"addr"`
	Up            bool    `json:"up"`
	Requests      int64   `json:"requests"`
	Failures      int64   `json:"failures"`
	RoutedRecords int64   `json:"routed_records"`
	Transitions   int64   `json:"transitions"`
	DownSeconds   float64 `json:"down_seconds,omitempty"`
	LastError     string  `json:"last_error,omitempty"`
}

// StatsResponse is the coordinator's GET /stats body.
type StatsResponse struct {
	UptimeSeconds  float64        `json:"uptime_seconds"`
	Replication    int            `json:"replication"`
	WriteQuorum    int            `json:"write_quorum"`
	Requests       int64          `json:"requests"`
	Searches       int64          `json:"searches"`
	IngestRequests int64          `json:"ingest_requests"`
	RecordsRouted  int64          `json:"records_routed"`
	Deletes        int64          `json:"deletes"`
	Retries        int64          `json:"retries"`
	PartialResults int64          `json:"partial_results"`
	QuorumFailures int64          `json:"quorum_failures"`
	Backends       []BackendStats `json:"backends"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for _, b := range c.backends {
		if b.up.Load() {
			up++
		}
	}
	status := "ok"
	if up < len(c.backends) {
		status = "degraded"
	}
	server.WriteJSON(w, http.StatusOK, HealthResponse{
		Status:      status,
		Backends:    len(c.backends),
		BackendsUp:  up,
		Replication: c.cfg.Replication,
	})
}

func (c *Coordinator) backendStats() []BackendStats {
	out := make([]BackendStats, 0, len(c.backends))
	for _, b := range c.backends {
		bs := BackendStats{
			Addr:          b.addr,
			Up:            b.up.Load(),
			Requests:      b.requests.Load(),
			Failures:      b.failures.Load(),
			RoutedRecords: b.routedRecords.Load(),
			Transitions:   b.transitions.Load(),
		}
		if since := b.downSince.Load(); since != 0 {
			bs.DownSeconds = time.Since(time.Unix(0, since)).Seconds()
		}
		if msg := b.lastErr.Load(); msg != nil {
			bs.LastError = *msg
		}
		out = append(out, bs)
	}
	return out
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	m := c.metrics
	server.WriteJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds:  time.Since(m.start).Seconds(),
		Replication:    c.cfg.Replication,
		WriteQuorum:    c.quorum(),
		Requests:       m.requests.Load(),
		Searches:       m.searches.Load(),
		IngestRequests: m.ingestRequests.Load(),
		RecordsRouted:  m.recordsRouted.Load(),
		Deletes:        m.deletes.Load(),
		Retries:        m.retries.Load(),
		PartialResults: m.partials.Load(),
		QuorumFailures: m.quorumFailures.Load(),
		Backends:       c.backendStats(),
	})
}

// handleMetrics renders the coordinator's counters in the Prometheus
// text format, namespaced under sketchengine_cluster_. Per-backend
// series carry a backend label; the routed-records gauge doubles as
// the observed ring occupancy.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := c.metrics
	var buf bytes.Buffer

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&buf, "# HELP sketchengine_cluster_%s %s\n# TYPE sketchengine_cluster_%s counter\nsketchengine_cluster_%s %d\n",
			name, help, name, name, v)
	}
	counter("requests_total", "Requests accepted by the coordinator.", m.requests.Load())
	counter("searches_total", "Search fan-outs served.", m.searches.Load())
	counter("ingest_requests_total", "Ingest requests received.", m.ingestRequests.Load())
	counter("records_routed_total", "Record-replica assignments routed by ingest.", m.recordsRouted.Load())
	counter("deletes_total", "Deletes routed to replica sets.", m.deletes.Load())
	counter("retries_total", "Backend calls retried after a failed first wave.", m.retries.Load())
	counter("partial_results_total", "Search responses degraded to partial.", m.partials.Load())
	counter("quorum_failures_total", "Records that missed their write quorum.", m.quorumFailures.Load())

	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_backend_up Backend health as seen by the checker (1 up, 0 down).\n# TYPE sketchengine_cluster_backend_up gauge\n")
	for _, b := range c.backends {
		up := 0
		if b.up.Load() {
			up = 1
		}
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_up{backend=%q} %d\n", b.addr, up)
	}
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_backend_requests_total Requests proxied to each backend.\n# TYPE sketchengine_cluster_backend_requests_total counter\n")
	for _, b := range c.backends {
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_requests_total{backend=%q} %d\n", b.addr, b.requests.Load())
	}
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_backend_failures_total Proxied requests that failed, per backend.\n# TYPE sketchengine_cluster_backend_failures_total counter\n")
	for _, b := range c.backends {
		fmt.Fprintf(&buf, "sketchengine_cluster_backend_failures_total{backend=%q} %d\n", b.addr, b.failures.Load())
	}
	fmt.Fprintf(&buf, "# HELP sketchengine_cluster_ring_records Record-replica assignments per backend: the observed ring occupancy.\n# TYPE sketchengine_cluster_ring_records counter\n")
	for _, b := range c.backends {
		fmt.Fprintf(&buf, "sketchengine_cluster_ring_records{backend=%q} %d\n", b.addr, b.routedRecords.Load())
	}

	names := make([]string, 0, len(m.latencies))
	m.histMu.Lock()
	for name := range m.latencies {
		names = append(names, name)
	}
	m.histMu.Unlock()
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&buf, "# HELP sketchengine_cluster_fanout_duration_seconds Whole-fan-out latency by endpoint.\n# TYPE sketchengine_cluster_fanout_duration_seconds histogram\n")
	}
	for _, name := range names {
		server.WritePromHistogram(&buf, "sketchengine_cluster_fanout_duration_seconds",
			fmt.Sprintf("endpoint=%q", name), m.hist(name))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

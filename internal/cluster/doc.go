// Package cluster scales the engine's HTTP API across processes: a
// coordinator speaks the same /v1 protocol as internal/server but owns
// no index, routing every request to a fleet of ordinary single-node
// backends.
//
// Placement is a rendezvous-hash ring (Ring): each record name maps to
// a replication-factor-sized set of backends, so capacity grows by
// adding backends and availability by raising replication. Writes fan
// each coalesced batch to all replicas of each record and acknowledge
// only on a write quorum (majority of replicas); records that miss
// quorum are reported individually in the error envelope, never
// silently dropped. Searches scatter to every live backend, merge the
// per-backend bounded top-K heaps with core.MergeTopK — the same total
// order the in-process per-shard merge uses, so a coordinator's answer
// is byte-identical to a single node holding the same corpus — and
// dedup replicated hits by name keeping the best score.
//
// A health checker probes each backend's /healthz with
// consecutive-failure hysteresis so one dropped probe never flaps the
// ring, backing off exponentially (with jitter) on backends that stay
// down. The search path retries failed backends once before degrading:
// a response is flagged "partial": true only when the non-responders
// could cover a whole replica set, i.e. when completeness can no
// longer be guaranteed.
//
// The fleet is self-healing. Replicas that miss a quorum-acked write
// get a hinted handoff: the miss is queued (durably, with -hints-dir)
// and replayed automatically once the health checker sees the backend
// again. Reads that expose replica disagreement — a GET that 404s on
// one replica and hits on another, a search hit missing from a replica
// that provably had room for it — feed an anti-entropy read-repair
// queue, and POST /v1/admin/repair (or -repair-every) sweeps the whole
// corpus back to full replication, removing strays once their replica
// set is verifiably complete. Membership is elastic: POST
// /v1/admin/join and /v1/admin/drain stream affected records to their
// new replicas before committing the ring swap, so the replication
// invariant — every record on exactly Replication live replicas of the
// committed ring — holds before, during, and after the change.
package cluster

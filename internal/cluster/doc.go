// Package cluster scales the engine's HTTP API across processes: a
// coordinator speaks the same /v1 protocol as internal/server but owns
// no index, routing every request to a fleet of ordinary single-node
// backends.
//
// Placement is a rendezvous-hash ring (Ring): each record name maps to
// a replication-factor-sized set of backends, so capacity grows by
// adding backends and availability by raising replication. Writes fan
// each coalesced batch to all replicas of each record and acknowledge
// only on a write quorum (majority of replicas); records that miss
// quorum are reported individually in the error envelope, never
// silently dropped. Searches scatter to every live backend, merge the
// per-backend bounded top-K heaps with core.MergeTopK — the same total
// order the in-process per-shard merge uses, so a coordinator's answer
// is byte-identical to a single node holding the same corpus — and
// dedup replicated hits by name keeping the best score.
//
// A health checker probes each backend's /healthz with
// consecutive-failure hysteresis so one dropped probe never flaps the
// ring. The search path retries failed backends once before degrading:
// a response is flagged "partial": true only when the non-responders
// could cover a whole replica set, i.e. when completeness can no
// longer be guaranteed.
package cluster

package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"sketchengine/internal/server"
)

// Anti-entropy read repair: any read that reveals replica disagreement
// — a GET that 404s on one replica and hits on another, a search hit a
// responding replica should have returned but didn't — enqueues the
// record name for repair. The repair worker re-probes the replica set
// authoritatively (with signatures) and copies the record from a
// holder to each replica that lacks it. POST /v1/admin/repair is the
// full-corpus version of the same convergence: it enumerates every
// backend, diffs the observed placement against the ring, and repairs
// each divergent record.
//
// Repair is add-wins: a record present anywhere in its replica set is
// copied to the rest. The sole casualty is a delete whose tombstone
// hint expired before a down replica returned — repair can resurrect
// the record from that replica. Accepting that (instead of shipping
// per-record version vectors) matches the engine's add-mostly design;
// the delete can simply be re-issued.

// repairQueueDepth bounds the read-repair queue; reads observing
// disagreement beyond it drop their enqueue (with a counter) rather
// than block — the sweep catches anything dropped.
const repairQueueDepth = 1024

// repairQueue is the bounded, deduplicating queue between read paths
// and the repair worker.
type repairQueue struct {
	ch chan string

	mu      sync.Mutex
	pending map[string]struct{}

	enqueued atomic.Int64 // names accepted for repair
	dropped  atomic.Int64 // enqueues dropped on a full queue
	checked  atomic.Int64 // repair probes completed
	applied  atomic.Int64 // record copies written by repair
	removed  atomic.Int64 // stray copies deleted by the sweep
	failed   atomic.Int64 // repairs that could not converge
	sweeps   atomic.Int64 // full sweeps completed
}

func newRepairQueue() *repairQueue {
	return &repairQueue{
		ch:      make(chan string, repairQueueDepth),
		pending: make(map[string]struct{}, repairQueueDepth),
	}
}

// offer enqueues name for repair unless it is already queued or the
// queue is full.
func (q *repairQueue) offer(name string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, dup := q.pending[name]; dup {
		return
	}
	select {
	case q.ch <- name:
		q.pending[name] = struct{}{}
		q.enqueued.Add(1)
	default:
		q.dropped.Add(1)
	}
}

// depth is the number of names waiting for the repair worker.
func (q *repairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

func (q *repairQueue) taken(name string) {
	q.mu.Lock()
	delete(q.pending, name)
	q.mu.Unlock()
}

// repairLoop is the background worker: one repair at a time, each
// bounded by per-call fan-out timeouts.
func (c *Coordinator) repairLoop() {
	for {
		select {
		case <-c.stop:
			return
		case name := <-c.repairs.ch:
			c.repairs.taken(name)
			if _, err := c.repairRecord(context.Background(), name); err != nil {
				c.logf("read repair %q: %v", name, err)
			}
		}
	}
}

// repairRecord converges one record's replica set: probe every replica
// for the record (with its stored signature), then copy it from any
// holder to each replica that definitively lacks it. Replicas that
// cannot answer are left alone — absence must be proven, not assumed.
// It returns the number of copies written.
func (c *Coordinator) repairRecord(ctx context.Context, name string) (int, error) {
	ring, _ := c.rings()
	var src *server.RecordResponse
	var missing []*backend
	for _, addr := range ring.Replicas(name) {
		b := c.lookup(addr)
		if b == nil {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
		var rec server.RecordResponse
		err := c.client.do(cctx, b, "GET", "/v1/records/"+url.PathEscape(name)+"?signature=1", nil, &rec)
		cancel()
		switch {
		case err == nil && len(rec.Signature) > 0:
			if src == nil {
				src = &rec
			}
		case isNotFound(err):
			missing = append(missing, b)
		}
	}
	c.repairs.checked.Add(1)
	if src == nil || len(missing) == 0 {
		return 0, nil
	}
	req := server.ReplicateRequest{Records: []server.ReplicaRecord{{
		Name:      name,
		Shingles:  src.Shingles,
		Bits:      src.Bits,
		Signature: src.Signature,
	}}}
	copied := 0
	var firstErr error
	for _, b := range missing {
		if !c.budget.allow(1) {
			// Repair copies are corrective retries of past writes; a dry
			// budget defers the rest to the next pass or the sweep.
			c.repairs.failed.Add(1)
			if firstErr == nil {
				firstErr = fmt.Errorf("repair %q: retry budget exhausted with %d cop(ies) pending", name, len(missing)-copied)
			}
			break
		}
		cctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
		err := c.client.do(cctx, b, "POST", "/v1/admin/replicate", &req, nil)
		cancel()
		if err != nil {
			c.repairs.failed.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		copied++
	}
	c.repairs.applied.Add(int64(copied))
	if copied > 0 {
		c.logf("read repair %q: copied to %d lagging replica(s)", name, copied)
	}
	return copied, firstErr
}

func isNotFound(err error) bool {
	var berr *BackendError
	return errors.As(err, &berr) && berr.Status == http.StatusNotFound
}

// RepairSweepResponse is the body of POST /v1/admin/repair.
type RepairSweepResponse struct {
	// Backends is how many backends were enumerated; Skipped lists the
	// ones that could not be (down or mid-restart) — their exclusive
	// records, if any, were not visible to this sweep.
	Backends int      `json:"backends"`
	Skipped  []string `json:"skipped,omitempty"`
	// Records is the distinct record names observed across the fleet.
	Records int `json:"records"`
	// Repaired counts copies written to under-replicated replica sets;
	// RemovedStrays counts copies deleted from backends outside a
	// record's replica set (only once the set itself was complete).
	Repaired      int `json:"repaired"`
	RemovedStrays int `json:"removed_strays"`
	Failures      int `json:"failures"`
}

// handleRepairSweep runs one full anti-entropy sweep.
func (c *Coordinator) handleRepairSweep(w http.ResponseWriter, r *http.Request) {
	resp, err := c.runRepairSweep(r.Context())
	if err != nil {
		server.WriteError(w, http.StatusBadGateway, CodeBackendDown, err.Error())
		return
	}
	server.WriteJSON(w, http.StatusOK, resp)
}

// sweepLoop runs periodic sweeps when RepairInterval is set.
func (c *Coordinator) sweepLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.RepairInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.stop:
			return
		case <-t.C:
			if resp, err := c.runRepairSweep(ctx); err != nil {
				c.logf("periodic repair sweep: %v", err)
			} else if resp.Repaired+resp.RemovedStrays > 0 {
				c.logf("periodic repair sweep: %d repaired, %d strays removed over %d records",
					resp.Repaired, resp.RemovedStrays, resp.Records)
			}
		}
	}
}

// runRepairSweep walks the ring per record and converges every replica
// set: enumerate each reachable backend (names only — signatures are
// refetched per divergent record, so the sweep's memory is one bit set
// per record, not the corpus), diff observed placement against the
// ring, repair under-replication, and then remove stray copies that a
// past membership change left outside the replica set. Strays are
// removed only after their record's replica set is verifiably
// complete, so the sweep never destroys the last copy of anything.
func (c *Coordinator) runRepairSweep(ctx context.Context) (RepairSweepResponse, error) {
	ring, _ := c.rings()
	backends := c.backendList()
	if len(backends) > 64 {
		return RepairSweepResponse{}, fmt.Errorf("repair sweep supports up to 64 backends, fleet has %d", len(backends))
	}
	bitOf := make(map[string]uint, len(backends))
	for i, b := range backends {
		bitOf[b.addr] = uint(i)
	}

	resp := RepairSweepResponse{Backends: len(backends)}
	present := make(map[string]uint64)
	for _, b := range backends {
		if err := c.enumerateBackend(ctx, b, func(rec server.ReplicaRecord) {
			present[rec.Name] |= 1 << bitOf[b.addr]
		}); err != nil {
			resp.Skipped = append(resp.Skipped, b.addr)
			c.logf("repair sweep: skipping %s: %v", b.addr, err)
		}
	}
	if len(resp.Skipped) == len(backends) {
		return resp, fmt.Errorf("repair sweep: no backend could be enumerated")
	}
	resp.Records = len(present)

	for name, mask := range present {
		if ctx.Err() != nil {
			return resp, ctx.Err()
		}
		var want uint64
		for _, addr := range ring.Replicas(name) {
			if bit, ok := bitOf[addr]; ok {
				want |= 1 << bit
			}
		}
		missing := want &^ mask
		strays := mask &^ want
		if missing != 0 {
			copied, err := c.repairRecord(ctx, name)
			resp.Repaired += copied
			if err != nil || copied < bits.OnesCount64(missing) {
				resp.Failures++
				continue // replica set not proven complete; keep the strays
			}
		}
		for _, b := range backends {
			if strays&(1<<bitOf[b.addr]) == 0 {
				continue
			}
			cctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
			err := c.client.do(cctx, b, "DELETE", "/v1/records/"+url.PathEscape(name), nil, nil)
			cancel()
			if err != nil && !isNotFound(err) {
				resp.Failures++
				continue
			}
			resp.RemovedStrays++
			c.repairs.removed.Add(1)
		}
	}
	c.repairs.sweeps.Add(1)
	return resp, nil
}

// enumerateBackend pages through b's corpus, calling visit for every
// record. A page fetch gets one retry; a stale cursor (concurrent
// delete) restarts the walk once, since the sweep is idempotent
// anyway.
func (c *Coordinator) enumerateBackend(ctx context.Context, b *backend, visit func(server.ReplicaRecord)) error {
	restarted := false
	cursor := ""
	for {
		var page server.RecordListResponse
		path := "/v1/records?limit=256"
		if cursor != "" {
			path += "&cursor=" + url.QueryEscape(cursor)
		}
		cctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
		err := c.client.do(cctx, b, "GET", path, nil, &page)
		cancel()
		if err != nil {
			var berr *BackendError
			if errors.As(err, &berr) && berr.Code == server.CodeCursorGone && !restarted {
				restarted = true
				cursor = ""
				continue
			}
			// One retry: a single dropped connection should not fail a
			// whole enumeration — but it spends a retry token like every
			// other second attempt.
			if !c.budget.allow(1) {
				return fmt.Errorf("enumerate %s: %w (retry budget exhausted)", b.addr, err)
			}
			cctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
			err = c.client.do(cctx, b, "GET", path, nil, &page)
			cancel()
			if err != nil {
				return err
			}
		}
		for _, rec := range page.Records {
			visit(rec)
		}
		if page.NextCursor == "" {
			return nil
		}
		cursor = page.NextCursor
	}
}

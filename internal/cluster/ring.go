package cluster

import (
	"fmt"
	"sort"
)

// Ring places record names onto backends by rendezvous (highest-
// random-weight) hashing: every (backend, name) pair gets a hash score
// and the name's replica set is the replication highest-scoring
// backends. Unlike a bucketed consistent-hash ring there are no
// virtual nodes to tune and no bucket boundaries: removing a backend
// remaps only the names that had it in their replica set, and the load
// split is as even as the hash.
//
// A Ring is immutable after New; placement depends only on the backend
// address list (order-insensitively) and the name, so every
// coordinator configured with the same backends routes identically.
type Ring struct {
	backends    []string
	replication int
}

// NewRing builds a ring over the given backend addresses. Addresses
// must be unique and non-empty; replication must be between 1 and the
// number of backends. The slice is copied and sorted, so placement is
// independent of argument order.
func NewRing(backends []string, replication int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one backend")
	}
	if replication < 1 || replication > len(backends) {
		return nil, fmt.Errorf("cluster: replication %d out of range [1, %d backends]", replication, len(backends))
	}
	sorted := make([]string, len(backends))
	copy(sorted, backends)
	sort.Strings(sorted)
	for i, b := range sorted {
		if b == "" {
			return nil, fmt.Errorf("cluster: empty backend address")
		}
		if i > 0 && sorted[i-1] == b {
			return nil, fmt.Errorf("cluster: duplicate backend address %q", b)
		}
	}
	return &Ring{backends: sorted, replication: replication}, nil
}

// Backends returns the ring's backend addresses, sorted. The slice is
// shared; treat it as read-only.
func (r *Ring) Backends() []string { return r.backends }

// Replication returns the ring's replication factor.
func (r *Ring) Replication() int { return r.replication }

// Replicas returns name's replica set: the replication backends with
// the highest rendezvous scores for name, best first. The result is
// deterministic (score ties — astronomically unlikely with a 64-bit
// hash — break by address order).
func (r *Ring) Replicas(name string) []string {
	return r.ReplicasAppend(nil, name)
}

// ReplicasAppend appends name's replica set to dst and returns it,
// letting hot paths reuse one buffer across records.
func (r *Ring) ReplicasAppend(dst []string, name string) []string {
	// Selection sort over the top R of B scores: R and B are both small
	// (single digits to low tens), so O(B*R) with zero allocation beats
	// sorting a scored copy.
	base := len(dst)
	var taken [64]bool
	var takenBig []bool
	if len(r.backends) > len(taken) {
		takenBig = make([]bool, len(r.backends))
	}
	isTaken := func(i int) bool {
		if takenBig != nil {
			return takenBig[i]
		}
		return taken[i]
	}
	take := func(i int) {
		if takenBig != nil {
			takenBig[i] = true
		} else {
			taken[i] = true
		}
	}
	h := fnv1aString(fnvOffset, name)
	for n := 0; n < r.replication; n++ {
		best, bestScore := -1, uint64(0)
		for i, b := range r.backends {
			if isTaken(i) {
				continue
			}
			score := mix64(fnv1aString(h, b))
			if best == -1 || score > bestScore {
				best, bestScore = i, score
			}
		}
		take(best)
		dst = append(dst, r.backends[best])
	}
	return dst[:base+r.replication]
}

// Primary returns the first backend in name's replica set.
func (r *Ring) Primary(name string) string {
	var buf [8]string
	return r.ReplicasAppend(buf[:0], name)[0]
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv1aString folds s into a running FNV-1a hash. Feeding the name
// first and each backend address second gives every pair a distinct
// stream without concatenating strings.
func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mix64 is the SplitMix64 finalizer; FNV-1a alone avalanches weakly in
// the high bits, and rendezvous selection compares whole words.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package cluster

import (
	"context"
	"math/rand"
	"time"
)

// healthLoop probes backends' /healthz until ctx is canceled. The loop
// ticks at HealthInterval, but each backend carries its own reprobe
// deadline: a backend that keeps failing probes has its interval
// doubled (with jitter, capped at MaxProbeInterval), so a dead backend
// costs one connection attempt every backoff period instead of every
// tick, and a fleet of coordinators restarting together does not
// reprobe in lockstep. Probes run sequentially — the fleet is small
// and a sequential sweep keeps the checker to one goroutine — with
// each probe bounded by the fan-out timeout.
func (c *Coordinator) healthLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			now := time.Now()
			for _, b := range c.backendList() {
				if now.Before(b.nextProbe) {
					continue
				}
				c.probe(ctx, b)
			}
		}
	}
}

func (c *Coordinator) probe(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
	err := c.client.do(pctx, b, "GET", "/healthz", nil, nil)
	cancel()
	c.observeProbe(b, err == nil)
	if err != nil {
		msg := err.Error()
		b.lastErr.Store(&msg)
	}
}

// observeProbe feeds one probe outcome into b's hysteresis: a backend
// is marked down only after DownAfter consecutive failures and back up
// only after UpAfter consecutive successes, so a single dropped probe
// (GC pause, stolen CPU) never flaps the ring. A down->up transition
// kicks the hint drainer — the moment a backend recovers is exactly
// when its queued writes should replay. Only the health loop calls
// this, so the consecutive counters and the reprobe schedule need no
// synchronization; the up flag and current interval are atomic because
// request paths and /stats read them.
func (c *Coordinator) observeProbe(b *backend, ok bool) {
	if ok {
		b.consecFails = 0
		b.consecOKs++
		b.probeInterval.Store(int64(c.baseProbeInterval()))
		b.nextProbe = time.Time{}
		if !b.up.Load() && b.consecOKs >= c.cfg.UpAfter {
			b.up.Store(true)
			b.downSince.Store(0)
			b.transitions.Add(1)
			c.logf("backend %s is up", b.addr)
			c.kickHintDrain()
		}
		return
	}
	b.consecOKs = 0
	b.consecFails++
	if b.up.Load() && b.consecFails >= c.cfg.DownAfter {
		b.up.Store(false)
		b.downSince.Store(time.Now().UnixNano())
		b.transitions.Add(1)
		c.logf("backend %s is down after %d consecutive probe failures", b.addr, b.consecFails)
	}
	if !b.up.Load() {
		b.scheduleReprobe(c.baseProbeInterval(), c.cfg.MaxProbeInterval)
	}
}

// baseProbeInterval is the healthy-backend probe cadence. Hand-driven
// tests configure a negative HealthInterval; backoff math still needs
// a positive base then.
func (c *Coordinator) baseProbeInterval() time.Duration {
	if c.cfg.HealthInterval > 0 {
		return c.cfg.HealthInterval
	}
	return DefaultHealthInterval
}

// scheduleReprobe doubles b's reprobe interval (starting from base,
// capped at max) and sets the next probe deadline with +-20% jitter.
// The stored interval is the nominal, unjittered one so /stats shows a
// stable number.
func (b *backend) scheduleReprobe(base, max time.Duration) {
	next := time.Duration(b.probeInterval.Load()) * 2
	if next < base {
		next = base
	}
	if next > max {
		next = max
	}
	b.probeInterval.Store(int64(next))
	jittered := time.Duration(float64(next) * (0.8 + 0.4*rand.Float64()))
	b.nextProbe = time.Now().Add(jittered)
}

package cluster

import (
	"context"
	"time"
)

// healthLoop probes every backend's /healthz each interval until ctx
// is canceled. Probes run sequentially — the fleet is small and a
// sequential sweep keeps the checker to one goroutine — with each
// probe bounded by the fan-out timeout.
func (c *Coordinator) healthLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for _, b := range c.backends {
				c.probe(ctx, b)
			}
		}
	}
}

func (c *Coordinator) probe(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
	err := c.client.do(pctx, b, "GET", "/healthz", nil, nil)
	cancel()
	c.observeProbe(b, err == nil)
	if err != nil {
		msg := err.Error()
		b.lastErr.Store(&msg)
	}
}

// observeProbe feeds one probe outcome into b's hysteresis: a backend
// is marked down only after DownAfter consecutive failures and back up
// only after UpAfter consecutive successes, so a single dropped probe
// (GC pause, stolen CPU) never flaps the ring. Only the health loop
// calls this, so the consecutive counters need no synchronization; the
// up flag itself is atomic because every request path reads it.
func (c *Coordinator) observeProbe(b *backend, ok bool) {
	if ok {
		b.consecFails = 0
		b.consecOKs++
		if !b.up.Load() && b.consecOKs >= c.cfg.UpAfter {
			b.up.Store(true)
			b.downSince.Store(0)
			b.transitions.Add(1)
			c.logf("backend %s is up", b.addr)
		}
		return
	}
	b.consecOKs = 0
	b.consecFails++
	if b.up.Load() && b.consecFails >= c.cfg.DownAfter {
		b.up.Store(false)
		b.downSince.Store(time.Now().UnixNano())
		b.transitions.Add(1)
		c.logf("backend %s is down after %d consecutive probe failures", b.addr, b.consecFails)
	}
}

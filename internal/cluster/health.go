package cluster

import (
	"context"
	"math/rand"
	"time"
)

// healthLoop probes backends' /healthz until ctx is canceled. The loop
// ticks at HealthInterval, but each backend carries its own reprobe
// deadline: a backend that keeps failing probes has its interval
// doubled (with jitter, capped at MaxProbeInterval), so a dead backend
// costs one connection attempt every backoff period instead of every
// tick, and a fleet of coordinators restarting together does not
// reprobe in lockstep. Probes run sequentially — the fleet is small
// and a sequential sweep keeps the checker to one goroutine — with
// each probe bounded by the fan-out timeout.
func (c *Coordinator) healthLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			now := time.Now()
			for _, b := range c.backendList() {
				if now.Before(b.nextProbe) {
					continue
				}
				c.probe(ctx, b)
			}
		}
	}
}

func (c *Coordinator) probe(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
	err := c.client.doQuiet(pctx, b, "GET", "/healthz", nil, nil)
	cancel()
	c.observeProbe(b, err == nil)
	if err != nil {
		msg := err.Error()
		b.lastErr.Store(&msg)
	}
}

// observeProbe feeds one probe outcome into b's circuit breaker (see
// observeBreaker in resilience.go): a backend trips open only after
// DownAfter consecutive failures and closes only after UpAfter
// consecutive successes through half-open, so a single dropped probe
// (GC pause, stolen CPU) never flaps the ring, and an open->closed
// transition kicks the hint drainer — the moment a backend recovers is
// exactly when its queued writes should replay. Unlike the pre-breaker
// hysteresis, live request outcomes feed the same state machine, so
// probes are the backstop rather than the only signal; the reprobe
// backoff schedule, though, is still the health loop's alone.
func (c *Coordinator) observeProbe(b *backend, ok bool) {
	c.observeBreaker(b, ok, true)
}

// baseProbeInterval is the healthy-backend probe cadence. Hand-driven
// tests configure a negative HealthInterval; backoff math still needs
// a positive base then.
func (c *Coordinator) baseProbeInterval() time.Duration {
	if c.cfg.HealthInterval > 0 {
		return c.cfg.HealthInterval
	}
	return DefaultHealthInterval
}

// scheduleReprobe doubles b's reprobe interval (starting from base,
// capped at max) and sets the next probe deadline with +-20% jitter.
// The stored interval is the nominal, unjittered one so /stats shows a
// stable number.
func (b *backend) scheduleReprobe(base, max time.Duration) {
	next := time.Duration(b.probeInterval.Load()) * 2
	if next < base {
		next = base
	}
	if next > max {
		next = max
	}
	b.probeInterval.Store(int64(next))
	jittered := time.Duration(float64(next) * (0.8 + 0.4*rand.Float64()))
	b.nextProbe = time.Now().Add(jittered)
}

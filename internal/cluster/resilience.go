package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// Per-backend circuit breaker states. The breaker subsumes the old
// consecutive-failure health hysteresis: closed is the healthy state,
// open means the backend is shed from first-wave traffic, and half-open
// is the recovery probation — successes are flowing but fewer than
// UpAfter of them have accumulated, so one failure snaps straight back
// to open. The up flag request paths read is derived: true iff closed.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName renders a breaker state for /stats and /metrics.
func breakerStateName(s int32) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// observeBreaker feeds one outcome — a health probe's or a live
// request's — into b's breaker. Closed trips open after DownAfter
// consecutive failures; open moves to half-open on the first success;
// half-open closes after UpAfter total consecutive successes and
// reopens on any failure. Request outcomes drive the same machine as
// probes, so a failing backend is shed as fast as traffic discovers it
// rather than at probe cadence — but only probes touch the reprobe
// backoff schedule (nextProbe belongs to the health loop). A close
// (down->up) kicks the hint drainer, exactly when queued writes should
// replay.
func (c *Coordinator) observeBreaker(b *backend, ok, fromProbe bool) {
	b.bMu.Lock()
	state := b.bState.Load()
	if ok {
		b.consecFails = 0
		b.consecOKs++
		if fromProbe {
			b.probeInterval.Store(int64(c.baseProbeInterval()))
			b.nextProbe = time.Time{}
		}
		if state == breakerClosed {
			b.bMu.Unlock()
			return
		}
		if state == breakerOpen {
			b.bState.Store(breakerHalfOpen)
			b.halfOpens.Add(1)
			state = breakerHalfOpen
		}
		if state == breakerHalfOpen && b.consecOKs >= c.cfg.UpAfter {
			b.bState.Store(breakerClosed)
			b.closes.Add(1)
			b.up.Store(true)
			b.downSince.Store(0)
			b.transitions.Add(1)
			b.bMu.Unlock()
			c.logf("backend %s is up (breaker closed)", b.addr)
			c.kickHintDrain()
			return
		}
		b.bMu.Unlock()
		return
	}
	b.consecOKs = 0
	b.consecFails++
	opened := false
	switch state {
	case breakerClosed:
		if b.consecFails >= c.cfg.DownAfter {
			opened = true
		}
	case breakerHalfOpen:
		// Probation failed: reopen immediately, no hysteresis.
		opened = true
	}
	fails := b.consecFails
	if opened {
		b.bState.Store(breakerOpen)
		b.opens.Add(1)
		if b.up.Load() {
			b.up.Store(false)
			b.downSince.Store(time.Now().UnixNano())
			b.transitions.Add(1)
		}
	}
	if fromProbe && !b.up.Load() {
		b.scheduleReprobe(c.baseProbeInterval(), c.cfg.MaxProbeInterval)
	}
	b.bMu.Unlock()
	if opened {
		c.logf("backend %s is down after %d consecutive failures (breaker open)", b.addr, fails)
	}
}

// retryBudget is the coordinator-wide token bucket that caps retry
// amplification: every retried backend call — search second waves, hint
// replays, repair copies, enumeration retries — spends one token, and
// tokens refill at a fixed rate. When the bucket runs dry retries are
// denied (the caller degrades: a search goes partial, a hint stays
// queued for the next drain pass) instead of storming a recovering
// backend with the whole cluster's backlog at once.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	rate   float64 // tokens per second
	last   time.Time

	spent  atomic.Int64 // retries granted
	denied atomic.Int64 // retries denied on an empty bucket
}

func newRetryBudget(max int, rate float64) *retryBudget {
	return &retryBudget{tokens: float64(max), max: float64(max), rate: rate, last: time.Now()}
}

// allow takes n tokens, or none: a half-granted retry wave would retry
// some backends and silently skip others, which is worse than an
// honest denial. It reports whether the tokens were granted.
func (rb *retryBudget) allow(n int) bool {
	if n <= 0 {
		return true
	}
	rb.mu.Lock()
	now := time.Now()
	rb.tokens += now.Sub(rb.last).Seconds() * rb.rate
	if rb.tokens > rb.max {
		rb.tokens = rb.max
	}
	rb.last = now
	if rb.tokens < float64(n) {
		rb.mu.Unlock()
		rb.denied.Add(int64(n))
		return false
	}
	rb.tokens -= float64(n)
	rb.mu.Unlock()
	rb.spent.Add(int64(n))
	return true
}

// remaining returns the current token count (refilled to now).
func (rb *retryBudget) remaining() float64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	tokens := rb.tokens + time.Since(rb.last).Seconds()*rb.rate
	if tokens > rb.max {
		tokens = rb.max
	}
	return tokens
}

// acquireFanout admits one fan-out under the concurrency bound, or
// sheds it. The returned release func is nil when the fan-out was shed;
// the caller then answers 503 with Retry-After so well-behaved clients
// back off instead of re-slamming a saturated coordinator.
func (c *Coordinator) acquireFanout() func() {
	n := c.fanouts.Add(1)
	if n > int64(c.cfg.MaxFanout) {
		c.fanouts.Add(-1)
		c.metrics.shed.Add(1)
		return nil
	}
	return func() { c.fanouts.Add(-1) }
}

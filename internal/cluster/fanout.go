package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"sketchengine/internal/core"
	"sketchengine/internal/server"
)

// searchCall is one backend's slot in a scatter-gather: filled by the
// first wave or the retry wave, whichever reaches the backend.
type searchCall struct {
	b    *backend
	resp server.SearchResponse
	ok   bool
	err  error
}

// handleSearch scatter-gathers a search. Every backend holds a shard
// of the corpus, so the query goes to all of them (the ring is not
// consulted: it maps names, and a search has no name). The per-backend
// top-Ks are concatenated, deduped by ref (replication means up to
// Replication copies of every hit), and reduced with core.MergeTopK —
// the same bounded-heap merge and total order the in-process per-shard
// scan uses, which is what makes a coordinator's answer byte-identical
// to a single node over the same corpus.
//
// Fault handling is two-staged. Backends marked down are skipped in
// the first wave but, together with backends that failed it, get one
// retry: the probe view lags reality, and a replica's partner having
// answered does not excuse losing the records they do not share. Only
// when the final non-responder count reaches the replication factor
// could a whole replica set be unrepresented — then, and only then,
// the response degrades to "partial": true. Anything less and every
// record still has at least one responding replica, so the result is
// provably complete and is returned unflagged.
func (c *Coordinator) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req server.SearchRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if req.Mode != "" {
		// Fail a bad mode here: fanning it out would return backend 400s
		// dressed up as a cluster fault.
		if _, err := core.ParseSearchMode(req.Mode); err != nil {
			server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
			return
		}
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k < 0 {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
			fmt.Sprintf("search: k must be positive, got %d", k))
		return
	}
	c.metrics.searches.Add(1)
	release := c.acquireFanout()
	if release == nil {
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeOverloaded,
			fmt.Sprintf("search: coordinator at fan-out capacity (%d); retry later", c.cfg.MaxFanout))
		return
	}
	defer release()

	backends := c.backendList()
	calls := make([]*searchCall, len(backends))
	var firstWave []*searchCall
	for i, b := range backends {
		calls[i] = &searchCall{b: b}
		if b.up.Load() {
			firstWave = append(firstWave, calls[i])
		}
	}
	c.scatterSearch(r.Context(), firstWave, &req)

	var retryWave []*searchCall
	for _, call := range calls {
		if !call.ok {
			retryWave = append(retryWave, call)
		}
	}
	if len(retryWave) > 0 && len(retryWave) < len(calls) && c.budget.allow(len(retryWave)) {
		// Retry failed and down-skipped backends once before giving up on
		// them; a whole-cluster outage skips straight to the error below,
		// and an exhausted retry budget degrades to partial rather than
		// joining a retry storm against recovering backends.
		c.metrics.retries.Add(int64(len(retryWave)))
		c.scatterSearch(r.Context(), retryWave, &req)
	}

	responded := 0
	for _, call := range calls {
		if call.ok {
			responded++
		}
	}
	if responded == 0 {
		server.WriteError(w, http.StatusBadGateway, CodeBackendDown, "search: no backend responded")
		return
	}
	partial := len(calls)-responded >= c.cfg.Replication
	if partial {
		c.metrics.partials.Add(1)
	}

	// Concatenate, dedup by ref keeping the best-scored copy, merge.
	// Replicated copies of a hit are byte-equal, so "best" only matters
	// if replicas diverged mid-write; keeping the max keeps the answer
	// monotone with the most complete replica.
	var pooled []core.Result
	seen := make(map[string]int)
	mode := ""
	for _, call := range calls {
		if !call.ok {
			continue
		}
		if mode == "" {
			mode = call.resp.Mode
		}
		for _, hit := range call.resp.Results {
			if j, dup := seen[hit.Ref]; dup {
				if hit.Similarity > pooled[j].Similarity {
					pooled[j].Similarity = hit.Similarity
					pooled[j].Distance = hit.Distance
				}
				continue
			}
			seen[hit.Ref] = len(pooled)
			pooled = append(pooled, core.Result{
				Query:      req.Name,
				Ref:        hit.Ref,
				Similarity: hit.Similarity,
				Distance:   hit.Distance,
			})
		}
	}
	merged := core.MergeTopK(pooled, k)
	ring, _ := c.rings()
	c.offerSearchRepairs(ring, calls, merged, k)
	// Zero-hit responses must encode as "results":[], matching the
	// single-node server (nil would marshal as null).
	hits := make([]server.SearchHit, 0, len(merged))
	for i, res := range merged {
		hits = append(hits, server.SearchHit{Rank: i + 1, Ref: res.Ref, Similarity: res.Similarity, Distance: res.Distance})
	}
	server.WriteJSON(w, http.StatusOK, server.SearchResponse{
		Query:   req.Name,
		Mode:    mode,
		Results: hits,
		Partial: partial,
	})
}

// offerSearchRepairs turns search results into anti-entropy signals: a
// merged hit absent from a responding replica that the ring says holds
// it — when that replica's list provably had room (fewer than k hits,
// or a strictly worse-scored tail) — is replica disagreement, and the
// record goes to the read-repair queue. Candidate-pruning modes can
// legitimately miss a hit the replica does hold, so this is a
// heuristic; a false positive only costs the repair worker one probe
// that finds nothing to fix.
func (c *Coordinator) offerSearchRepairs(ring *Ring, calls []*searchCall, merged []core.Result, k int) {
	byAddr := make(map[string]*searchCall, len(calls))
	responded := 0
	for _, call := range calls {
		if call.ok {
			byAddr[call.b.addr] = call
			responded++
		}
	}
	if responded < 2 {
		return // disagreement needs two answers
	}
	for _, hit := range merged {
		for _, addr := range ring.Replicas(hit.Ref) {
			call, ok := byAddr[addr]
			if !ok {
				continue
			}
			found := false
			for _, res := range call.resp.Results {
				if res.Ref == hit.Ref {
					found = true
					break
				}
			}
			if found {
				continue
			}
			hadRoom := len(call.resp.Results) < k ||
				(len(call.resp.Results) > 0 && call.resp.Results[len(call.resp.Results)-1].Similarity < hit.Similarity)
			if hadRoom {
				c.repairs.offer(hit.Ref)
				break
			}
		}
	}
}

// scatterSearch sends req to every call's backend concurrently, each
// bounded by the fan-out timeout, and records the outcome in place.
func (c *Coordinator) scatterSearch(ctx context.Context, wave []*searchCall, req *server.SearchRequest) {
	var wg sync.WaitGroup
	for _, call := range wave {
		wg.Add(1)
		go func(call *searchCall) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
			defer cancel()
			call.resp = server.SearchResponse{}
			call.err = c.client.do(cctx, call.b, "POST", "/v1/search", req, &call.resp)
			call.ok = call.err == nil
		}(call)
	}
	wg.Wait()
}

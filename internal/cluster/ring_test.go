package cluster

import (
	"fmt"
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 1); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 1); err == nil {
		t.Error("duplicate backend accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 1); err == nil {
		t.Error("empty backend address accepted")
	}
	if _, err := NewRing([]string{"a:1", "b:1"}, 3); err == nil {
		t.Error("replication > backends accepted")
	}
	if _, err := NewRing([]string{"a:1", "b:1"}, 0); err == nil {
		t.Error("replication 0 accepted")
	}
}

// TestRingDeterminism: placement must depend only on the backend set,
// not on configuration order — every coordinator over the same fleet
// must route identically.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing([]string{"h1:1", "h2:1", "h3:1", "h4:1"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"h3:1", "h1:1", "h4:1", "h2:1"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("record-%d", i)
		ra, rb := a.Replicas(name), b.Replicas(name)
		if len(ra) != 2 || len(rb) != 2 {
			t.Fatalf("replica set size = %d/%d, want 2", len(ra), len(rb))
		}
		if ra[0] != rb[0] || ra[1] != rb[1] {
			t.Fatalf("rings disagree on %q: %v vs %v", name, ra, rb)
		}
		if ra[0] == ra[1] {
			t.Fatalf("replica set for %q repeats a backend: %v", name, ra)
		}
	}
}

// TestRingBalance: rendezvous hashing should spread primaries within a
// small factor of even across a modest fleet.
func TestRingBalance(t *testing.T) {
	backends := []string{"h1:1", "h2:1", "h3:1", "h4:1", "h5:1"}
	r, err := NewRing(backends, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const names = 10000
	for i := 0; i < names; i++ {
		counts[r.Primary(fmt.Sprintf("some/path/record-%d.txt", i))]++
	}
	mean := names / len(backends)
	for _, b := range backends {
		if c := counts[b]; c < mean/2 || c > mean*2 {
			t.Errorf("backend %s owns %d primaries, want within [%d, %d] of mean %d",
				b, c, mean/2, mean*2, mean)
		}
	}
}

// TestRingRemovalStability: removing one backend must not remap names
// whose replica set never contained it — the minimal-disruption
// property that justifies rendezvous over modulo placement.
func TestRingRemovalStability(t *testing.T) {
	full := []string{"h1:1", "h2:1", "h3:1", "h4:1", "h5:1"}
	without := []string{"h1:1", "h2:1", "h3:1", "h4:1"} // h5 removed
	a, err := NewRing(full, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(without, 2)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("record-%d", i)
		ra := a.Replicas(name)
		if ra[0] == "h5:1" || ra[1] == "h5:1" {
			continue
		}
		checked++
		rb := b.Replicas(name)
		if ra[0] != rb[0] || ra[1] != rb[1] {
			t.Fatalf("removing an uninvolved backend remapped %q: %v -> %v", name, ra, rb)
		}
	}
	if checked == 0 {
		t.Fatal("no names avoided the removed backend; balance is broken")
	}
}

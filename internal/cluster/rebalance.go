package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"slices"

	"sketchengine/internal/server"
)

// Elastic membership: POST /v1/admin/join adds a backend to the ring,
// POST /v1/admin/drain removes one — both without ever violating the
// replication invariant (every record on exactly Replication replicas
// of the *committed* ring). The protocol:
//
//  1. Compute the target ring. Writes arriving during the migration go
//     to the union of old-ring and target-ring replica sets, with the
//     quorum still counted on the old (authoritative) set — so no
//     record written mid-migration can miss its new home.
//  2. Stream: enumerate every old-ring backend's corpus and copy each
//     record whose target replica set gained members to those members
//     (pre-sketched, via /v1/admin/replicate). Any failure aborts the
//     whole operation with the old ring intact; the stream is
//     idempotent, so a retry resumes the work for free.
//  3. Commit the ring swap under the membership lock. Only now does
//     placement change.
//  4. Join only: best-effort delete the copies the swap stranded
//     outside their replica sets (rendezvous hashing moves each
//     affected record off exactly one old replica). Leftover strays
//     are harmless to reads (search dedups) and the sweep removes
//     them. A drain needs no cleanup: removal never remaps records
//     that were not on the drained backend, so the survivors' copies
//     are exactly the target placement.
const (
	// CodeRebalanceBusy (409): another join/drain is streaming.
	CodeRebalanceBusy = "rebalance_busy"
	// CodeRebalanceFailed (502): the streaming phase could not complete;
	// the ring is unchanged and the request can be retried.
	CodeRebalanceFailed = "rebalance_failed"

	// rebalanceBatch is how many record copies are shipped per
	// replicate call during a stream.
	rebalanceBatch = 128
)

// JoinRequest is the body of POST /v1/admin/join.
type JoinRequest struct {
	Backend string `json:"backend"`
}

// DrainRequest is the body of POST /v1/admin/drain.
type DrainRequest struct {
	Backend string `json:"backend"`
}

// RebalanceResponse reports a committed join or drain.
type RebalanceResponse struct {
	Action      string   `json:"action"` // "join" or "drain"
	Backend     string   `json:"backend"`
	Backends    []string `json:"backends"` // committed ring membership
	Replication int      `json:"replication"`
	// Examined is the records the stream enumerated; Moved is how many
	// had a changed replica set; Copied is the copies written.
	Examined int `json:"examined"`
	Moved    int `json:"moved"`
	Copied   int `json:"copied"`
	// Cleaned counts stale copies deleted after a join's commit.
	Cleaned int `json:"cleaned,omitempty"`
	// Skipped lists backends that could not be enumerated (tolerated up
	// to replication-1 of them: every record still has a reachable
	// replica to stream from).
	Skipped []string `json:"skipped,omitempty"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if req.Backend == "" {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "join: backend address is required")
		return
	}
	if !c.rebalanceMu.TryLock() {
		server.WriteError(w, http.StatusConflict, CodeRebalanceBusy, "join: another membership change is in progress")
		return
	}
	defer c.rebalanceMu.Unlock()

	old, _ := c.rings()
	if slices.Contains(old.Backends(), req.Backend) {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
			fmt.Sprintf("join: backend %s is already in the ring", req.Backend))
		return
	}
	target, err := NewRing(append(slices.Clone(old.Backends()), req.Backend), c.cfg.Replication)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("join: %v", err))
		return
	}
	nb := newBackend(req.Backend)
	pctx, cancel := context.WithTimeout(r.Context(), c.cfg.FanoutTimeout)
	err = c.client.do(pctx, nb, "GET", "/healthz", nil, nil)
	cancel()
	if err != nil {
		server.WriteError(w, http.StatusBadGateway, CodeBackendDown,
			fmt.Sprintf("join: backend %s failed its admission probe: %v", req.Backend, err))
		return
	}

	// Register the joiner and the target ring: from here, writes use
	// union placement and the fleet (health, search fan-out) sees the
	// new backend.
	c.mu.Lock()
	c.backends = append(slices.Clone(c.backends), nb)
	c.byAddr[req.Backend] = nb
	c.next = target
	c.mu.Unlock()
	c.metrics.rebalanceActive.Store(true)
	defer c.metrics.rebalanceActive.Store(false)

	st, err := c.streamRebalance(r.Context(), old, target)
	if err != nil {
		// Roll back: drop the joiner, keep the old ring. Copies already
		// streamed are strays the sweep (or a retried join) handles.
		c.mu.Lock()
		c.next = nil
		c.backends = withoutBackend(c.backends, nb)
		delete(c.byAddr, req.Backend)
		c.mu.Unlock()
		c.metrics.rebalanceFailures.Add(1)
		server.WriteError(w, http.StatusBadGateway, CodeRebalanceFailed, fmt.Sprintf("join %s: %v", req.Backend, err))
		return
	}

	c.mu.Lock()
	c.ring = target
	c.next = nil
	c.mu.Unlock()
	c.metrics.joins.Add(1)
	c.metrics.rebalanceMoved.Add(int64(st.moved))
	c.metrics.rebalanceCopied.Add(int64(st.copied))

	// Post-commit cleanup: each moved record left one copy behind on
	// the replica the joiner displaced. Best-effort — a failure leaves
	// a harmless stray for the sweep.
	cleaned := 0
	for name, addrs := range st.cleanup {
		for _, addr := range addrs {
			b := c.lookup(addr)
			if b == nil {
				continue
			}
			cctx, cancel := context.WithTimeout(r.Context(), c.cfg.FanoutTimeout)
			err := c.client.do(cctx, b, "DELETE", "/v1/records/"+url.PathEscape(name), nil, nil)
			cancel()
			if err == nil || isNotFound(err) {
				cleaned++
			}
		}
	}
	c.logf("join %s committed: %d/%d records moved, %d copies streamed, %d stale copies cleaned",
		req.Backend, st.moved, st.examined, st.copied, cleaned)
	server.WriteJSON(w, http.StatusOK, RebalanceResponse{
		Action:      "join",
		Backend:     req.Backend,
		Backends:    target.Backends(),
		Replication: c.cfg.Replication,
		Examined:    st.examined,
		Moved:       st.moved,
		Copied:      st.copied,
		Cleaned:     cleaned,
		Skipped:     st.skipped,
	})
}

func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req DrainRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if req.Backend == "" {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "drain: backend address is required")
		return
	}
	if !c.rebalanceMu.TryLock() {
		server.WriteError(w, http.StatusConflict, CodeRebalanceBusy, "drain: another membership change is in progress")
		return
	}
	defer c.rebalanceMu.Unlock()

	old, _ := c.rings()
	if !slices.Contains(old.Backends(), req.Backend) {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
			fmt.Sprintf("drain: backend %s is not in the ring", req.Backend))
		return
	}
	remaining := slices.DeleteFunc(slices.Clone(old.Backends()), func(a string) bool { return a == req.Backend })
	target, err := NewRing(remaining, c.cfg.Replication)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
			fmt.Sprintf("drain: %d remaining backends cannot hold replication %d", len(remaining), c.cfg.Replication))
		return
	}

	c.mu.Lock()
	c.next = target
	c.mu.Unlock()
	c.metrics.rebalanceActive.Store(true)
	defer c.metrics.rebalanceActive.Store(false)

	st, err := c.streamRebalance(r.Context(), old, target)
	if err != nil {
		c.mu.Lock()
		c.next = nil
		c.mu.Unlock()
		c.metrics.rebalanceFailures.Add(1)
		server.WriteError(w, http.StatusBadGateway, CodeRebalanceFailed, fmt.Sprintf("drain %s: %v", req.Backend, err))
		return
	}

	// Commit: swap the ring and retire the backend. Its pending hints
	// can never be delivered to a ring member again, so they are
	// dropped (counted), and its copies leave the fleet with it —
	// rendezvous removal means the survivors already hold exactly the
	// target placement.
	var drained *backend
	c.mu.Lock()
	c.ring = target
	c.next = nil
	drained = c.byAddr[req.Backend]
	if drained != nil {
		c.backends = withoutBackend(c.backends, drained)
		delete(c.byAddr, req.Backend)
	}
	c.mu.Unlock()
	c.hints.dropBackend(req.Backend)
	c.metrics.drains.Add(1)
	c.metrics.rebalanceMoved.Add(int64(st.moved))
	c.metrics.rebalanceCopied.Add(int64(st.copied))
	c.logf("drain %s committed: %d/%d records moved, %d copies streamed",
		req.Backend, st.moved, st.examined, st.copied)
	server.WriteJSON(w, http.StatusOK, RebalanceResponse{
		Action:      "drain",
		Backend:     req.Backend,
		Backends:    target.Backends(),
		Replication: c.cfg.Replication,
		Examined:    st.examined,
		Moved:       st.moved,
		Copied:      st.copied,
		Skipped:     st.skipped,
	})
}

// rebalanceStats is what one streaming pass accomplished.
type rebalanceStats struct {
	examined int
	moved    int
	copied   int
	skipped  []string
	// cleanup maps moved record names to the old-ring replicas their
	// move stranded (join only; populated for the post-commit delete).
	cleanup map[string][]string
}

// streamRebalance copies every record whose replica set differs
// between old and target to its new replicas. Enumeration failures are
// tolerated up to replication-1 backends — each record has replication
// copies on the old ring, so that many unreachable backends still
// leave every record enumerable somewhere. Copy failures are fatal:
// a record that cannot reach its new home would break the invariant
// the commit is about to assert.
func (c *Coordinator) streamRebalance(ctx context.Context, old, target *Ring) (*rebalanceStats, error) {
	st := &rebalanceStats{cleanup: make(map[string][]string)}
	seen := make(map[string]struct{})
	pending := make(map[string][]server.ReplicaRecord) // destination -> buffered copies

	flush := func(addr string) error {
		recs := pending[addr]
		if len(recs) == 0 {
			return nil
		}
		b := c.lookup(addr)
		if b == nil {
			return fmt.Errorf("destination %s left the fleet mid-stream", addr)
		}
		cctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
		err := c.client.do(cctx, b, "POST", "/v1/admin/replicate", &server.ReplicateRequest{Records: recs}, nil)
		cancel()
		if err != nil {
			return fmt.Errorf("streaming %d records to %s: %w", len(recs), addr, err)
		}
		st.copied += len(recs)
		pending[addr] = pending[addr][:0]
		return nil
	}

	for _, src := range old.Backends() {
		b := c.lookup(src)
		if b == nil {
			continue
		}
		var flushErr error
		err := c.enumerateBackend(ctx, b, func(rec server.ReplicaRecord) {
			if flushErr != nil {
				return
			}
			if _, dup := seen[rec.Name]; dup {
				return
			}
			seen[rec.Name] = struct{}{}
			st.examined++
			oldSet := old.Replicas(rec.Name)
			newSet := target.Replicas(rec.Name)
			movedHere := false
			for _, dst := range newSet {
				if !slices.Contains(oldSet, dst) {
					movedHere = true
					pending[dst] = append(pending[dst], rec)
					if len(pending[dst]) >= rebalanceBatch {
						flushErr = flush(dst)
					}
				}
			}
			if !movedHere {
				return
			}
			st.moved++
			for _, stray := range oldSet {
				if !slices.Contains(newSet, stray) {
					st.cleanup[rec.Name] = append(st.cleanup[rec.Name], stray)
				}
			}
		})
		if flushErr != nil {
			return st, flushErr
		}
		if err != nil {
			st.skipped = append(st.skipped, src)
			if len(st.skipped) >= old.Replication() {
				return st, fmt.Errorf("%d backends failed enumeration (replication %d — records may be invisible to the stream): last: %s: %v",
					len(st.skipped), old.Replication(), src, err)
			}
			c.logf("rebalance: enumeration of %s failed (%v); its records stream from their other replicas", src, err)
			continue
		}
	}
	for addr := range pending {
		if err := flush(addr); err != nil {
			return st, err
		}
	}
	return st, nil
}

// withoutBackend returns the list minus b, leaving the input intact —
// snapshots handed out under RLock keep iterating the old array.
func withoutBackend(list []*backend, b *backend) []*backend {
	out := make([]*backend, 0, len(list))
	for _, x := range list {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sketchengine/internal/server"
)

// Hinted handoff: when a write reaches its quorum but some replica
// missed it, the coordinator records a hint — enough to replay the
// write later — instead of silently leaving that replica behind. The
// drainer replays hints in order once the health prober sees the
// backend again, so a restarted replica converges without any manual
// repair. Hints expire after HintTTL (the anti-entropy sweep is the
// backstop for anything older).
//
// With HintsDir set, each backend's hints live in one append-only
// CRC-framed file reusing the WAL's frame shape (docs/FORMAT.md):
// a header (magic "SKHL", u32 version, u32 addrLen, addr) followed by
//
//	u32 bodyLen | u32 crc32(body) | body
//
// where body is
//
//	u64 expiresUnixNano | u8 op | u32 nameLen | name | u32 dataLen | data
//
// all little-endian. op=add carries the record payload (the backend
// re-sketches it deterministically); op=delete carries the tombstone.
// A torn tail from a crash mid-append is truncated at load, exactly
// like the core WAL. Replayed hints are removed by rewriting the file
// through a temp-file rename, so a crash mid-drain re-replays (adds
// and deletes are both idempotent on the backend).
const (
	hintMagic   = "SKHL"
	hintVersion = 1

	hintOpAdd    = 1
	hintOpDelete = 2

	// hintMaxBody rejects absurd frame lengths before allocating.
	hintMaxBody = 1 << 27
)

// hint is one deferred write for a backend that missed it.
type hint struct {
	op      byte
	name    string
	data    string // op=add only: the record payload
	expires int64  // unix nanos
}

// hintLog is one backend's pending hints, oldest first, plus the open
// durable file when the store has a directory.
type hintLog struct {
	addr  string
	path  string
	f     *os.File
	hints []hint
}

// hintStore holds every backend's pending hints. All methods are safe
// for concurrent use; the mutex spans file appends so the on-disk
// order matches the replay order.
type hintStore struct {
	dir string // "" = memory only
	ttl time.Duration

	mu   sync.Mutex
	logs map[string]*hintLog

	queued   atomic.Int64 // hints ever enqueued
	replayed atomic.Int64 // hints successfully replayed to their backend
	expired  atomic.Int64 // hints dropped past their TTL
	dropped  atomic.Int64 // hints discarded because the backend left the ring
}

// newHintStore builds the store, loading any hint files a previous
// coordinator left under dir (empty dir keeps hints in memory only).
func newHintStore(dir string, ttl time.Duration) (*hintStore, error) {
	s := &hintStore{dir: dir, ttl: ttl, logs: make(map[string]*hintLog)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: hints dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: hints dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".hint" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		addr, hints, validEnd, err := scanHintFile(path)
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(path); err == nil && fi.Size() > validEnd {
			// Torn tail from a crash mid-append: keep the valid prefix.
			if err := os.Truncate(path, validEnd); err != nil {
				return nil, fmt.Errorf("cluster: hints: truncate %s: %w", path, err)
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("cluster: hints: %w", err)
		}
		s.logs[addr] = &hintLog{addr: addr, path: path, f: f, hints: hints}
		s.queued.Add(int64(len(hints)))
	}
	return s, nil
}

// hintPath names addr's hint file: the address sanitized for the
// filesystem plus a hash suffix so distinct addresses never collide.
func hintPath(dir, addr string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.hint", url.PathEscape(addr), h.Sum64()))
}

// enqueue appends hints for addr, durably when the store has a
// directory (one fsync covers the whole batch). Enqueue failures are
// returned but non-fatal to the caller's write: the write already met
// quorum, a lost hint only delays convergence until the sweep.
func (s *hintStore) enqueue(addr string, hs ...hint) error {
	if len(hs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.logs[addr]
	if l == nil {
		l = &hintLog{addr: addr}
		if s.dir != "" {
			l.path = hintPath(s.dir, addr)
			f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
			if err != nil {
				return fmt.Errorf("cluster: hints: %w", err)
			}
			if _, err := f.Write(hintHeader(addr)); err != nil {
				f.Close()
				return fmt.Errorf("cluster: hints: %w", err)
			}
			l.f = f
		}
		s.logs[addr] = l
	}
	l.hints = append(l.hints, hs...)
	s.queued.Add(int64(len(hs)))
	if l.f == nil {
		return nil
	}
	var buf []byte
	for _, h := range hs {
		buf = appendHintFrame(buf, h)
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("cluster: hints: append %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("cluster: hints: fsync %s: %w", l.path, err)
	}
	return nil
}

// take returns a snapshot of addr's pending hints, oldest first. The
// drainer replays the snapshot in order and then calls commit with how
// many it disposed of; hints enqueued meanwhile sit safely past the
// snapshot.
func (s *hintStore) take(addr string) []hint {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.logs[addr]
	if l == nil || len(l.hints) == 0 {
		return nil
	}
	out := make([]hint, len(l.hints))
	copy(out, l.hints)
	return out
}

// commit removes the first done hints of addr's log (the prefix the
// drainer replayed or expired) and rewrites the durable file to match.
func (s *hintStore) commit(addr string, done int) error {
	if done <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.logs[addr]
	if l == nil {
		return nil
	}
	if done > len(l.hints) {
		done = len(l.hints)
	}
	l.hints = append(l.hints[:0], l.hints[done:]...)
	return s.rewriteLocked(l)
}

// rewriteLocked replaces l's file with its current in-memory hints via
// a temp-file rename, the same commit-point idiom the snapshot writer
// uses. Callers hold s.mu.
func (s *hintStore) rewriteLocked(l *hintLog) error {
	if l.f == nil {
		return nil
	}
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: hints: %w", err)
	}
	buf := hintHeader(l.addr)
	for _, h := range l.hints {
		buf = appendHintFrame(buf, h)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("cluster: hints: rewrite %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("cluster: hints: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cluster: hints: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("cluster: hints: %w", err)
	}
	l.f.Close()
	nf, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: hints: reopen %s: %w", l.path, err)
	}
	l.f = nf
	return nil
}

// dropBackend discards addr's hints and file: the backend left the
// ring, nothing will ever replay to it.
func (s *hintStore) dropBackend(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.logs[addr]
	if l == nil {
		return
	}
	s.dropped.Add(int64(len(l.hints)))
	if l.f != nil {
		l.f.Close()
		_ = os.Remove(l.path)
	}
	delete(s.logs, addr)
}

// depth returns the total pending hints across backends.
func (s *hintStore) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, l := range s.logs {
		n += len(l.hints)
	}
	return n
}

// depthFor returns addr's pending hint count.
func (s *hintStore) depthFor(addr string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l := s.logs[addr]; l != nil {
		return len(l.hints)
	}
	return 0
}

// addrs returns the backends with pending hints, sorted for
// deterministic drain order.
func (s *hintStore) addrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.logs))
	for addr, l := range s.logs {
		if len(l.hints) > 0 {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

func (s *hintStore) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, l := range s.logs {
		if l.f != nil {
			if err := l.f.Close(); err != nil && first == nil {
				first = err
			}
			l.f = nil
		}
	}
	return first
}

// hintHeader encodes the file header for addr.
func hintHeader(addr string) []byte {
	buf := make([]byte, 0, 12+len(addr))
	buf = append(buf, hintMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, hintVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(addr)))
	return append(buf, addr...)
}

// appendHintFrame appends h's CRC frame to buf.
func appendHintFrame(buf []byte, h hint) []byte {
	body := make([]byte, 0, 8+1+4+len(h.name)+4+len(h.data))
	body = binary.LittleEndian.AppendUint64(body, uint64(h.expires))
	body = append(body, h.op)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(h.name)))
	body = append(body, h.name...)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(h.data)))
	body = append(body, h.data...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return append(buf, body...)
}

// scanHintFile reads one hint file, returning the backend address from
// its header, the decoded hints, and the byte offset of the end of the
// valid prefix. A short or corrupt frame ends the scan cleanly (torn
// tail); a bad magic or version is a hard error — the file is not a
// hint log.
func scanHintFile(path string) (addr string, hints []hint, validEnd int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, 0, fmt.Errorf("cluster: hints: %w", err)
	}
	if len(raw) < 12 || string(raw[0:4]) != hintMagic {
		return "", nil, 0, fmt.Errorf("cluster: hints: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != hintVersion {
		return "", nil, 0, fmt.Errorf("cluster: hints: %s: unsupported version %d", path, v)
	}
	addrLen := int(binary.LittleEndian.Uint32(raw[8:12]))
	if addrLen <= 0 || 12+addrLen > len(raw) {
		return "", nil, 0, fmt.Errorf("cluster: hints: %s: corrupt header", path)
	}
	addr = string(raw[12 : 12+addrLen])
	off := int64(12 + addrLen)
	validEnd = off
	for {
		if int64(len(raw))-off < 8 {
			return addr, hints, validEnd, nil
		}
		bodyLen := int64(binary.LittleEndian.Uint32(raw[off : off+4]))
		crc := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		if bodyLen > hintMaxBody || off+8+bodyLen > int64(len(raw)) {
			return addr, hints, validEnd, nil
		}
		body := raw[off+8 : off+8+bodyLen]
		if crc32.ChecksumIEEE(body) != crc {
			return addr, hints, validEnd, nil
		}
		h, ok := decodeHintBody(body)
		if !ok {
			return addr, hints, validEnd, nil
		}
		hints = append(hints, h)
		off += 8 + bodyLen
		validEnd = off
	}
}

func decodeHintBody(body []byte) (hint, bool) {
	if len(body) < 8+1+4 {
		return hint{}, false
	}
	var h hint
	h.expires = int64(binary.LittleEndian.Uint64(body[0:8]))
	h.op = body[8]
	if h.op != hintOpAdd && h.op != hintOpDelete {
		return hint{}, false
	}
	nameLen := int(binary.LittleEndian.Uint32(body[9:13]))
	if nameLen < 0 || 13+nameLen+4 > len(body) {
		return hint{}, false
	}
	h.name = string(body[13 : 13+nameLen])
	dataLen := int(binary.LittleEndian.Uint32(body[13+nameLen : 17+nameLen]))
	if dataLen < 0 || 17+nameLen+dataLen != len(body) {
		return hint{}, false
	}
	h.data = string(body[17+nameLen : 17+nameLen+dataLen])
	return h, h.name != ""
}

// hintLoop is the background drainer: every HintInterval — or sooner,
// when the health checker kicks it on a down->up transition — it
// replays pending hints to every backend currently marked up.
func (c *Coordinator) hintLoop() {
	t := time.NewTicker(c.cfg.HintInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		case <-c.hintKick:
		}
		c.drainHints(context.Background())
	}
}

// kickHintDrain nudges the drainer without blocking; coalescing into
// one buffered token is fine — the drainer scans every backend.
func (c *Coordinator) kickHintDrain() {
	select {
	case c.hintKick <- struct{}{}:
	default:
	}
}

// drainHints replays pending hints to every up backend. Down backends
// keep their queues; a replay failure stops that backend's drain (the
// next pass retries from the failure point, order preserved).
func (c *Coordinator) drainHints(ctx context.Context) {
	for _, addr := range c.hints.addrs() {
		b := c.lookup(addr)
		if b == nil {
			// The backend left the ring while hints were queued.
			c.hints.dropBackend(addr)
			continue
		}
		if !b.up.Load() {
			continue
		}
		c.drainBackendHints(ctx, b)
	}
}

// drainBackendHints replays b's hint queue in order: expired hints are
// counted and skipped, live ones are re-sent as ordinary ingest or
// delete calls (both idempotent). The disposed prefix is committed
// even when a replay fails partway, so progress survives flapping.
func (c *Coordinator) drainBackendHints(ctx context.Context, b *backend) {
	pending := c.hints.take(b.addr)
	if len(pending) == 0 {
		return
	}
	now := time.Now().UnixNano()
	done := 0
	var replayed, expired int64
	for _, h := range pending {
		if h.expires != 0 && h.expires < now {
			expired++
			done++
			continue
		}
		if !c.budget.allow(1) {
			// Retry budget is dry: stop this drain pass and leave the rest
			// queued. The next tick (or kick) resumes from here — hints are
			// exactly the traffic that must not stampede a backend that just
			// came back.
			c.logf("hint drain to %s paused after %d/%d: retry budget exhausted", b.addr, done, len(pending))
			break
		}
		if err := c.replayHint(ctx, b, h); err != nil {
			c.logf("hint replay to %s stalled after %d/%d: %v", b.addr, done, len(pending), err)
			break
		}
		replayed++
		done++
	}
	c.hints.replayed.Add(replayed)
	c.hints.expired.Add(expired)
	if err := c.hints.commit(b.addr, done); err != nil {
		c.logf("hint commit for %s: %v", b.addr, err)
	}
	if replayed > 0 {
		c.logf("replayed %d hints to %s (%d expired, %d still pending)",
			replayed, b.addr, expired, c.hints.depthFor(b.addr))
	}
}

// replayHint re-issues one missed write against b.
func (c *Coordinator) replayHint(ctx context.Context, b *backend, h hint) error {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.FanoutTimeout)
	defer cancel()
	switch h.op {
	case hintOpDelete:
		err := c.client.do(cctx, b, "DELETE", "/v1/records/"+url.PathEscape(h.name), nil, nil)
		var berr *BackendError
		if err != nil && errors.As(err, &berr) && berr.Status == http.StatusNotFound {
			// Already gone (or never arrived): the tombstone's goal holds.
			return nil
		}
		return err
	default:
		req := server.IngestRequest{Records: []server.IngestRecord{{Name: h.name, Data: h.data}}}
		return c.client.do(cctx, b, "POST", "/v1/records", &req, nil)
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sketchengine/internal/server"
)

// backend is one configured backend: its address, the shared HTTP
// client state, and the health checker's view of it.
type backend struct {
	addr string // host:port, as configured
	base string // http://host:port

	// up is the hysteresis-filtered health state. Backends start up
	// (optimistically): a backend that is actually down costs one failed
	// fan-out per request until the checker's consecutive-failure count
	// trips, while a backend wrongly marked down would silently shed
	// load.
	up atomic.Bool

	// consecFails / consecOKs drive the hysteresis; only the health
	// checker goroutine writes them.
	consecFails int
	consecOKs   int

	// Observed traffic, for /stats and the ring-occupancy metric.
	routedRecords atomic.Int64 // records routed here by ingest
	requests      atomic.Int64 // proxied requests sent
	failures      atomic.Int64 // proxied requests that errored
	transitions   atomic.Int64 // up<->down flips by the health checker

	lastErr   atomic.Pointer[string] // last proxied-request or probe error
	downSince atomic.Int64           // unix nanos; 0 while up

	// probeInterval is the current reprobe cadence in nanoseconds: the
	// base health interval while the backend answers, doubling (with
	// jitter, capped at MaxProbeInterval) while it stays down so a dead
	// backend is not hammered every tick. Atomic because /stats reads
	// it; nextProbe is only touched by the health loop.
	probeInterval atomic.Int64
	nextProbe     time.Time
}

func newBackend(addr string) *backend {
	b := &backend{addr: addr, base: "http://" + addr}
	b.up.Store(true)
	return b
}

func (b *backend) noteError(err error) {
	msg := err.Error()
	b.lastErr.Store(&msg)
	b.failures.Add(1)
}

// BackendError is a non-2xx response from a backend, carrying the
// envelope the backend sent so the coordinator can propagate its code.
type BackendError struct {
	Addr   string
	Status int
	Code   string
	Msg    string
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("backend %s: %d %s: %s", e.Addr, e.Status, e.Code, e.Msg)
}

// client wraps the one shared http.Client all fan-outs use. Idle
// connections are pooled per backend so steady-state scatter-gather
// reuses warm connections instead of paying a dial per probe.
type client struct {
	hc *http.Client
}

func newClient(backends int) *client {
	return &client{hc: &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        4 * backends,
			MaxIdleConnsPerHost: 4,
		},
	}}
}

// bodyBufPool recycles request-encode buffers across fan-outs.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// do sends one request to b and decodes the JSON response into out
// (skipped when out is nil). body, when non-nil, is JSON-encoded as
// the request body. Non-2xx responses decode the error envelope into a
// *BackendError. The caller bounds the call with ctx.
func (c *client) do(ctx context.Context, b *backend, method, path string, body, out any) error {
	b.requests.Add(1)
	var rd io.Reader
	var buf *bytes.Buffer
	if body != nil {
		buf = bodyBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer bodyBufPool.Put(buf)
		if err := json.NewEncoder(buf).Encode(body); err != nil {
			return fmt.Errorf("backend %s: encode request: %w", b.addr, err)
		}
		rd = buf
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, rd)
	if err != nil {
		return fmt.Errorf("backend %s: %w", b.addr, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = int64(buf.Len())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		b.noteError(err)
		return fmt.Errorf("backend %s: %w", b.addr, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope struct {
			Error server.ErrorDetail `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope)
		berr := &BackendError{Addr: b.addr, Status: resp.StatusCode, Code: envelope.Error.Code, Msg: envelope.Error.Message}
		if berr.Code == "" {
			berr.Code = server.CodeForStatus(resp.StatusCode)
		}
		if resp.StatusCode >= 500 {
			b.noteError(berr)
		}
		return berr
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			b.noteError(err)
			return fmt.Errorf("backend %s: decode response: %w", b.addr, err)
		}
	}
	return nil
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sketchengine/internal/fault"
	"sketchengine/internal/server"
)

// backend is one configured backend: its address, the shared HTTP
// client state, and the health checker's view of it.
type backend struct {
	addr string // host:port, as configured
	base string // http://host:port

	// up is the breaker-derived health state request paths read: true
	// iff the breaker is closed. Backends start up (optimistically): a
	// backend that is actually down costs one failed fan-out per request
	// until the breaker trips, while a backend wrongly marked down would
	// silently shed load.
	up atomic.Bool

	// Circuit breaker state (see resilience.go). bMu guards the
	// consecutive counters and state transitions — probe outcomes and
	// concurrent request outcomes feed the same machine; bState is
	// additionally atomic so /stats reads it without the lock.
	bMu         sync.Mutex
	bState      atomic.Int32
	consecFails int
	consecOKs   int
	opens       atomic.Int64 // ->open transitions (trip or failed probation)
	halfOpens   atomic.Int64 // ->half-open transitions (first success while open)
	closes      atomic.Int64 // ->closed transitions (recovery)

	// Observed traffic, for /stats and the ring-occupancy metric.
	routedRecords atomic.Int64 // records routed here by ingest
	requests      atomic.Int64 // proxied requests sent
	failures      atomic.Int64 // proxied requests that errored
	transitions   atomic.Int64 // up<->down flips by the health checker

	lastErr   atomic.Pointer[string] // last proxied-request or probe error
	downSince atomic.Int64           // unix nanos; 0 while up

	// probeInterval is the current reprobe cadence in nanoseconds: the
	// base health interval while the backend answers, doubling (with
	// jitter, capped at MaxProbeInterval) while it stays down so a dead
	// backend is not hammered every tick. Atomic because /stats reads
	// it; nextProbe is only touched by the health loop.
	probeInterval atomic.Int64
	nextProbe     time.Time
}

func newBackend(addr string) *backend {
	b := &backend{addr: addr, base: "http://" + addr}
	b.up.Store(true)
	return b
}

func (b *backend) noteError(err error) {
	msg := err.Error()
	b.lastErr.Store(&msg)
	b.failures.Add(1)
}

// BackendError is a non-2xx response from a backend, carrying the
// envelope the backend sent so the coordinator can propagate its code.
type BackendError struct {
	Addr   string
	Status int
	Code   string
	Msg    string
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("backend %s: %d %s: %s", e.Addr, e.Status, e.Code, e.Msg)
}

// client wraps the one shared http.Client all fan-outs use. Idle
// connections are pooled per backend so steady-state scatter-gather
// reuses warm connections instead of paying a dial per probe. The
// transport is wrapped in the backend.rt faultpoint — a single atomic
// nil check per request when no fault spec is armed — so chaos tests
// inject latency, 5xx, resets, and torn bodies exactly where the
// network would.
type client struct {
	hc *http.Client

	// observe, when set, receives every request's outcome — the
	// request-path feed into the per-backend circuit breaker (classify
	// with requestOK). Probes bypass it via doQuiet: the health loop
	// reports outcomes itself, and one probe must count once, not twice.
	observe func(b *backend, err error)
}

func newClient(backends int) *client {
	return &client{hc: &http.Client{
		Transport: &fault.RoundTripper{
			Point: "backend.rt",
			Base: &http.Transport{
				MaxIdleConns:        4 * backends,
				MaxIdleConnsPerHost: 4,
			},
		},
	}}
}

// bodyBufPool recycles request-encode buffers across fan-outs.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// do sends one request to b and decodes the JSON response into out
// (skipped when out is nil). body, when non-nil, is JSON-encoded as
// the request body. Non-2xx responses decode the error envelope into a
// *BackendError. The caller bounds the call with ctx; a ctx deadline
// is propagated to the backend in the X-Sketch-Deadline header so the
// backend can abort work the coordinator has already given up on. The
// outcome feeds the breaker via the observe hook.
func (c *client) do(ctx context.Context, b *backend, method, path string, body, out any) error {
	err := c.doQuiet(ctx, b, method, path, body, out)
	if c.observe != nil {
		c.observe(b, err)
	}
	return err
}

// requestOK classifies a request outcome for the breaker: nil and
// below-500 envelope errors mean the backend is serving (a 404 or 400
// is a healthy answer); transport errors, torn responses, and 5xx count
// against it.
func requestOK(err error) bool {
	if err == nil {
		return true
	}
	var berr *BackendError
	return errors.As(err, &berr) && berr.Status < 500
}

// doQuiet is do without the breaker feed — the health loop's probes go
// through it because observeProbe reports their outcomes itself.
func (c *client) doQuiet(ctx context.Context, b *backend, method, path string, body, out any) error {
	b.requests.Add(1)
	var rd io.Reader
	var buf *bytes.Buffer
	if body != nil {
		buf = bodyBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer bodyBufPool.Put(buf)
		if err := json.NewEncoder(buf).Encode(body); err != nil {
			return fmt.Errorf("backend %s: encode request: %w", b.addr, err)
		}
		rd = buf
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, rd)
	if err != nil {
		return fmt.Errorf("backend %s: %w", b.addr, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = int64(buf.Len())
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(server.DeadlineHeader, strconv.FormatInt(dl.UnixMilli(), 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		b.noteError(err)
		return fmt.Errorf("backend %s: %w", b.addr, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope struct {
			Error server.ErrorDetail `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope)
		berr := &BackendError{Addr: b.addr, Status: resp.StatusCode, Code: envelope.Error.Code, Msg: envelope.Error.Message}
		if berr.Code == "" {
			berr.Code = server.CodeForStatus(resp.StatusCode)
		}
		if resp.StatusCode >= 500 {
			b.noteError(berr)
		}
		return berr
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			b.noteError(err)
			return fmt.Errorf("backend %s: decode response: %w", b.addr, err)
		}
	}
	return nil
}

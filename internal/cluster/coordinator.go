package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sketchengine/internal/server"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultReplication    = 2
	DefaultFanoutTimeout  = 5 * time.Second
	DefaultHealthInterval = time.Second
	DefaultDownAfter      = 3
	DefaultUpAfter        = 2
	DefaultHintTTL        = time.Hour
	DefaultHintInterval   = time.Second
	// DefaultRetryBudget / DefaultRetryRefillPerSec size the
	// coordinator-wide retry token bucket: 64 retried backend calls of
	// burst, refilling at 16/s. Enough that a transient blip retries
	// freely, small enough that a dead backend cannot induce an
	// unbounded retry storm across search, handoff, and repair traffic.
	DefaultRetryBudget       = 64
	DefaultRetryRefillPerSec = 16.0
)

// Config configures a Coordinator. Zero values fall back to the
// defaults above (and to internal/server's request-plumbing defaults).
type Config struct {
	// Addr is the listen address; port 0 picks a free port.
	Addr string
	// Backends are the single-node backend addresses (host:port). At
	// least Replication backends are required.
	Backends []string
	// Replication is how many backends hold each record. Writes need a
	// majority of replicas (Replication/2+1) to acknowledge; reads
	// stay complete as long as fewer than Replication backends are
	// unreachable.
	Replication int
	// FanoutTimeout bounds each per-backend request inside a fan-out,
	// so one stuck backend delays a scatter-gather by at most this.
	FanoutTimeout time.Duration
	// HealthInterval is the /healthz probe period. Negative disables
	// the checker (tests drive health by hand).
	HealthInterval time.Duration
	// MaxProbeInterval caps the exponential backoff the prober applies
	// to a backend that keeps failing its probes. Zero means ten times
	// HealthInterval.
	MaxProbeInterval time.Duration
	// DownAfter / UpAfter are the hysteresis widths: consecutive probe
	// failures before a backend is marked down, consecutive successes
	// before it is marked up again.
	DownAfter int
	UpAfter   int
	// HintsDir, when set, makes hinted handoff durable: hints queued
	// for replicas that missed a quorum-acked write are appended to
	// CRC-framed per-backend files under this directory and reloaded
	// when the coordinator restarts. Empty keeps hints in memory only.
	HintsDir string
	// HintTTL bounds how long a hint waits for its backend before it
	// expires (the anti-entropy sweep is the backstop past that).
	HintTTL time.Duration
	// HintInterval is the hint drainer's scan period. Negative disables
	// the background drainer (tests drive it by hand); zero means
	// DefaultHintInterval.
	HintInterval time.Duration
	// RepairInterval, when positive, runs a full anti-entropy repair
	// sweep (the same walk POST /v1/admin/repair does) this often.
	// Zero disables periodic sweeps; the admin endpoint still works.
	RepairInterval time.Duration
	// MaxInFlight bounds concurrently served coordinator requests.
	MaxInFlight int
	// MaxFanout bounds concurrently running fan-outs (search, ingest,
	// delete scatter-gathers). A fan-out beyond the bound is shed
	// immediately with 503 + Retry-After instead of queueing — under
	// sustained overload a bounded queue of doomed work only adds
	// latency. Zero means MaxInFlight, which (given the in-flight
	// limiter) never sheds; set it lower to shed before saturation.
	MaxFanout int
	// RetryBudget and RetryRefillPerSec size the coordinator-wide retry
	// token bucket (see DefaultRetryBudget). Every retried backend call
	// across search retry waves, hint replays, and repair traffic spends
	// a token; an empty bucket denies the retry and the caller degrades.
	// Zero means the defaults.
	RetryBudget       int
	RetryRefillPerSec float64
	// MaxBatch caps records per ingest request, mirroring the backends'
	// limit so the coordinator rejects oversized batches itself.
	MaxBatch int
	// MaxBodyBytes caps request body size.
	MaxBodyBytes int64
	// DrainTimeout bounds how long shutdown waits for in-flight
	// requests.
	DrainTimeout time.Duration
	// Logf, when set, receives one-line operational events. nil means
	// silent.
	Logf func(format string, args ...any)
}

// Coordinator serves the /v1 API by fanning out to backends. Build one
// with New, then Listen and Serve, mirroring server.Server's
// lifecycle. Call Close when done to stop the background repair and
// hint workers and release the hint files.
type Coordinator struct {
	cfg     Config
	client  *client
	metrics *clusterMetrics
	handler http.Handler
	hints   *hintStore
	repairs *repairQueue
	budget  *retryBudget
	fanouts atomic.Int64 // fan-outs currently running, bounded by MaxFanout

	// mu guards the membership view: the placement ring, the optional
	// migration target ring, and the backend list. Request paths take
	// a snapshot under RLock and work from it; only join/drain commit
	// a new view.
	mu       sync.RWMutex
	ring     *Ring
	next     *Ring // target ring while a join/drain streams; nil otherwise
	backends []*backend
	byAddr   map[string]*backend

	// rebalanceMu serializes join/drain; TryLock turns a concurrent
	// attempt into an immediate 409 instead of a queued surprise.
	rebalanceMu sync.Mutex

	hintKick chan struct{} // nudges the drainer on a down->up transition
	stop     chan struct{}
	stopOnce sync.Once

	lis net.Listener
}

// New validates cfg and builds a Coordinator. The hint drainer and the
// read-repair worker start immediately (Serve only adds the listener,
// the health checker, and the optional periodic sweep).
func New(cfg Config) (*Coordinator, error) {
	if cfg.Replication == 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.FanoutTimeout <= 0 {
		cfg.FanoutTimeout = DefaultFanoutTimeout
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.MaxProbeInterval <= 0 {
		cfg.MaxProbeInterval = 10 * cfg.HealthInterval
	}
	if cfg.MaxProbeInterval < cfg.HealthInterval {
		cfg.MaxProbeInterval = cfg.HealthInterval
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = DefaultDownAfter
	}
	if cfg.UpAfter <= 0 {
		cfg.UpAfter = DefaultUpAfter
	}
	if cfg.HintTTL <= 0 {
		cfg.HintTTL = DefaultHintTTL
	}
	if cfg.HintInterval == 0 {
		cfg.HintInterval = DefaultHintInterval
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = server.DefaultMaxInFlight
	}
	if cfg.MaxFanout <= 0 {
		cfg.MaxFanout = cfg.MaxInFlight
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.RetryRefillPerSec <= 0 {
		cfg.RetryRefillPerSec = DefaultRetryRefillPerSec
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = server.DefaultMaxBatch
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = server.DefaultMaxBodyBytes
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = server.DefaultDrainTimeout
	}
	ring, err := NewRing(cfg.Backends, cfg.Replication)
	if err != nil {
		return nil, err
	}
	hints, err := newHintStore(cfg.HintsDir, cfg.HintTTL)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:      cfg,
		ring:     ring,
		client:   newClient(len(ring.Backends())),
		metrics:  newClusterMetrics(),
		hints:    hints,
		repairs:  newRepairQueue(),
		budget:   newRetryBudget(cfg.RetryBudget, cfg.RetryRefillPerSec),
		byAddr:   make(map[string]*backend, len(ring.Backends())),
		hintKick: make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	for _, addr := range ring.Backends() {
		b := newBackend(addr)
		c.backends = append(c.backends, b)
		c.byAddr[addr] = b
	}
	// Live request outcomes drive the same breaker the health probes do,
	// so a failing backend is shed as fast as traffic discovers it. A
	// backend 504 means a propagated deadline died downstream; count it.
	c.client.observe = func(b *backend, err error) {
		var berr *BackendError
		if errors.As(err, &berr) && berr.Status == http.StatusGatewayTimeout {
			c.metrics.deadlineExceeded.Add(1)
		}
		c.observeBreaker(b, requestOK(err), false)
	}
	c.handler = c.limit(c.count(server.JSONErrors(c.routes())))
	go c.repairLoop()
	if cfg.HintInterval > 0 {
		go c.hintLoop()
	}
	return c, nil
}

// Close stops the background hint and repair workers and closes the
// hint files. It does not touch an active Serve loop — cancel Serve's
// context for that.
func (c *Coordinator) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	return c.hints.close()
}

// Ring returns the coordinator's current placement ring, so tests and
// tools can compute replica sets the way the coordinator does.
func (c *Coordinator) Ring() *Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring
}

// rings snapshots the placement view: the authoritative ring and, while
// a join/drain is streaming, the migration target (nil otherwise).
func (c *Coordinator) rings() (ring, next *Ring) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring, c.next
}

// backendList snapshots the backend list. The slice is replaced, never
// mutated in place, so iterating the snapshot without the lock is safe.
func (c *Coordinator) backendList() []*backend {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.backends
}

// lookup resolves a backend address to its state, or nil if it has
// left the fleet.
func (c *Coordinator) lookup(addr string) *backend {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byAddr[addr]
}

// Handler returns the coordinator's HTTP handler (routes behind the
// envelope, counting, and concurrency-limit middleware), for tests and
// embedding.
func (c *Coordinator) Handler() http.Handler { return c.handler }

// quorum is the write quorum: a majority of the replica set.
func (c *Coordinator) quorum() int { return c.cfg.Replication/2 + 1 }

// Listen binds cfg.Addr and returns the bound address. It must be
// called once, before Serve.
func (c *Coordinator) Listen() (net.Addr, error) {
	lis, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", c.cfg.Addr, err)
	}
	c.lis = lis
	return lis.Addr(), nil
}

// Serve serves on the listener bound by Listen until ctx is canceled,
// then drains in-flight requests for up to DrainTimeout. The health
// checker and the periodic repair sweep run for exactly the lifetime
// of the serve loop.
func (c *Coordinator) Serve(ctx context.Context) error {
	if c.lis == nil {
		return errors.New("cluster: Serve called before Listen")
	}
	hctx, stopHealth := context.WithCancel(context.Background())
	defer stopHealth()
	if c.cfg.HealthInterval > 0 {
		go c.healthLoop(hctx)
	}
	if c.cfg.RepairInterval > 0 {
		go c.sweepLoop(hctx)
	}
	hs := &http.Server{
		Handler:           c.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(c.lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		c.logf("shutdown requested, draining (timeout %s)", c.cfg.DrainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), c.cfg.DrainTimeout)
		err := hs.Shutdown(drainCtx)
		cancel()
		<-errc // always http.ErrServerClosed after Shutdown
		c.logf("drained")
		return err
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// clusterMetrics are the coordinator's counters: one set for the
// API surface it serves, one set for the fan-out behavior behind it.
// All lock-free on the hot path, like the server's.
type clusterMetrics struct {
	start time.Time

	requests       atomic.Int64
	searches       atomic.Int64
	ingestRequests atomic.Int64
	recordsRouted  atomic.Int64 // record-replica assignments routed by ingest
	deletes        atomic.Int64

	retries        atomic.Int64 // backend calls retried after a failed first wave
	partials       atomic.Int64 // search responses degraded to partial
	quorumFailures atomic.Int64 // records that missed their write quorum

	shed             atomic.Int64 // fan-outs shed at the MaxFanout bound (503s)
	deadlineExceeded atomic.Int64 // backend calls that died on a propagated deadline (504s)

	joins             atomic.Int64 // committed ring joins
	drains            atomic.Int64 // committed ring drains
	rebalanceFailures atomic.Int64 // join/drain attempts aborted before commit
	rebalanceMoved    atomic.Int64 // records whose replica set changed across commits
	rebalanceCopied   atomic.Int64 // record copies streamed to new replicas
	rebalanceActive   atomic.Bool  // a join/drain stream is in flight

	// histMu guards registration only; every endpoint registers once at
	// startup.
	histMu    sync.Mutex
	latencies map[string]*server.Histogram // whole-fan-out latency per endpoint
}

func newClusterMetrics() *clusterMetrics {
	return &clusterMetrics{start: time.Now(), latencies: make(map[string]*server.Histogram)}
}

func (m *clusterMetrics) hist(name string) *server.Histogram {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	h, ok := m.latencies[name]
	if !ok {
		h = server.NewHistogram()
		m.latencies[name] = h
	}
	return h
}

// limit is the same concurrency-limit shape the backends use: excess
// requests wait on the semaphore, a client that gives up gets 503.
func (c *Coordinator) limit(next http.Handler) http.Handler {
	sem := make(chan struct{}, c.cfg.MaxInFlight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		case <-r.Context().Done():
			server.WriteError(w, http.StatusServiceUnavailable, server.CodeOverloaded, "coordinator overloaded")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// count tallies accepted requests.
func (c *Coordinator) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.metrics.requests.Add(1)
		next.ServeHTTP(w, r)
	})
}

// timed wraps one endpoint's handler with its fan-out latency
// histogram.
func (c *Coordinator) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := c.metrics.hist(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start))
	}
}

package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"testing"
)

// TestJoinExpandsRing: a join streams affected records to the new
// backend before the ring swap, cleans the displaced copies after it,
// and leaves every record on exactly its new replica set — with search
// results byte-identical across the change and still complete when one
// backend then dies.
func TestJoinExpandsRing(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	const n = 20
	if resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(n)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	_, want := postJSON(t, tc.ts.URL+"/v1/search", searchBody(8))

	joiner := newTestBackend(t)
	resp, out := postJSON(t, tc.ts.URL+"/v1/admin/join", JoinRequest{Backend: joiner.addr()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join = %d, body %s", resp.StatusCode, out)
	}
	var rb RebalanceResponse
	if err := json.Unmarshal(out, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Action != "join" || len(rb.Backends) != 4 || rb.Examined != n {
		t.Fatalf("join response = %+v, want action=join over 4 backends examining %d records", rb, n)
	}
	if rb.Moved == 0 || rb.Copied < rb.Moved {
		t.Fatalf("join moved %d / copied %d; a 4th backend must attract records", rb.Moved, rb.Copied)
	}
	if !slices.Contains(tc.coord.Ring().Backends(), joiner.addr()) {
		t.Fatal("committed ring must include the joiner")
	}

	// The invariant: every record on exactly its new-ring replicas (the
	// post-commit cleanup removed the displaced copies).
	tc.backends = append(tc.backends, joiner)
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("rec-%02d.txt", i))
	}
	assertCensus(t, tc.coord.Ring(), tc.backends, names)

	resp, got := postJSON(t, tc.ts.URL+"/v1/search", searchBody(8))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("search after join = %d:\n got:  %s\n want: %s", resp.StatusCode, got, want)
	}

	// Kill one of the four: replication 2 still covers every record.
	tc.backends[1].ts.Close()
	resp, got = postJSON(t, tc.ts.URL+"/v1/search", searchBody(8))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("search after join+kill = %d:\n got:  %s\n want: %s", resp.StatusCode, got, want)
	}
	if bytes.Contains(got, []byte(`"partial"`)) {
		t.Fatalf("one dead backend of four at replication 2 must not degrade to partial: %s", got)
	}

	// Joining a member again is a client error, not a ring change.
	resp, out = postJSON(t, tc.ts.URL+"/v1/admin/join", JoinRequest{Backend: joiner.addr()})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate join = %d, want 400; body %s", resp.StatusCode, out)
	}
}

// TestJoinRejectsUnreachableBackend: the admission probe keeps a dead
// address out of the ring entirely.
func TestJoinRejectsUnreachableBackend(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	resp, out := postJSON(t, tc.ts.URL+"/v1/admin/join", JoinRequest{Backend: "127.0.0.1:1"})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("join of an unreachable backend = %d, want 502; body %s", resp.StatusCode, out)
	}
	if len(tc.coord.Ring().Backends()) != 3 {
		t.Fatal("failed join must leave the ring unchanged")
	}
}

// TestDrainShrinksRing: a drain streams the leaving backend's records
// to their new homes before the swap; rendezvous removal means the
// survivors then hold exactly the new placement — no cleanup pass.
func TestDrainShrinksRing(t *testing.T) {
	tc := newTestCluster(t, 4, 2)
	const n = 20
	if resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(n)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	_, want := postJSON(t, tc.ts.URL+"/v1/search", searchBody(8))

	victim := tc.backends[3]
	resp, out := postJSON(t, tc.ts.URL+"/v1/admin/drain", DrainRequest{Backend: victim.addr()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d, body %s", resp.StatusCode, out)
	}
	var rb RebalanceResponse
	if err := json.Unmarshal(out, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Action != "drain" || len(rb.Backends) != 3 {
		t.Fatalf("drain response = %+v, want action=drain over 3 backends", rb)
	}
	if slices.Contains(tc.coord.Ring().Backends(), victim.addr()) {
		t.Fatal("committed ring must exclude the drained backend")
	}

	// Census over the survivors: exactly the new replica sets.
	survivors := tc.backends[:3]
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("rec-%02d.txt", i))
	}
	assertCensus(t, tc.coord.Ring(), survivors, names)

	resp, got := postJSON(t, tc.ts.URL+"/v1/search", searchBody(8))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("search after drain = %d:\n got:  %s\n want: %s", resp.StatusCode, got, want)
	}

	// Draining below the replication factor is refused up front.
	if resp, out = postJSON(t, tc.ts.URL+"/v1/admin/drain", DrainRequest{Backend: survivors[0].addr()}); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain to the replication floor = %d, body %s", resp.StatusCode, out)
	}
	resp, out = postJSON(t, tc.ts.URL+"/v1/admin/drain", DrainRequest{Backend: survivors[1].addr()})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("drain below replication = %d, want 400; body %s", resp.StatusCode, out)
	}
	// And draining a stranger is a different 400.
	resp, out = postJSON(t, tc.ts.URL+"/v1/admin/drain", DrainRequest{Backend: "127.0.0.1:1"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("drain of a non-member = %d, want 400; body %s", resp.StatusCode, out)
	}
}

// TestDrainFailsCleanThenRetries: a drain that cannot place records on
// a flapping destination aborts with the ring unchanged; once the
// destination is back, the same request succeeds (the stream is
// idempotent).
func TestDrainFailsCleanThenRetries(t *testing.T) {
	sc := newSelfHealCluster(t, 3, 2, Config{})
	const n = 20
	if resp, out := postJSON(t, sc.ts.URL+"/v1/records", corpus(n)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	flapping, leaving := sc.backends[0], sc.backends[1]
	// After the drain, replication 2 over 2 backends puts every record
	// on both — so any record not already on the flapping backend must
	// be streamed to it, which will fail while it is down.
	mustMove := false
	for i := 0; i < n; i++ {
		if !slices.Contains(sc.coord.Ring().Replicas(fmt.Sprintf("rec-%02d.txt", i)), flapping.addr) {
			mustMove = true
			break
		}
	}
	if !mustMove {
		t.Skip("every record already on the flapping backend; nothing would stream")
	}

	flapping.stop()
	resp, out := postJSON(t, sc.ts.URL+"/v1/admin/drain", DrainRequest{Backend: leaving.addr})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("drain with a dead destination = %d, want 502; body %s", resp.StatusCode, out)
	}
	var env errEnvelope
	if err := json.Unmarshal(out, &env); err != nil || env.Error.Code != CodeRebalanceFailed {
		t.Fatalf("want %s envelope, got %s", CodeRebalanceFailed, out)
	}
	if got := sc.coord.Ring().Backends(); len(got) != 3 {
		t.Fatalf("failed drain must leave the ring unchanged, got %d members", len(got))
	}
	if _, next := sc.coord.rings(); next != nil {
		t.Fatal("failed drain must clear the migration target")
	}

	flapping.restart(t)
	resp, out = postJSON(t, sc.ts.URL+"/v1/admin/drain", DrainRequest{Backend: leaving.addr})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried drain = %d, body %s", resp.StatusCode, out)
	}
	ring := sc.coord.Ring()
	if len(ring.Backends()) != 2 || slices.Contains(ring.Backends(), leaving.addr) {
		t.Fatalf("retried drain committed ring = %v, want the two survivors", ring.Backends())
	}
	// Both survivors hold everything: replication 2 over 2 backends.
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("rec-%02d.txt", i)
		for _, b := range []*restartableBackend{flapping, sc.backends[2]} {
			if !b.srv.Engine().Index().Has(name) {
				t.Errorf("census after retried drain: %s missing from %s", name, b.addr)
			}
		}
	}
}

// TestRebalanceBusy: join/drain serialize; a concurrent attempt gets
// an immediate 409, not a queued surprise.
func TestRebalanceBusy(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	tc.coord.rebalanceMu.Lock()
	defer tc.coord.rebalanceMu.Unlock()
	resp, out := postJSON(t, tc.ts.URL+"/v1/admin/drain", DrainRequest{Backend: tc.backends[0].addr()})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("drain during a rebalance = %d, want 409; body %s", resp.StatusCode, out)
	}
	var env errEnvelope
	if err := json.Unmarshal(out, &env); err != nil || env.Error.Code != CodeRebalanceBusy {
		t.Fatalf("want %s envelope, got %s", CodeRebalanceBusy, out)
	}
}

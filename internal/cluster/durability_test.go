package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"sketchengine/internal/core"
	"sketchengine/internal/server"
)

// TestQuorumWriteSurvivesCrash: the durability half of the quorum
// contract. Ingest through the coordinator with one backend already
// dead, so some records ack at quorum and others fail; then SIGKILL
// the surviving backends (drop their sockets and file handles without
// any snapshot) and reopen each data directory cold. Every record a
// replica acknowledged — including replicas of records that missed
// quorum overall — must replay out of that replica's WAL.
func TestQuorumWriteSurvivesCrash(t *testing.T) {
	const n = 3
	root := t.TempDir()
	dirs := make([]string, n)
	engines := make([]*core.Engine, n)
	httpSrvs := make([]*httptest.Server, n)
	var addrs []string
	for i := 0; i < n; i++ {
		dirs[i] = filepath.Join(root, fmt.Sprintf("backend-%d", i))
		eng, err := core.NewEngine(core.Options{
			K: 4, SignatureSize: 64, IndexName: fmt.Sprintf("crash-%d", i), Shards: 4,
			Bits: 8, Tiered: true, DataDir: dirs[i], SegmentRows: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		// SnapshotEvery an hour out: nothing persists except through the
		// WAL appends the ingest path makes before acking.
		srv, err := server.New(eng, server.Config{DataDir: dirs[i], SnapshotEvery: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		engines[i], httpSrvs[i] = eng, ts
		// The "crash" must skip srv's snapshot, so srv.Close runs only in
		// cleanup — after the cold-reopen verification is done — where it
		// stops the ingest batcher (its snapshot of a crashed index fails
		// harmlessly).
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ts.Listener.Addr().String())
	}

	coord, err := New(Config{Backends: addrs, Replication: 2, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close() })
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	// Kill backend 2 before ingesting: records placed on it cannot
	// reach quorum, records avoiding it can.
	const dead = 2
	httpSrvs[dead].Close()

	body := corpus(16)
	replicasOf := make(map[string][]string)
	for _, rec := range body.Records {
		replicasOf[rec.Name] = coord.Ring().Replicas(rec.Name)
	}

	resp, out := postJSON(t, cts.URL+"/v1/records", body)
	acked := make(map[string]bool)
	switch resp.StatusCode {
	case http.StatusOK:
		for _, rec := range body.Records {
			acked[rec.Name] = true
		}
	case http.StatusBadGateway:
		var env errEnvelope
		if err := json.Unmarshal(out, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != CodeQuorumFailed {
			t.Fatalf("envelope code = %q, want %q; body %s", env.Error.Code, CodeQuorumFailed, out)
		}
		failed := make(map[string]bool)
		for _, re := range env.Error.Records {
			failed[re.Name] = true
		}
		for _, rec := range body.Records {
			acked[rec.Name] = !failed[rec.Name]
		}
	default:
		t.Fatalf("ingest status = %d, body %s", resp.StatusCode, out)
	}

	// SIGKILL the survivors: close listeners and drop index file
	// handles with no snapshot, flush, or orderly shutdown.
	for i := 0; i < n; i++ {
		if i == dead {
			continue
		}
		httpSrvs[i].Close()
		if err := engines[i].Index().Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Cold-reopen each surviving replica and check the WAL replayed
	// everything that backend acknowledged. A backend that returned
	// success acked its whole sub-batch, so even records that missed
	// quorum overall must survive on replicas that said yes.
	for i := 0; i < n; i++ {
		if i == dead {
			continue
		}
		ix, err := core.Open(dirs[i])
		if err != nil {
			t.Fatalf("reopen backend %d after crash: %v", i, err)
		}
		for _, rec := range body.Records {
			mine := false
			for _, addr := range replicasOf[rec.Name] {
				if addr == addrs[i] {
					mine = true
				}
			}
			if mine && !ix.Has(rec.Name) {
				t.Errorf("backend %d (acked its sub-batch) lost record %s across a crash", i, rec.Name)
			}
		}
		ix.Close()
	}

	// Sanity on the split: both acked and failed records must exist or
	// the dead backend wasn't actually exercising quorum.
	var nAcked, nFailed int
	for _, ok := range acked {
		if ok {
			nAcked++
		} else {
			nFailed++
		}
	}
	if nAcked == 0 || nFailed == 0 {
		t.Fatalf("corpus did not split across the dead backend (acked=%d failed=%d)", nAcked, nFailed)
	}
}

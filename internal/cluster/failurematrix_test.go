package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"sketchengine/internal/fault"
	"sketchengine/internal/server"
)

// The failure matrix: seeded fault schedules against a live 3-backend
// cluster, asserting the robustness invariants end to end:
//
//   - no acked write is ever lost: a 200 ingest (or the unlisted
//     records of a quorum_failed one) must survive every later search
//     once the cluster reconverges;
//   - responses are correct or explicitly degraded: a non-partial 200
//     search must contain every known-live record, and no search may
//     ever return a record whose delete was acked;
//   - retry volume stays within the configured token budget;
//   - after faults clear, hints drain, the repair queue empties, and a
//     final search returns exactly the acked state, unflagged.
//
// Each schedule is a t.Run subtest named by its seed, so a failure
// reproduces with -run 'TestFailureMatrix/seed=N'. CHAOS_SEED adds one
// rotating schedule on top of the pinned set (CI logs it).

// chaosSeeds is the pinned seed set: 25 schedules every run replays.
func chaosSeeds() []int64 {
	seeds := make([]int64, 0, 26)
	for s := int64(1); s <= 25; s++ {
		seeds = append(seeds, s)
	}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		if s, err := strconv.ParseInt(env, 10, 64); err == nil {
			seeds = append(seeds, s)
		}
	}
	return seeds
}

// chaosSpec derives a fault spec from the seed's own PRNG: always a
// terminal fault on the backend transport, sometimes latency and a
// fail-once on top. Probabilities stay moderate so most quorums still
// form — the interesting schedules are the ones that half-work.
func chaosSpec(rng *rand.Rand) string {
	kinds := []string{fault.KindError, fault.KindReset, fault.KindTorn}
	clauses := []string{
		fmt.Sprintf("backend.rt:%s=%.2f", kinds[rng.Intn(len(kinds))], 0.05+0.25*rng.Float64()),
	}
	if rng.Intn(2) == 0 {
		clauses = append(clauses, fmt.Sprintf("backend.rt:delay=%dms@%.2f", 1+rng.Intn(8), 0.3*rng.Float64()))
	}
	if rng.Intn(3) == 0 {
		clauses = append(clauses, "backend.rt:fail-once")
	}
	return strings.Join(clauses, ";")
}

// ledger tracks what the client was told, which is all the invariants
// may rely on.
type ledger struct {
	attempted map[string]bool // every name ever sent in an ingest
	live      map[string]bool // acked add, no delete attempted since
	deleted   map[string]bool // acked delete
	unknown   map[string]bool // failed add or failed delete: state unprovable
}

func newLedger() *ledger {
	return &ledger{
		attempted: make(map[string]bool),
		live:      make(map[string]bool),
		deleted:   make(map[string]bool),
		unknown:   make(map[string]bool),
	}
}

func TestFailureMatrix(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed)
		})
	}
}

func runChaosSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	spec := chaosSpec(rng)
	t.Logf("seed=%d spec=%q", seed, spec)

	tc := newChaosCluster(t)
	led := newLedger()
	start := time.Now()

	// Phase 1: ingest through the armed faults, 3 batches of 8.
	plan, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatalf("seed=%d: parse %q: %v", seed, spec, err)
	}
	fault.Enable(plan)
	defer fault.Disable()

	next := 0
	ingestBatch := func(n int) {
		var req server.IngestRequest
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("rec-%02d.txt", next)
			next++
			req.Records = append(req.Records, server.IngestRecord{
				Name: name,
				Data: fmt.Sprintf("shared payload stem for %s with plenty of overlapping shingles", name),
			})
			led.attempted[name] = true
		}
		resp, out := postJSON(t, tc.ts.URL+"/v1/records", req)
		switch resp.StatusCode {
		case http.StatusOK:
			for _, rec := range req.Records {
				led.live[rec.Name] = true
			}
		case http.StatusBadGateway:
			var env errEnvelope
			if err := json.Unmarshal(out, &env); err != nil || env.Error.Code != CodeQuorumFailed {
				// A whole-cluster miss is allowed under faults, but it must
				// be the honest envelope, never a mangled response.
				if env.Error.Code != CodeBackendDown {
					t.Fatalf("seed=%d: ingest 502 with unexpected envelope: %s", seed, out)
				}
				for _, rec := range req.Records {
					led.unknown[rec.Name] = true
				}
				return
			}
			failed := make(map[string]bool)
			for _, re := range env.Error.Records {
				failed[re.Name] = true
			}
			for _, rec := range req.Records {
				if failed[rec.Name] {
					led.unknown[rec.Name] = true
				} else {
					led.live[rec.Name] = true
				}
			}
		default:
			t.Fatalf("seed=%d: ingest status = %d, body %s", seed, resp.StatusCode, out)
		}
	}
	for b := 0; b < 3; b++ {
		ingestBatch(8)
	}

	// Phase 2: interleaved searches and deletes under fire.
	doSearch := func() {
		resp, out := postJSON(t, tc.ts.URL+"/v1/search", server.SearchRequest{
			Name: "q",
			Data: "shared payload stem for rec-03.txt with plenty of overlapping shingles",
			K:    64, Mode: "exact",
		})
		switch resp.StatusCode {
		case http.StatusOK:
			var sr server.SearchResponse
			if err := json.Unmarshal(out, &sr); err != nil {
				t.Fatalf("seed=%d: search 200 with bad body: %s", seed, out)
			}
			found := make(map[string]bool)
			for _, hit := range sr.Results {
				found[hit.Ref] = true
				if !led.attempted[hit.Ref] {
					t.Fatalf("seed=%d: search invented record %q", seed, hit.Ref)
				}
				if led.deleted[hit.Ref] {
					t.Fatalf("seed=%d: search returned %q after its delete was acked", seed, hit.Ref)
				}
			}
			if !sr.Partial {
				for name := range led.live {
					if !found[name] {
						t.Fatalf("seed=%d: non-partial search lost acked record %q", seed, name)
					}
				}
			}
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// Explicit degradation: allowed under faults.
		default:
			t.Fatalf("seed=%d: search status = %d, body %s", seed, resp.StatusCode, out)
		}
	}
	liveNames := func() []string {
		var names []string
		for name := range led.live {
			names = append(names, name)
		}
		return names
	}
	doDelete := func() {
		names := liveNames()
		if len(names) == 0 {
			return
		}
		name := names[rng.Intn(len(names))]
		req, _ := http.NewRequest("DELETE", tc.ts.URL+"/v1/records/"+name, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		delete(led.live, name)
		switch resp.StatusCode {
		case http.StatusOK:
			led.deleted[name] = true
		case http.StatusNotFound:
			t.Fatalf("seed=%d: delete of acked record %q answered 404: the write was lost", seed, name)
		default:
			led.unknown[name] = true
		}
	}
	for i := 0; i < 12; i++ {
		if rng.Intn(3) == 0 {
			doDelete()
		} else {
			doSearch()
		}
	}

	// Phase 3: faults clear; the cluster must reconverge by itself given
	// probe and drain ticks (driven by hand here, as in the other tests).
	fault.Disable()
	deadline := time.Now().Add(15 * time.Second)
	for {
		allUp := true
		for _, b := range tc.coord.backendList() {
			if !b.up.Load() {
				tc.coord.observeProbe(b, true)
				allUp = allUp && b.up.Load()
			}
		}
		tc.coord.drainHints(context.Background())
		if allUp && tc.coord.hints.depth() == 0 && tc.coord.repairs.depth() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed=%d: cluster did not reconverge: hints=%d repairs=%d",
				seed, tc.coord.hints.depth(), tc.coord.repairs.depth())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Final state: a clean, non-partial search returning exactly the
	// acked live set — no acked write lost, no acked delete resurrected.
	resp, out := postJSON(t, tc.ts.URL+"/v1/search", server.SearchRequest{
		Name: "q",
		Data: "shared payload stem for rec-03.txt with plenty of overlapping shingles",
		K:    64, Mode: "exact",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed=%d: post-recovery search = %d, body %s", seed, resp.StatusCode, out)
	}
	var sr server.SearchResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Partial {
		t.Fatalf("seed=%d: post-recovery search still partial: %s", seed, out)
	}
	found := make(map[string]bool)
	for _, hit := range sr.Results {
		found[hit.Ref] = true
		if led.deleted[hit.Ref] {
			t.Fatalf("seed=%d: acked-deleted %q resurrected after recovery", seed, hit.Ref)
		}
		if !led.attempted[hit.Ref] {
			t.Fatalf("seed=%d: post-recovery search invented record %q", seed, hit.Ref)
		}
	}
	for name := range led.live {
		if !found[name] {
			t.Fatalf("seed=%d: acked record %q lost after recovery", seed, name)
		}
	}

	// Retry accounting: spend can never exceed the initial bucket plus
	// everything refilled since the coordinator booted.
	_, stats := getBody(t, tc.ts.URL+"/stats")
	var st StatsResponse
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	bound := float64(st.RetryBudget.Max) + st.RetryBudget.RefillPerSec*elapsed + 1
	if float64(st.RetryBudget.Spent) > bound {
		t.Fatalf("seed=%d: retry spend %d exceeds budget bound %.1f (max=%d refill=%.1f/s over %.2fs)",
			seed, st.RetryBudget.Spent, bound, st.RetryBudget.Max, st.RetryBudget.RefillPerSec, elapsed)
	}
}

// newChaosCluster is newTestCluster with breaker and budget settings
// tuned for fault schedules: breakers trip fast and recover on one
// good probe, and the refill rate keeps hand-driven reconvergence
// quick without unbounding the retry-volume assertion.
func newChaosCluster(t *testing.T) *testCluster {
	t.Helper()
	tc := &testCluster{}
	var addrs []string
	for i := 0; i < 3; i++ {
		b := newTestBackend(t)
		tc.backends = append(tc.backends, b)
		addrs = append(addrs, b.addr())
	}
	coord, err := New(Config{
		Backends:          addrs,
		Replication:       2,
		HealthInterval:    -1,
		HintInterval:      -1,
		DownAfter:         2,
		UpAfter:           1,
		FanoutTimeout:     2 * time.Second,
		RetryBudget:       64,
		RetryRefillPerSec: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	tc.ts = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		fault.Disable() // never leak an armed plan past a failed subtest
		tc.ts.Close()
		_ = coord.Close()
	})
	return tc
}

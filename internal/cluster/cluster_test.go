package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sketchengine/internal/core"
	"sketchengine/internal/server"
)

// testBackend is one in-process single-node backend: a real
// server.Server behind a real TCP listener, so the coordinator
// exercises its actual HTTP client path.
type testBackend struct {
	srv *server.Server
	ts  *httptest.Server
}

func (b *testBackend) addr() string { return strings.TrimPrefix(b.ts.URL, "http://") }

func newTestBackend(t *testing.T) *testBackend {
	t.Helper()
	eng, err := core.NewEngine(core.Options{K: 4, SignatureSize: 64, IndexName: "clustertest", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(eng, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close() // idempotent; tests may have killed it already
		_ = srv.Close()
	})
	return &testBackend{srv: srv, ts: ts}
}

// testCluster is n backends and one coordinator over them.
type testCluster struct {
	coord    *Coordinator
	backends []*testBackend
	ts       *httptest.Server // coordinator front end
}

func newTestCluster(t *testing.T, n, replication int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	var addrs []string
	for i := 0; i < n; i++ {
		b := newTestBackend(t)
		tc.backends = append(tc.backends, b)
		addrs = append(addrs, b.addr())
	}
	coord, err := New(Config{
		Backends:       addrs,
		Replication:    replication,
		HealthInterval: -1, // probes are driven by hand in tests
		HintInterval:   -1, // hint drains too
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	tc.ts = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		tc.ts.Close()
		_ = coord.Close()
	})
	return tc
}

// backendFor maps a ring address back to the test backend.
func (tc *testCluster) backendFor(addr string) *testBackend {
	for _, b := range tc.backends {
		if b.addr() == addr {
			return b
		}
	}
	return nil
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getBody(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func corpus(n int) server.IngestRequest {
	var req server.IngestRequest
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("rec-%02d.txt", i)
		req.Records = append(req.Records, server.IngestRecord{
			Name: name,
			Data: fmt.Sprintf("shared payload stem for %s with plenty of overlapping shingles", name),
		})
	}
	return req
}

// searchBody uses exact mode: its results depend only on the corpus,
// not on how records scattered into shards or backends, which is what
// makes byte-for-byte comparison against a single node meaningful.
func searchBody(k int) server.SearchRequest {
	return server.SearchRequest{
		Name: "q",
		Data: "shared payload stem for rec-03.txt with plenty of overlapping shingles",
		K:    k,
		Mode: "exact",
	}
}

type errEnvelope struct {
	Error server.ErrorDetail `json:"error"`
}

// TestClusterMatchesSingleNode: the acceptance bar for the merge path —
// a 3-node cluster's search response must be byte-identical to a
// single node holding the same corpus.
func TestClusterMatchesSingleNode(t *testing.T) {
	body := corpus(12)

	single := newTestBackend(t)
	resp, out := postJSON(t, single.ts.URL+"/v1/records", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node ingest status = %d, body %s", resp.StatusCode, out)
	}
	_, want := postJSON(t, single.ts.URL+"/v1/search", searchBody(5))

	tc := newTestCluster(t, 3, 2)
	resp, out = postJSON(t, tc.ts.URL+"/v1/records", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster ingest status = %d, body %s", resp.StatusCode, out)
	}
	var ing server.IngestResponse
	if err := json.Unmarshal(out, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Received != 12 || ing.Added != 12 || ing.Skipped != 0 {
		t.Fatalf("cluster ingest = %+v, want 12 received/added", ing)
	}

	resp, got := postJSON(t, tc.ts.URL+"/v1/search", searchBody(5))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster search status = %d, body %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster search differs from single node:\n cluster: %s\n single:  %s", got, want)
	}

	// Every backend must actually hold records: the ring spread the
	// corpus, it did not pile onto one node.
	for _, b := range tc.backends {
		if n := b.srv.Engine().Index().Len(); n == 0 {
			t.Errorf("backend %s holds no records; ring did not spread the corpus", b.addr())
		}
	}
}

// TestClusterKillOneBackend: with replication=2, any single backend
// death must leave the result set complete and unflagged — every
// record still has a live replica, and the retry/degrade logic must
// recognize that.
func TestClusterKillOneBackend(t *testing.T) {
	for kill := 0; kill < 3; kill++ {
		t.Run(fmt.Sprintf("kill=%d", kill), func(t *testing.T) {
			tc := newTestCluster(t, 3, 2)
			resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(12))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest status = %d, body %s", resp.StatusCode, out)
			}
			_, want := postJSON(t, tc.ts.URL+"/v1/search", searchBody(5))

			tc.backends[kill].ts.Close()

			resp, got := postJSON(t, tc.ts.URL+"/v1/search", searchBody(5))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("post-kill search status = %d, body %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("post-kill search differs:\n before: %s\n after:  %s", want, got)
			}
			if bytes.Contains(got, []byte(`"partial"`)) {
				t.Fatalf("one dead backend of three with replication=2 must not degrade to partial: %s", got)
			}

			// The dead backend was retried before the response settled.
			_, stats := getBody(t, tc.ts.URL+"/stats")
			var st StatsResponse
			if err := json.Unmarshal(stats, &st); err != nil {
				t.Fatal(err)
			}
			if st.Retries == 0 {
				t.Errorf("stats report no retries after a backend death: %s", stats)
			}
		})
	}
}

// TestClusterKillTwoBackendsPartial: two dead backends of three can
// cover a whole replica set at replication=2, so the response must
// degrade to "partial": true — still HTTP 200, never an error.
func TestClusterKillTwoBackendsPartial(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(12))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %s", resp.StatusCode, out)
	}
	tc.backends[0].ts.Close()
	tc.backends[1].ts.Close()

	resp, got := postJSON(t, tc.ts.URL+"/v1/search", searchBody(5))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search with two dead backends = %d, want 200 partial; body %s", resp.StatusCode, got)
	}
	var sr server.SearchResponse
	if err := json.Unmarshal(got, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Partial {
		t.Fatalf("two dead backends sharing replica sets must flag partial: %s", got)
	}
	if len(sr.Results) == 0 {
		t.Fatalf("partial search should still return the surviving backend's hits: %s", got)
	}

	// All three dead: nothing to answer from, so the coordinator says so.
	tc.backends[2].ts.Close()
	resp, got = postJSON(t, tc.ts.URL+"/v1/search", searchBody(5))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("search with no live backends = %d, want 502; body %s", resp.StatusCode, got)
	}
	var env errEnvelope
	if err := json.Unmarshal(got, &env); err != nil || env.Error.Code != CodeBackendDown {
		t.Fatalf("want backend_down envelope, got %s", got)
	}
}

// TestClusterIngestQuorumFailure: with one backend dead at
// replication=2, records whose replica set includes it cannot reach
// the majority quorum and must be reported individually; the rest are
// acked and durable.
func TestClusterIngestQuorumFailure(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	dead := tc.backends[2]
	dead.ts.Close()

	body := corpus(16)
	hasDead := make(map[string]bool)
	withDead, without := 0, 0
	for _, rec := range body.Records {
		for _, addr := range tc.coord.Ring().Replicas(rec.Name) {
			if addr == dead.addr() {
				hasDead[rec.Name] = true
			}
		}
		if hasDead[rec.Name] {
			withDead++
		} else {
			without++
		}
	}
	if withDead == 0 || without == 0 {
		t.Skipf("corpus does not split across the dead backend (%d with, %d without)", withDead, without)
	}

	resp, out := postJSON(t, tc.ts.URL+"/v1/records", body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("ingest with a dead replica = %d, want 502; body %s", resp.StatusCode, out)
	}
	var env errEnvelope
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeQuorumFailed {
		t.Fatalf("envelope code = %q, want %q; body %s", env.Error.Code, CodeQuorumFailed, out)
	}
	failed := make(map[string]bool)
	for _, re := range env.Error.Records {
		failed[re.Name] = true
		if re.Code != CodeBackendDown {
			t.Errorf("record %s failure code = %q, want %q", re.Name, re.Code, CodeBackendDown)
		}
	}
	for _, rec := range body.Records {
		if hasDead[rec.Name] != failed[rec.Name] {
			t.Errorf("record %s: replica set includes dead backend = %v but reported failed = %v",
				rec.Name, hasDead[rec.Name], failed[rec.Name])
		}
	}

	// Acked records are durable on both replicas and searchable: one
	// dead backend cannot degrade the search, so the acked records all
	// surface through a full (non-partial) scatter.
	resp, got := postJSON(t, tc.ts.URL+"/v1/search", server.SearchRequest{
		Name: "q", Data: body.Records[0].Data, K: 32, Mode: "exact",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-failure search status = %d, body %s", resp.StatusCode, got)
	}
	var sr server.SearchResponse
	if err := json.Unmarshal(got, &sr); err != nil {
		t.Fatal(err)
	}
	found := make(map[string]bool)
	for _, hit := range sr.Results {
		found[hit.Ref] = true
	}
	for _, rec := range body.Records {
		if !hasDead[rec.Name] && !found[rec.Name] {
			t.Errorf("acked record %s missing from search results", rec.Name)
		}
	}
}

// TestClusterDeleteAndGet: deletes route to the replica set with the
// same quorum rule as writes, and lookups never trust one replica's
// 404.
func TestClusterDeleteAndGet(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(6))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %s", resp.StatusCode, out)
	}

	resp, out = getBody(t, tc.ts.URL+"/v1/records/rec-01.txt")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"name":"rec-01.txt"`) {
		t.Fatalf("get = %d, body %s", resp.StatusCode, out)
	}

	req, _ := http.NewRequest("DELETE", tc.ts.URL+"/v1/records/rec-01.txt", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dout, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || !strings.Contains(string(dout), `"deleted":"rec-01.txt"`) {
		t.Fatalf("delete = %d, body %s", dresp.StatusCode, dout)
	}

	// Gone from every replica: the lookup 404s with the envelope.
	resp, out = getBody(t, tc.ts.URL+"/v1/records/rec-01.txt")
	var env errEnvelope
	if resp.StatusCode != http.StatusNotFound || json.Unmarshal(out, &env) != nil || env.Error.Code != server.CodeNotFound {
		t.Fatalf("get after delete = %d, body %s, want 404 not_found", resp.StatusCode, out)
	}

	// A second delete is a clean unanimous 404.
	req, _ = http.NewRequest("DELETE", tc.ts.URL+"/v1/records/rec-01.txt", nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dout, _ = io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound || !strings.Contains(string(dout), server.CodeNotFound) {
		t.Fatalf("second delete = %d, body %s, want 404 not_found", dresp.StatusCode, dout)
	}
}

// TestHealthHysteresis: single probe outcomes must not flap the ring;
// the configured consecutive-failure and -success widths must.
func TestHealthHysteresis(t *testing.T) {
	coord, err := New(Config{
		Backends:       []string{"h1:1", "h2:1", "h3:1"},
		Replication:    2,
		HealthInterval: -1,
		DownAfter:      3,
		UpAfter:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close() })
	b := coord.backends[0]
	if !b.up.Load() {
		t.Fatal("backends must start optimistically up")
	}
	coord.observeProbe(b, false)
	coord.observeProbe(b, false)
	if !b.up.Load() {
		t.Fatal("2 consecutive failures with DownAfter=3 must not mark down")
	}
	coord.observeProbe(b, false)
	if b.up.Load() {
		t.Fatal("3rd consecutive failure must mark down")
	}
	coord.observeProbe(b, true)
	if b.up.Load() {
		t.Fatal("1 success with UpAfter=2 must not mark up")
	}
	coord.observeProbe(b, false) // failure resets the success streak
	coord.observeProbe(b, true)
	if b.up.Load() {
		t.Fatal("success streak must reset on failure")
	}
	coord.observeProbe(b, true)
	if !b.up.Load() {
		t.Fatal("2 consecutive successes must mark up")
	}
	if got := b.transitions.Load(); got != 2 {
		t.Fatalf("transitions = %d, want 2 (down, up)", got)
	}

	// /healthz degrades while any backend is down.
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	coord.observeProbe(b, false)
	coord.observeProbe(b, false)
	coord.observeProbe(b, false)
	_, out := getBody(t, ts.URL+"/healthz")
	if !strings.Contains(string(out), `"status":"degraded"`) {
		t.Fatalf("healthz with a down backend = %s, want degraded", out)
	}
}

// TestClusterObservability: /stats and /metrics expose the per-backend
// state, fan-out histograms, and ring occupancy the tentpole promises.
func TestClusterObservability(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	resp, out := postJSON(t, tc.ts.URL+"/v1/records", corpus(8))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %s", resp.StatusCode, out)
	}
	if resp, out = postJSON(t, tc.ts.URL+"/v1/search", searchBody(3)); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d, body %s", resp.StatusCode, out)
	}

	_, stats := getBody(t, tc.ts.URL+"/stats")
	var st StatsResponse
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Replication != 2 || st.WriteQuorum != 2 {
		t.Errorf("stats replication/quorum = %d/%d, want 2/2", st.Replication, st.WriteQuorum)
	}
	if st.RecordsRouted != 16 { // 8 records x 2 replicas
		t.Errorf("records_routed = %d, want 16", st.RecordsRouted)
	}
	if len(st.Backends) != 3 {
		t.Fatalf("stats list %d backends, want 3", len(st.Backends))
	}
	var routed int64
	for _, bs := range st.Backends {
		if !bs.Up {
			t.Errorf("backend %s reported down in a healthy cluster", bs.Addr)
		}
		routed += bs.RoutedRecords
	}
	if routed != 16 {
		t.Errorf("per-backend routed records sum to %d, want 16", routed)
	}

	_, metrics := getBody(t, tc.ts.URL+"/metrics")
	for _, want := range []string{
		"sketchengine_cluster_backend_up{backend=",
		"sketchengine_cluster_ring_records{backend=",
		"sketchengine_cluster_fanout_duration_seconds_bucket{endpoint=\"search\"",
		"sketchengine_cluster_fanout_duration_seconds_count{endpoint=\"ingest\"",
		"sketchengine_cluster_retries_total",
		"sketchengine_cluster_partial_results_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

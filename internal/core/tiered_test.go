package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tieredEngines builds two engines over the same n records: a tiered
// one with an 8-bit prefilter and tiny segments (so sealing happens in
// every test) and a plain full-width in-RAM one. The tiered engine's
// exact-cut rescore must make the pair indistinguishable to callers.
func tieredEngines(tb testing.TB, n int, segRows int) (tiered, plain *Engine) {
	tb.Helper()
	tiered, err := NewEngine(Options{
		IndexName: "tiered", Bits: 8,
		Tiered: true, DataDir: tb.TempDir(), SegmentRows: segRows,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { tiered.Index().Close() })
	plain, err = NewEngine(Options{IndexName: "plain"})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}
		if _, err := tiered.Add(rec); err != nil {
			tb.Fatal(err)
		}
		if _, err := plain.Add(rec); err != nil {
			tb.Fatal(err)
		}
	}
	return tiered, plain
}

// TestTieredSearchMatchesNonTiered is the tentpole's correctness
// property: because the packed b-bit score is an upper bound on the
// full-width score, the prefilter's minSim cut and the sorted-rescore
// early exit are both exact, and a tiered 8-bit index must return
// byte-identical results to a full-width in-RAM index — every mode,
// every minSim, including the self-exclusion of indexed queries.
func TestTieredSearchMatchesNonTiered(t *testing.T) {
	tiered, plain := tieredEngines(t, 600, 16)
	queries := []*Sketch{
		plain.Sketcher().Sketch(Record{Name: "q-near", Data: benchData(256, 1)}),
		plain.Sketcher().Sketch(Record{Name: "q-far", Data: benchData(256, 99999)}),
		plain.Index().Get("rec-7"), // indexed: self-hit must stay excluded
	}
	for _, q := range queries {
		for _, minSim := range []float64{0, 0.1, 0.5, 0.9} {
			for mode, search := range map[string]func(*Index, *Sketch, int, float64, *Pool) ([]Result, error){
				"exact": SearchTopK, "lsh": SearchTopKLSH,
			} {
				want, err := search(plain.Index(), q, 10, minSim, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := search(tiered.Index(), q, 10, minSim, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s q=%s minSim=%v: tiered returned %d results, plain %d",
						mode, q.Name, minSim, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s q=%s minSim=%v result %d: tiered %+v, plain %+v",
							mode, q.Name, minSim, i, got[i], want[i])
					}
				}
			}
		}
	}
	// The scan actually went through the tier: rows were prefiltered and
	// survivors rescored from segments.
	st := tiered.Index().Tier()
	if st == nil || st.PrefilterScanned == 0 || st.Rescored == 0 {
		t.Fatalf("tier stats after searches: %+v", st)
	}
	if st.Segments == 0 || st.PrefilterBits != 8 {
		t.Fatalf("tier shape: %+v, want sealed segments and an 8-bit prefilter", st)
	}
}

// TestTieredSimilarityIsFullWidth pins the rescore half of the
// collision-bound property: the packed score may over-count (low-bit
// collisions), but every reported similarity must be computed from the
// full-width signature, exactly matchingSlots/slots — never the
// inflated prefilter value.
func TestTieredSimilarityIsFullWidth(t *testing.T) {
	const slots = DefaultSignatureSize
	eng, err := NewEngine(Options{
		IndexName: "fw", Bits: 8,
		Tiered: true, DataDir: t.TempDir(), SegmentRows: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Index().Close()
	s := eng.Sketcher()
	// Records across the overlap spectrum, like the collision-bound
	// test: each edits a random-length prefix of the query's payload.
	data := benchData(2048, 7)
	var sketches []*Sketch
	for i := 0; i < 60; i++ {
		edited := append([]byte(nil), data...)
		for j := 0; j < (i*len(edited))/60; j++ {
			edited[j] = byte('A' + (i+j)%26)
		}
		sk := s.Sketch(Record{Name: fmt.Sprintf("y-%d", i), Data: edited})
		sketches = append(sketches, sk)
		if _, err := eng.Index().Add(sk); err != nil {
			t.Fatal(err)
		}
	}
	q := s.Sketch(Record{Name: "x", Data: data})
	got, err := SearchTopK(eng.Index(), q, len(sketches), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sketches) {
		t.Fatalf("got %d results, want %d", len(got), len(sketches))
	}
	bySketch := make(map[string]*Sketch, len(sketches))
	for _, sk := range sketches {
		bySketch[sk.Name] = sk
	}
	for _, r := range got {
		want := float64(matchingSlots(q.Signature, bySketch[r.Ref].Signature)) / float64(slots)
		if r.Similarity != want {
			t.Fatalf("result %s: similarity %v, want full-width %v", r.Ref, r.Similarity, want)
		}
	}
}

func TestTieredSaveDirLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewEngine(Options{
		IndexName: "rt", Bits: 8,
		Tiered: true, DataDir: dir, SegmentRows: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Index().Close()
	for i := 0; i < 300; i++ {
		if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
			t.Fatal(err)
		}
	}
	ix := eng.Index()
	q := eng.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 3)})
	before, err := SearchTopK(ix, q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveDir(); err != nil {
		t.Fatal(err)
	}
	if !IsTieredDir(dir) { //nolint:staticcheck // deprecated wrapper must keep working
		t.Fatalf("IsTieredDir(%s) = false after SaveDir", dir)
	}

	got, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer got.Close()
	gm, wm := got.Metadata(), ix.Metadata()
	if gm.Format != FormatV6 || gm.Bits != 8 || gm.RecordCount != 300 ||
		gm.Name != wm.Name || gm.K != wm.K || gm.SignatureSize != wm.SignatureSize ||
		gm.Scheme != wm.Scheme || gm.Shards != wm.Shards {
		t.Fatalf("loaded metadata = %+v, want to match %+v", gm, wm)
	}
	// Full-width signatures survive the trip through segment files.
	for _, name := range []string{"rec-0", "rec-150", "rec-299"} {
		if !equalSig(got.Get(name).Signature, ix.Get(name).Signature) {
			t.Fatalf("sketch %q changed across SaveDir/LoadDir", name)
		}
	}
	after, err := SearchTopK(got, q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("result %d changed across round trip: %+v vs %+v", i, before[i], after[i])
		}
	}

	// Incremental snapshot: add to the loaded index and save again. The
	// second snapshot appends new segments (sealed files are immutable)
	// and a third load sees everything.
	segsBefore := countSegments(t, dir)
	s := eng.Sketcher()
	for i := 300; i < 400; i++ {
		if _, err := got.Add(s.Sketch(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))})); err != nil {
			t.Fatal(err)
		}
	}
	if err := got.SaveDir(); err != nil {
		t.Fatal(err)
	}
	if segsAfter := countSegments(t, dir); segsAfter <= segsBefore {
		t.Fatalf("second snapshot did not append segments: %d -> %d", segsBefore, segsAfter)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after incremental snapshot: %v", err)
	}
	defer again.Close()
	if again.Len() != 400 || again.Get("rec-399") == nil {
		t.Fatalf("incremental snapshot lost records: len=%d", again.Len())
	}
	// No temp files may be left behind anywhere in the data dir.
	for _, sub := range []string{dir, filepath.Join(dir, "segments")} {
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				t.Fatalf("temp file %s left in %s", e.Name(), sub)
			}
		}
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "segments"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			n++
		}
	}
	return n
}

// saveTieredDir builds a small tiered index, snapshots it into dir, and
// returns the path of one sealed segment file.
func saveTieredDir(t *testing.T, dir string) string {
	t.Helper()
	eng, err := NewEngine(Options{
		IndexName: "corrupt", Bits: 8,
		Tiered: true, DataDir: dir, SegmentRows: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Index().Close()
	for i := 0; i < 100; i++ {
		if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Index().SaveDir(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "segments", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files written: %v", err)
	}
	return segs[0]
}

// TestLoadDirRejectsCorruptSegments: every way a segment file can rot —
// truncation, bit flips in the payload, a clobbered header, a missing
// file — must fail the load with an error naming the file and the
// failing check, never load wrong data.
func TestLoadDirRejectsCorruptSegments(t *testing.T) {
	cases := map[string]struct {
		corrupt func(t *testing.T, seg string)
		wantErr string
	}{
		"truncated": {func(t *testing.T, seg string) {
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg, fi.Size()-8); err != nil {
				t.Fatal(err)
			}
		}, "truncated"},
		"payload bit flip": {func(t *testing.T, seg string) {
			b, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0x40
			if err := os.WriteFile(seg, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "checksum"},
		"bad magic": {func(t *testing.T, seg string) {
			b, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			copy(b[0:4], "NOPE")
			if err := os.WriteFile(seg, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "magic"},
		"missing file": {func(t *testing.T, seg string) {
			if err := os.Remove(seg); err != nil {
				t.Fatal(err)
			}
		}, "no such file"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			seg := saveTieredDir(t, dir)
			tc.corrupt(t, seg)
			ix, err := Open(dir)
			if err == nil {
				ix.Close()
				t.Fatalf("Open loaded a corrupt directory")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), filepath.Base(seg)) && name != "missing file" {
				t.Fatalf("error %q does not name the corrupt file %s", err, filepath.Base(seg))
			}
		})
	}
	// A corrupted manifest is rejected too.
	t.Run("corrupt manifest", func(t *testing.T) {
		dir := t.TempDir()
		saveTieredDir(t, dir)
		if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if ix, err := Open(dir); err == nil {
			ix.Close()
			t.Fatal("Open accepted a corrupt manifest")
		}
	})
}

// TestSegmentPreadFallback forces the non-mmap path (the same one
// non-Unix builds and exotic filesystems take) and checks the tier is
// fully functional on it: sealing, loading, row reads, and searches all
// agree with the mmap path, with MappedBytes reporting zero.
func TestSegmentPreadFallback(t *testing.T) {
	old := mmapForceFallback
	mmapForceFallback = true
	defer func() { mmapForceFallback = old }()

	tiered, plain := tieredEngines(t, 300, 32)
	if st := tiered.Index().Tier(); st.MappedBytes != 0 {
		t.Fatalf("fallback path reports %d mapped bytes, want 0", st.MappedBytes)
	}
	q := plain.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 5)})
	want, err := SearchTopK(plain.Index(), q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchTopK(tiered.Index(), q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pread result %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Round trip on the fallback path too.
	if err := tiered.Index().SaveDir(); err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(tiered.Index().DataDir())
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	got, err = SearchTopK(loaded, q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pread round-trip result %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEnableTieredUpgradesV4 is the migration path: a legacy v4 JSON
// index upgrades in place to a tiered v5 directory — full-width slots
// re-truncate losslessly into the requested prefilter width, search
// results stay identical, and the directory round-trips.
func TestEnableTieredUpgradesV4(t *testing.T) {
	eng, err := NewEngine(Options{IndexName: "v4"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := eng.Index().Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := eng.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 11)})
	want, err := SearchTopK(ix, q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := ix.EnableTiered(dir, 64, 8); err != nil {
		t.Fatalf("EnableTiered: %v", err)
	}
	defer ix.Close()
	if m := ix.Metadata(); m.Format != FormatV6 || m.Bits != 8 || !ix.Tiered() {
		t.Fatalf("upgraded metadata = %+v", m)
	}
	got, err := SearchTopK(ix, q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("upgrade changed result %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := ix.SaveDir(); err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	got, err = SearchTopK(loaded, q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("upgraded round trip changed result %d: %+v, want %+v", i, got[i], want[i])
		}
	}

	// A populated truncated index discarded its full-width slots at add
	// time and cannot upgrade.
	eng8, err := NewEngine(Options{IndexName: "v4-8bit", Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng8.Add(Record{Name: "rec", Data: benchData(256, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := eng8.Index().EnableTiered(t.TempDir(), 0, 0); err == nil ||
		!strings.Contains(err.Error(), "full-width") {
		t.Fatalf("EnableTiered on populated 8-bit index: err = %v, want full-width rejection", err)
	}
}

// TestTieredBudgetCapsRescores: a positive budget must bound the
// full-width reads a query spends per shard, and budget 0 must not.
func TestTieredBudgetCapsRescores(t *testing.T) {
	tiered, _ := tieredEngines(t, 600, 16)
	ix := tiered.Index()
	q := tiered.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 2)})

	ix.SetBudget(2)
	if ix.Budget() != 2 {
		t.Fatalf("Budget() = %d after SetBudget(2)", ix.Budget())
	}
	before := ix.Tier().Rescored
	if _, err := SearchTopK(ix, q, 10, 0, nil); err != nil {
		t.Fatal(err)
	}
	delta := ix.Tier().Rescored - before
	maxRescores := uint64(2 * ix.Metadata().Shards)
	if delta == 0 || delta > maxRescores {
		t.Fatalf("budgeted search rescored %d rows, want 1..%d", delta, maxRescores)
	}

	ix.SetBudget(0)
	before = ix.Tier().Rescored
	if _, err := SearchTopK(ix, q, 600, 0, nil); err != nil {
		t.Fatal(err)
	}
	if delta := ix.Tier().Rescored - before; delta <= maxRescores {
		t.Fatalf("unbounded topK=600 search rescored only %d rows", delta)
	}
}

// TestTieredSearchRejectsTruncatedQuery: rescoring needs the query's
// full-width signature; a pre-truncated query sketch cannot be scored
// against the tier and must be rejected up front.
func TestTieredSearchRejectsTruncatedQuery(t *testing.T) {
	tiered, _ := tieredEngines(t, 50, 32)
	q := tiered.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 2)})
	q.Bits = 8
	if _, err := SearchTopK(tiered.Index(), q, 5, 0, nil); err == nil ||
		!strings.Contains(err.Error(), "full-width") {
		t.Fatalf("truncated query on tiered index: err = %v, want full-width requirement", err)
	}
}

// TestTieredSaveFormats: tiered indexes persist through SaveDir only —
// the JSON writer has nowhere to put segments — and a v5 format number
// in a JSON file redirects the reader to core.Open.
func TestTieredSaveFormats(t *testing.T) {
	tiered, _ := tieredEngines(t, 20, 32)
	var buf bytes.Buffer
	if err := tiered.Index().Save(&buf); err == nil ||
		!strings.Contains(err.Error(), "SaveDir") {
		t.Fatalf("JSON Save on tiered index: err = %v, want SaveDir redirect", err)
	}
	for _, format := range []int{5, 6} {
		v := fmt.Sprintf(`{"meta":{"name":"x","format":%d,"k":4,"signature_size":2,"scheme":"oph","bits":8,"bands":1,"rows_per_band":2,"shards":4},"sketches":[]}`, format)
		if _, err := LoadIndex(bytes.NewReader([]byte(v))); err == nil ||
			!strings.Contains(err.Error(), "core.Open") {
			t.Fatalf("LoadIndex of a v%d file: err = %v, want core.Open redirect", format, err)
		}
	}
}

// TestTieredGetSketchFullWidth: Get on a tiered index reconstructs the
// record from the full-width tier, not the truncated prefilter.
func TestTieredGetSketchFullWidth(t *testing.T) {
	tiered, plain := tieredEngines(t, 100, 32)
	for _, name := range []string{"rec-0", "rec-50", "rec-99"} {
		got, want := tiered.Index().Get(name), plain.Index().Get(name)
		if got == nil || !equalSig(got.Signature, want.Signature) {
			t.Fatalf("tiered Get(%q) = %v, want the full-width signature", name, got)
		}
		if got.Bits != 64 {
			t.Fatalf("tiered Get(%q).Bits = %d, want 64", name, got.Bits)
		}
	}
}

// TestTieredRebucket: band retuning works on a tiered index (the full
// tier is carried shard-for-shard), but resharding would renumber the
// tier's shard-local rows and is rejected.
func TestTieredRebucket(t *testing.T) {
	tiered, plain := tieredEngines(t, 300, 64)
	ix := tiered.Index()
	meta := ix.Metadata()
	lsh, err := NewLSHParams(16, 8, meta.SignatureSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Rebucket(lsh, meta.Shards); err != nil {
		t.Fatalf("Rebucket with same shard count: %v", err)
	}
	q := plain.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 9)})
	want, err := SearchTopK(plain.Index(), q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchTopK(ix, q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-rebucket result %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := ix.Rebucket(lsh, meta.Shards*2); err == nil ||
		!strings.Contains(err.Error(), "shard") {
		t.Fatalf("Rebucket with new shard count on tiered index: err = %v, want rejection", err)
	}
}

// BenchmarkTieredSearch reports the tier-health metrics bench-compare
// watches: the prefilter survival rate (fraction of rows whose packed
// score cleared minSim and went to ranking) and mapped segment bytes
// per record.
func BenchmarkTieredSearch(b *testing.B) {
	const n = 5000
	eng, err := NewEngine(Options{
		IndexName: "bench", Bits: 8,
		Tiered: true, DataDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Index().Close()
	for i := 0; i < n; i++ {
		if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Index().SaveDir(); err != nil {
		b.Fatal(err)
	}
	q := eng.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 42)})
	pool := NewPool(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchTopK(eng.Index(), q, 10, 0.5, pool); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := eng.Index().Tier()
	b.ReportMetric(st.SurvivalRate, "survival")
	b.ReportMetric(float64(st.MappedBytes)/float64(n), "mappedB/rec")
}

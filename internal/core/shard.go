package core

import (
	"slices"
	"sync"
)

// DefaultShards is the number of lock-striped shards an index uses
// unless configured otherwise.
const DefaultShards = 16

// shard owns one stripe of the index: the records whose names hash to
// it, plus the LSH band postings for those records. Record signatures
// live in a contiguous packed arena (see sigArena) addressed by a
// shard-local record index, so exact scans are cache-linear sweeps over
// one buffer instead of a pointer chase per record. Each shard has its
// own lock, so concurrent adds and scans on different stripes never
// contend — and per-shard query fan-out scans stripes truly in
// parallel.
type shard struct {
	mu       sync.RWMutex
	ids      map[string]int32 // record name -> arena row index
	names    []string         // arena row index -> record name
	shingles []int32          // arena row index -> shingle count
	arena    *sigArena
	bands    *bandIndex
	mask     uint64 // lane mask caching laneMask(arena.bits)
}

func newShard(p LSHParams, slots, bits int) *shard {
	return &shard{
		ids:   make(map[string]int32),
		arena: newSigArena(slots, bits),
		bands: newBandIndex(p),
		mask:  laneMask(bits),
	}
}

func newShards(n int, p LSHParams, slots, bits int) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = newShard(p, slots, bits)
	}
	return shards
}

// add packs s's signature onto the arena unless a record with the same
// name is already present; it reports whether the insert happened.
func (sh *shard) add(s *Sketch) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.ids[s.Name]; exists {
		return false
	}
	idx := int32(sh.arena.appendSig(s.Signature))
	sh.ids[s.Name] = idx
	sh.names = append(sh.names, s.Name)
	sh.shingles = append(sh.shingles, int32(s.Shingles))
	sh.bands.add(idx, s.Signature, sh.mask)
	return true
}

// size returns the number of records in this stripe.
func (sh *shard) size() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.names)
}

// has reports whether a record named name is present, without
// reconstructing its sketch.
func (sh *shard) has(name string) bool {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.ids[name]
	return ok
}

// getSketch reconstructs the sketch named name from the arena, or
// returns nil. At packing widths below 64 the slot values are the
// stored truncated lanes, not the original full-width minhashes (those
// are gone by design). k and scheme come from the index metadata.
func (sh *shard) getSketch(name string, k int, scheme Scheme) *Sketch {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	idx, ok := sh.ids[name]
	if !ok {
		return nil
	}
	return &Sketch{
		Name:      name,
		K:         k,
		Shingles:  int(sh.shingles[idx]),
		Scheme:    scheme,
		Bits:      sh.arena.bits,
		Signature: sh.arena.appendUnpacked(make([]uint64, 0, sh.arena.slots), int(idx)),
	}
}

// arenaBytes returns this stripe's (used, capacity) signature bytes.
func (sh *shard) arenaBytes() (used, capacity int64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.arena.usedBytes(), sh.arena.capBytes()
}

// scanAppend exact-scores q against every record in this stripe,
// appending results that pass the self-hit and minSim filters to dst.
// The walk is a sequential sweep over the packed arena — the
// cache-linear inner loop the arena layout exists for.
func (sh *shard) scanAppend(dst []Result, q *packedQuery, minSim float64) []Result {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for i := range sh.names {
		dst = sh.scoreRow(dst, q, minSim, int32(i))
	}
	return dst
}

// probeCandidates gathers the shard-local record indexes sharing at
// least one LSH band bucket with the query (whose per-band keys are
// precomputed in q.bandKeys) into sc.cands, deduped through sc's
// candidate bitset (indexes hit by several bands appear once). The
// bitset is retained so a later scanRestAppend can score exactly the
// complement.
func (sh *shard) probeCandidates(q *packedQuery, sc *shardScratch) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sc.resetFor(len(sh.names))
	bi := sh.bands
	for band, key := range q.bandKeys {
		for _, idx := range bi.buckets[band][key] {
			if sc.candSet[idx>>6]&(1<<uint(idx&63)) != 0 {
				continue
			}
			sc.candSet[idx>>6] |= 1 << uint(idx&63)
			sc.cands = append(sc.cands, idx)
		}
	}
}

// scoreCandidates scores the indexes probeCandidates collected.
func (sh *shard) scoreCandidates(dst []Result, q *packedQuery, minSim float64, sc *shardScratch) []Result {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, idx := range sc.cands {
		dst = sh.scoreRow(dst, q, minSim, idx)
	}
	return dst
}

// scanRestAppend scores every record NOT marked in sc's candidate
// bitset — the LSH fallback's complement pass, so no record is scored
// twice and the merged set matches an exact scan. Records added after
// the probe (concurrent ingest) sit past the bitset and count as
// unprobed.
func (sh *shard) scanRestAppend(dst []Result, q *packedQuery, minSim float64, sc *shardScratch) []Result {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	probed := len(sc.candSet) << 6
	for i := range sh.names {
		if i < probed && sc.candSet[i>>6]&(1<<uint(i&63)) != 0 {
			continue
		}
		dst = sh.scoreRow(dst, q, minSim, int32(i))
	}
	return dst
}

// scoreRow scores one arena row against q, appending the result unless
// it is a self-hit (same name AND same packed signature — a same-named
// record whose content changed after indexing is still reported) or
// falls below minSim. Callers hold the shard lock.
func (sh *shard) scoreRow(dst []Result, q *packedQuery, minSim float64, idx int32) []Result {
	row := sh.arena.row(int(idx))
	if sh.names[idx] == q.name && slices.Equal(q.packed, row) {
		return dst
	}
	var sim float64
	if q.slots != 0 && q.shingles != 0 && sh.shingles[idx] != 0 {
		sim = float64(packedMatchingSlots(q.packed, row, q.slots, sh.arena.bits)) / float64(q.slots)
	}
	if sim >= minSim {
		dst = append(dst, Result{Query: q.name, Ref: sh.names[idx], Similarity: sim, Distance: 1 - sim})
	}
	return dst
}

// shardFor maps a record name onto one of n stripes with FNV-1a.
func shardFor(name string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

package core

import (
	"slices"
	"sync"
	"sync/atomic"
)

// DefaultShards is the number of lock-striped shards an index uses
// unless configured otherwise.
const DefaultShards = 16

// shard owns one stripe of the index: the records whose names hash to
// it, plus the LSH band postings for those records. Record signatures
// live in a contiguous packed arena (see sigArena) addressed by a
// shard-local record index, so exact scans are cache-linear sweeps over
// one buffer instead of a pointer chase per record. Each shard has its
// own lock, so concurrent adds and scans on different stripes never
// contend — and per-shard query fan-out scans stripes truly in
// parallel.
type shard struct {
	mu       sync.RWMutex
	ids      map[string]int32 // record name -> arena row index; deleted rows are absent
	names    []string         // arena row index -> record name
	shingles []int32          // arena row index -> shingle count
	arena    *sigArena
	bands    *bandIndex
	mask     uint64     // lane mask caching laneMask(arena.bits)
	full     *fullStore // full-width tier; nil on non-tiered indexes

	// Deletes are tombstones: the row stays in the arena (and segments)
	// but its dead bit is set and every scan skips it, until a
	// compaction rewrites the stripe without it.
	dead     []uint64 // bitset over arena rows; 1 = tombstoned
	deadRows int
	// structGen bumps whenever row indexes are reassigned (compaction).
	// Queries that captured candidate indexes under an older generation
	// detect the mismatch and rescan instead of scoring stale rows.
	structGen uint64

	// wal is the shard's write-ahead log, attached once the tiered
	// directory has a committed manifest (SaveDir/LoadDir) and nil
	// otherwise. Atomic so Index.SyncWAL can read it without sh.mu.
	wal atomic.Pointer[shardWAL]
}

func newShard(p LSHParams, slots, bits int) *shard {
	return &shard{
		ids:   make(map[string]int32),
		arena: newSigArena(slots, bits),
		bands: newBandIndex(p),
		mask:  laneMask(bits),
	}
}

func newShards(n int, p LSHParams, slots, bits int) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = newShard(p, slots, bits)
	}
	return shards
}

// add packs s's signature onto the arena unless a record with the same
// name is already present; it reports whether the insert happened. On a
// tiered shard the full-width signature is appended to the on-disk tier
// first — a seal failure there rolls back cleanly and fails the add
// before anything is registered, so the tiers never disagree.
func (sh *shard) add(s *Sketch) (bool, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.ids[s.Name]; exists {
		return false, nil
	}
	if sh.full != nil {
		if err := sh.full.append(s.Signature); err != nil {
			return false, err
		}
	}
	idx := int32(sh.arena.appendSig(s.Signature))
	sh.ids[s.Name] = idx
	sh.names = append(sh.names, s.Name)
	sh.shingles = append(sh.shingles, int32(s.Shingles))
	sh.bands.add(idx, s.Signature, sh.mask)
	if w := sh.wal.Load(); w != nil {
		w.appendAdd(sh.full.tier.walSeq.Add(1), s.Name, int32(s.Shingles), s.Signature)
	}
	return true, nil
}

// delete tombstones the record named name: the name leaves the id map
// (so a later add may reuse it), the row's dead bit is set, and every
// scan path skips it from now on. The arena row itself is reclaimed by
// the next compaction. It reports whether a record was deleted.
func (sh *shard) delete(name string) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.ids[name]
	if !ok {
		return false
	}
	delete(sh.ids, name)
	w := int(idx) >> 6
	for len(sh.dead) <= w {
		sh.dead = append(sh.dead, 0)
	}
	sh.dead[w] |= 1 << uint(idx&63)
	sh.deadRows++
	if wl := sh.wal.Load(); wl != nil {
		wl.appendDelete(sh.full.tier.walSeq.Add(1), name)
	}
	return true
}

// rowDead reports whether arena row idx is tombstoned. Callers hold the
// shard lock (either mode).
func (sh *shard) rowDead(idx int32) bool {
	w := int(idx) >> 6
	return w < len(sh.dead) && sh.dead[w]&(1<<uint(idx&63)) != 0
}

// deadCount returns (tombstoned rows, total arena rows).
func (sh *shard) deadCount() (dead, rows int) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.deadRows, len(sh.names)
}

// size returns the number of live records in this stripe (tombstoned
// rows are excluded).
func (sh *shard) size() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.ids)
}

// has reports whether a record named name is present, without
// reconstructing its sketch.
func (sh *shard) has(name string) bool {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.ids[name]
	return ok
}

// getSketch reconstructs the sketch named name, or returns nil. Tiered
// shards read the full-width tier, so the slot values are the original
// minhashes even when the prefilter packs at 8 bits. On non-tiered
// shards at packing widths below 64 the slot values are the stored
// truncated lanes, not the original full-width minhashes (those are
// gone by design). k and scheme come from the index metadata.
func (sh *shard) getSketch(name string, k int, scheme Scheme) *Sketch {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	idx, ok := sh.ids[name]
	if !ok {
		return nil
	}
	if sh.full != nil {
		var sc rowScratch
		row, err := sh.full.row(int(idx), &sc)
		if err != nil {
			sh.full.tier.readErrors.Add(1)
			return nil
		}
		sig := make([]uint64, len(row))
		copy(sig, row)
		return &Sketch{
			Name:      name,
			K:         k,
			Shingles:  int(sh.shingles[idx]),
			Scheme:    scheme,
			Bits:      DefaultBits,
			Signature: sig,
		}
	}
	return &Sketch{
		Name:      name,
		K:         k,
		Shingles:  int(sh.shingles[idx]),
		Scheme:    scheme,
		Bits:      sh.arena.bits,
		Signature: sh.arena.appendUnpacked(make([]uint64, 0, sh.arena.slots), int(idx)),
	}
}

// tierBytes returns this stripe's tier footprint: sealed segment count,
// mmap'd payload bytes, unsealed head bytes, and the packed prefilter's
// live bytes. Zero segments/mapped/head on non-tiered shards.
func (sh *shard) tierBytes() (segs int, mapped, head, arenaUsed int64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	arenaUsed = sh.arena.usedBytes()
	if sh.full == nil {
		return 0, 0, 0, arenaUsed
	}
	return len(sh.full.segs), sh.full.mappedBytes(), sh.full.headBytes(), arenaUsed
}

// arenaBytes returns this stripe's (used, capacity) signature bytes.
func (sh *shard) arenaBytes() (used, capacity int64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.arena.usedBytes(), sh.arena.capBytes()
}

// scanAppend exact-scores q against every record in this stripe,
// appending results that pass the self-hit and minSim filters to dst.
// The walk is a sequential sweep over the packed arena — the
// cache-linear inner loop the arena layout exists for.
func (sh *shard) scanAppend(dst []Result, q *packedQuery, minSim float64) []Result {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for i := range sh.names {
		if i%cancelCheckEvery == 0 && q.cancel.canceled() {
			return dst
		}
		dst = sh.scoreRow(dst, q, minSim, int32(i))
	}
	return dst
}

// probeCandidates gathers the shard-local record indexes sharing at
// least one LSH band bucket with the query (whose per-band keys are
// precomputed in q.bandKeys) into sc.cands, deduped through sc's
// candidate bitset (indexes hit by several bands appear once). The
// bitset is retained so a later scanRestAppend can score exactly the
// complement.
func (sh *shard) probeCandidates(q *packedQuery, sc *shardScratch) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sc.resetFor(len(sh.names))
	sc.gen = sh.structGen
	bi := sh.bands
	for band, key := range q.bandKeys {
		if band >= len(bi.buckets) {
			// A live Rebucket shrank the band count between this query's
			// key precomputation and the probe; the missing bands simply
			// contribute no candidates.
			break
		}
		for _, idx := range bi.buckets[band][key] {
			if sc.candSet[idx>>6]&(1<<uint(idx&63)) != 0 {
				continue
			}
			sc.candSet[idx>>6] |= 1 << uint(idx&63)
			sc.cands = append(sc.cands, idx)
		}
	}
}

// scoreCandidates scores the indexes probeCandidates collected. If a
// compaction reassigned row indexes since the probe (structGen moved),
// the captured candidates are stale; the shard falls back to scoring
// every row so the query still sees a consistent stripe.
func (sh *shard) scoreCandidates(dst []Result, q *packedQuery, minSim float64, sc *shardScratch) []Result {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sc.gen != sh.structGen {
		sc.fullScanned = true
		for i := range sh.names {
			if i%cancelCheckEvery == 0 && q.cancel.canceled() {
				return dst
			}
			dst = sh.scoreRow(dst, q, minSim, int32(i))
		}
		return dst
	}
	for i, idx := range sc.cands {
		if i%cancelCheckEvery == 0 && q.cancel.canceled() {
			return dst
		}
		dst = sh.scoreRow(dst, q, minSim, idx)
	}
	return dst
}

// scanRestAppend scores every record NOT marked in sc's candidate
// bitset — the LSH fallback's complement pass, so no record is scored
// twice and the merged set matches an exact scan. Records added after
// the probe (concurrent ingest) sit past the bitset and count as
// unprobed.
func (sh *shard) scanRestAppend(dst []Result, q *packedQuery, minSim float64, sc *shardScratch) []Result {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sc.fullScanned || sc.gen != sh.structGen {
		// The candidate pass already swept every row (stale-generation
		// fallback), or the bitset no longer describes current row
		// indexes; either way there is no meaningful complement.
		return dst
	}
	probed := len(sc.candSet) << 6
	for i := range sh.names {
		if i%cancelCheckEvery == 0 && q.cancel.canceled() {
			return dst
		}
		if i < probed && sc.candSet[i>>6]&(1<<uint(i&63)) != 0 {
			continue
		}
		dst = sh.scoreRow(dst, q, minSim, int32(i))
	}
	return dst
}

// scoreRow scores one arena row against q, appending the result unless
// it is a self-hit (same name AND same packed signature — a same-named
// record whose content changed after indexing is still reported) or
// falls below minSim. Callers hold the shard lock.
func (sh *shard) scoreRow(dst []Result, q *packedQuery, minSim float64, idx int32) []Result {
	if sh.rowDead(idx) {
		return dst
	}
	row := sh.arena.row(int(idx))
	if sh.names[idx] == q.name && slices.Equal(q.packed, row) {
		return dst
	}
	var sim float64
	if q.slots != 0 && q.shingles != 0 && sh.shingles[idx] != 0 {
		sim = float64(packedMatchingSlots(q.packed, row, q.slots, sh.arena.bits)) / float64(q.slots)
	}
	if sim >= minSim {
		dst = append(dst, Result{Query: q.name, Ref: sh.names[idx], Similarity: sim, Distance: 1 - sim})
	}
	return dst
}

// tieredScanAppend is scanAppend for tiered shards: prefilter every
// row against the packed arena, then rescore the survivors full-width
// in packed-score order (see tieredRescore). It appends at most topK
// results — the per-shard top-K contains the shard's contribution to
// any global top-K, which is exactly what runScan's merge needs.
func (sh *shard) tieredScanAppend(dst []Result, q *packedQuery, minSim float64, topK int, sc *shardScratch) []Result {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sc.scored = sc.scored[:0]
	for i := range sh.names {
		if i%cancelCheckEvery == 0 && q.cancel.canceled() {
			return dst
		}
		sh.prefilterRow(q, minSim, int32(i), sc)
	}
	return sh.tieredRescore(dst, q, minSim, topK, sc, len(sh.names))
}

// tieredScoreCandidates is scoreCandidates for tiered shards: the LSH
// probe's candidates go through the same prefilter→rescore pipeline,
// with the same stale-generation full-scan fallback.
func (sh *shard) tieredScoreCandidates(dst []Result, q *packedQuery, minSim float64, topK int, sc *shardScratch) []Result {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sc.scored = sc.scored[:0]
	if sc.gen != sh.structGen {
		sc.fullScanned = true
		for i := range sh.names {
			if i%cancelCheckEvery == 0 && q.cancel.canceled() {
				return dst
			}
			sh.prefilterRow(q, minSim, int32(i), sc)
		}
		return sh.tieredRescore(dst, q, minSim, topK, sc, len(sh.names))
	}
	for i, idx := range sc.cands {
		if i%cancelCheckEvery == 0 && q.cancel.canceled() {
			return dst
		}
		sh.prefilterRow(q, minSim, idx, sc)
	}
	return sh.tieredRescore(dst, q, minSim, topK, sc, len(sc.cands))
}

// tieredScanRest is scanRestAppend for tiered shards: prefilter and
// rescore only the rows the candidate pass skipped.
func (sh *shard) tieredScanRest(dst []Result, q *packedQuery, minSim float64, topK int, sc *shardScratch) []Result {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sc.fullScanned || sc.gen != sh.structGen {
		return dst
	}
	probed := len(sc.candSet) << 6
	sc.scored = sc.scored[:0]
	n := 0
	for i := range sh.names {
		if i%cancelCheckEvery == 0 && q.cancel.canceled() {
			return dst
		}
		if i < probed && sc.candSet[i>>6]&(1<<uint(i&63)) != 0 {
			continue
		}
		n++
		sh.prefilterRow(q, minSim, int32(i), sc)
	}
	return sh.tieredRescore(dst, q, minSim, topK, sc, n)
}

// prefilterRow packed-scores one arena row and appends it to sc.scored
// unless its packed similarity is already below minSim. The packed
// score is an upper bound on the full-width score (a truncated slot
// matches whenever the full slot does), so this cut never drops a row
// the full scan would have kept. Callers hold the shard lock.
func (sh *shard) prefilterRow(q *packedQuery, minSim float64, idx int32, sc *shardScratch) {
	if sh.rowDead(idx) {
		return
	}
	var m int
	var sim float64
	if q.slots != 0 && q.shingles != 0 && sh.shingles[idx] != 0 {
		m = packedMatchingSlots(q.packed, sh.arena.row(int(idx)), q.slots, sh.arena.bits)
		sim = float64(m) / float64(q.slots)
	}
	if sim < minSim {
		return
	}
	sc.scored = append(sc.scored, scoredCand{idx: idx, matched: int32(m)})
}

// tieredRescore reads the prefilter survivors in sc.scored full-width
// from the shard's tier, best packed score first, and appends the
// shard's top-K results to dst. Because the packed score upper-bounds
// the full score, the walk stops as soon as the next candidate's bound
// falls below the K-th best full score found so far — on selective
// queries only a handful of rows are ever read from disk. A positive
// tier budget additionally caps the full-width reads; rows that fail to
// read are counted and skipped rather than failing the query. scanned
// is the row count the prefilter phase covered, for the survival-rate
// counters. Callers hold the shard lock.
func (sh *shard) tieredRescore(dst []Result, q *packedQuery, minSim float64, topK int, sc *shardScratch, scanned int) []Result {
	t := sh.full.tier
	t.scanned.Add(uint64(scanned))
	t.survived.Add(uint64(len(sc.scored)))
	if len(sc.scored) == 0 {
		return dst
	}
	slices.SortFunc(sc.scored, func(a, b scoredCand) int {
		if a.matched != b.matched {
			return int(b.matched - a.matched)
		}
		return int(a.idx - b.idx)
	})
	budget := int(t.budget.Load())
	base := len(dst)
	rescored := 0
	slotsF := float64(q.slots)
	for ci, c := range sc.scored {
		if budget > 0 && rescored >= budget {
			break
		}
		// Rescore rows are disk reads, so poll cancellation on a much
		// shorter stride than the in-memory scans.
		if ci&63 == 0 && q.cancel.canceled() {
			break
		}
		if len(dst)-base >= topK && float64(c.matched)/slotsF < dst[base].Similarity {
			// dst[base] is the root of the min-heap below: the K-th best
			// full score. No remaining candidate's upper bound reaches it.
			break
		}
		row, err := sh.full.row(int(c.idx), &sc.rsc)
		if err != nil {
			t.readErrors.Add(1)
			continue
		}
		rescored++
		if sh.names[c.idx] == q.name && slices.Equal(q.full, row) {
			continue
		}
		var sim float64
		if q.slots != 0 && q.shingles != 0 && sh.shingles[c.idx] != 0 {
			sim = float64(matchingSlots(q.full, row)) / slotsF
		}
		if sim < minSim {
			continue
		}
		r := Result{Query: q.name, Ref: sh.names[c.idx], Similarity: sim, Distance: 1 - sim}
		if len(dst)-base < topK {
			dst = append(dst, r)
			if len(dst)-base == topK {
				h := dst[base:]
				for i := topK/2 - 1; i >= 0; i-- {
					siftWorstDown(h, i)
				}
			}
		} else if resultBetter(r, dst[base]) {
			dst[base] = r
			siftWorstDown(dst[base:base+topK], 0)
		}
	}
	t.rescored.Add(uint64(rescored))
	return dst
}

// compactLocked rewrites the stripe without its tombstoned rows:
// fresh id map, names, shingles, packed arena, and band postings — and
// on tiered shards a fresh full-width store whose segments are written
// under new file names (the committed manifest still references the
// old ones; they are swept after the next manifest commit). Row indexes
// are reassigned, so structGen is bumped; in-flight queries that
// captured candidates under the old generation rescan instead. On any
// error the shard is left untouched. It returns the number of rows
// dropped. Callers hold sh.mu exclusively.
func (sh *shard) compactLocked(p LSHParams, slots, bits int) (int, error) {
	if sh.deadRows == 0 {
		return 0, nil
	}
	live := len(sh.names) - sh.deadRows
	ids := make(map[string]int32, live)
	names := make([]string, 0, live)
	shingles := make([]int32, 0, live)
	arena := newSigArena(slots, bits)
	bands := newBandIndex(p)
	var full *fullStore
	if sh.full != nil {
		full = newFullStore(slots, sh.full.shardID, sh.full.tier)
	}
	var rsc rowScratch
	sig := make([]uint64, 0, slots)
	for i := range sh.names {
		if sh.rowDead(int32(i)) {
			continue
		}
		if full != nil {
			row, err := sh.full.row(i, &rsc)
			if err != nil {
				full.close()
				return 0, err
			}
			sig = append(sig[:0], row...)
			if err := full.append(sig); err != nil {
				full.close()
				return 0, err
			}
		} else {
			sig = sh.arena.appendUnpacked(sig[:0], i)
		}
		idx := int32(arena.appendSig(sig))
		ids[sh.names[i]] = idx
		names = append(names, sh.names[i])
		shingles = append(shingles, sh.shingles[i])
		bands.add(idx, sig, sh.mask)
	}
	dropped := sh.deadRows
	if sh.full != nil {
		sh.full.close()
		sh.full = full
	}
	sh.ids, sh.names, sh.shingles = ids, names, shingles
	sh.arena, sh.bands = arena, bands
	sh.dead, sh.deadRows = nil, 0
	sh.structGen++
	return dropped, nil
}

// shardFor maps a record name onto one of n stripes with FNV-1a.
func shardFor(name string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

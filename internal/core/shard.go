package core

import "sync"

// DefaultShards is the number of lock-striped shards an index uses
// unless configured otherwise.
const DefaultShards = 16

// shard owns one stripe of the index: the sketches whose names hash to
// it, plus the LSH band postings for those sketches. Each shard has its
// own lock, so concurrent adds and candidate probes on different
// stripes never contend.
type shard struct {
	mu       sync.RWMutex
	sketches map[string]*Sketch
	bands    *bandIndex
}

func newShard(p LSHParams) *shard {
	return &shard{sketches: make(map[string]*Sketch), bands: newBandIndex(p)}
}

func newShards(n int, p LSHParams) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = newShard(p)
	}
	return shards
}

// add inserts s unless a sketch with the same name is already present;
// it reports whether the insert happened.
func (sh *shard) add(s *Sketch) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.sketches[s.Name]; exists {
		return false
	}
	sh.sketches[s.Name] = s
	sh.bands.add(s.Name, s.Signature)
	return true
}

// size returns the number of sketches in this stripe.
func (sh *shard) size() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.sketches)
}

// get returns the sketch named name, or nil.
func (sh *shard) get(name string) *Sketch {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.sketches[name]
}

// appendAll appends every sketch in this stripe to buf.
func (sh *shard) appendAll(buf []*Sketch) []*Sketch {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, s := range sh.sketches {
		buf = append(buf, s)
	}
	return buf
}

// appendAllExcept appends every sketch in this stripe whose name is not
// in skip.
func (sh *shard) appendAllExcept(skip map[string]struct{}, buf []*Sketch) []*Sketch {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for name, s := range sh.sketches {
		if _, ok := skip[name]; !ok {
			buf = append(buf, s)
		}
	}
	return buf
}

// appendCandidates appends the sketches in this shard sharing at least
// one LSH band bucket with sig, deduplicating through the caller-owned
// seen map so names hit by several bands are appended once.
func (sh *shard) appendCandidates(sig []uint64, seen map[string]struct{}, buf []*Sketch) []*Sketch {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	bi := sh.bands
	for band := 0; band < bi.params.Bands; band++ {
		for _, name := range bi.buckets[band][bi.params.bandKey(band, sig)] {
			if _, dup := seen[name]; dup {
				continue
			}
			seen[name] = struct{}{}
			buf = append(buf, sh.sketches[name])
		}
	}
	return buf
}

// shardFor maps a record name onto one of n stripes with FNV-1a.
func shardFor(name string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

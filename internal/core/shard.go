package core

import "sync"

// DefaultShards is the number of lock-striped shards an index uses
// unless configured otherwise.
const DefaultShards = 16

// shard owns one stripe of the index: the sketches whose names hash to
// it, plus the LSH band postings for those sketches. Each shard has its
// own lock, so concurrent adds and candidate probes on different
// stripes never contend.
type shard struct {
	mu       sync.RWMutex
	sketches map[string]*Sketch
	bands    *bandIndex
}

func newShard(p LSHParams) *shard {
	return &shard{sketches: make(map[string]*Sketch), bands: newBandIndex(p)}
}

func newShards(n int, p LSHParams) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = newShard(p)
	}
	return shards
}

// add inserts s unless a sketch with the same name is already present;
// it reports whether the insert happened.
func (sh *shard) add(s *Sketch) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.sketches[s.Name]; exists {
		return false
	}
	sh.sketches[s.Name] = s
	sh.bands.add(s.Name, s.Signature)
	return true
}

// size returns the number of sketches in this stripe.
func (sh *shard) size() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.sketches)
}

// get returns the sketch named name, or nil.
func (sh *shard) get(name string) *Sketch {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.sketches[name]
}

// candidates returns the sketches in this shard sharing at least one
// LSH band bucket with sig. Names hit by several bands are returned
// once.
func (sh *shard) candidates(sig []uint64) []*Sketch {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	seen := make(map[string]struct{})
	sh.bands.collect(sig, seen)
	if len(seen) == 0 {
		return nil
	}
	out := make([]*Sketch, 0, len(seen))
	for name := range seen {
		out = append(out, sh.sketches[name])
	}
	return out
}

// shardFor maps a record name onto one of n stripes with FNV-1a.
func shardFor(name string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

package core

import "testing"

// TestMergeTopK: the exported merge must agree with a full sort — the
// property the cluster coordinator's scatter-gather relies on — and
// must copy out of the caller's buffer.
func TestMergeTopK(t *testing.T) {
	mk := func(ref string, sim float64) Result {
		return Result{Query: "q", Ref: ref, Similarity: sim, Distance: 1 - sim}
	}
	in := []Result{
		mk("e", 0.2), mk("a", 0.9), mk("c", 0.5), mk("b", 0.9),
		mk("f", 0.1), mk("d", 0.5), mk("g", 0.7),
	}
	// Full-sort reference over a copy.
	want := make([]Result, len(in))
	copy(want, in)
	sortResults(want)

	for _, k := range []int{1, 3, len(in), len(in) + 5} {
		buf := make([]Result, len(in))
		copy(buf, in)
		got := MergeTopK(buf, k)
		n := k
		if n > len(in) {
			n = len(in)
		}
		if len(got) != n {
			t.Fatalf("MergeTopK(k=%d) returned %d results, want %d", k, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MergeTopK(k=%d)[%d] = %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}

	// The result must not alias the (possibly pooled) input buffer.
	buf := make([]Result, len(in))
	copy(buf, in)
	got := MergeTopK(buf, 3)
	buf[0] = mk("mutated", 1.0)
	if got[0].Ref == "mutated" {
		t.Fatal("MergeTopK result aliases the input buffer")
	}

	if MergeTopK(nil, 5) != nil {
		t.Fatal("MergeTopK(nil) != nil")
	}
	if MergeTopK(buf, 0) != nil || MergeTopK(buf, -1) != nil {
		t.Fatal("MergeTopK with topK <= 0 should return nil")
	}
}

package core

import (
	"math"
	"strings"
	"testing"
)

func TestNewLSHParams(t *testing.T) {
	cases := []struct {
		name        string
		bands, rows int
		sigSize     int
		wantErr     string
	}{
		{"default 128", 32, 4, 128, ""},
		{"coarse 128", 16, 8, 128, ""},
		{"single band", 1, 128, 128, ""},
		{"single row", 128, 1, 128, ""},
		{"tiny sig", 2, 1, 2, ""},
		{"undercover", 16, 4, 128, "does not cover"},
		{"overcover", 64, 4, 128, "does not cover"},
		{"zero bands", 0, 4, 128, "must be positive"},
		{"zero rows", 32, 0, 128, "must be positive"},
		{"negative bands", -32, -4, 128, "must be positive"},
		{"zero sig", 1, 1, 0, "does not cover"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewLSHParams(tc.bands, tc.rows, tc.sigSize)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("NewLSHParams(%d, %d, %d) err = %v, want containing %q",
						tc.bands, tc.rows, tc.sigSize, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("NewLSHParams(%d, %d, %d): %v", tc.bands, tc.rows, tc.sigSize, err)
			}
			if p.Bands != tc.bands || p.RowsPerBand != tc.rows {
				t.Fatalf("params = %+v, want bands=%d rows=%d", p, tc.bands, tc.rows)
			}
		})
	}
}

func TestDefaultLSHParams(t *testing.T) {
	cases := []struct {
		sigSize, wantBands, wantRows int
	}{
		{128, 32, 4}, // default signature size: 32 bands of 4
		{64, 16, 4},  // divisible by 4
		{9, 3, 3},    // falls back to 3 rows
		{10, 5, 2},   // falls back to 2 rows
		{7, 7, 1},    // prime: 1 row per band
		{1, 1, 1},    // degenerate
	}
	for _, tc := range cases {
		p := DefaultLSHParams(tc.sigSize)
		if p.Bands != tc.wantBands || p.RowsPerBand != tc.wantRows {
			t.Errorf("DefaultLSHParams(%d) = %+v, want bands=%d rows=%d",
				tc.sigSize, p, tc.wantBands, tc.wantRows)
		}
		if _, err := NewLSHParams(p.Bands, p.RowsPerBand, tc.sigSize); err != nil {
			t.Errorf("DefaultLSHParams(%d) = %+v does not validate: %v", tc.sigSize, p, err)
		}
	}
}

func TestLSHThreshold(t *testing.T) {
	// Threshold = (1/b)^(1/r); spot-check the default scheme and the
	// monotonic effect of banding: more bands (shorter rows) lower the
	// detection threshold.
	def := DefaultLSHParams(128)
	if got, want := def.Threshold(), math.Pow(1.0/32.0, 0.25); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Threshold() = %v, want %v", got, want)
	}
	coarse := LSHParams{Bands: 16, RowsPerBand: 8}
	if def.Threshold() >= coarse.Threshold() {
		t.Fatalf("32x4 threshold %v should be below 16x8 threshold %v",
			def.Threshold(), coarse.Threshold())
	}
}

func TestBandKeyDependsOnBandAndRows(t *testing.T) {
	p := LSHParams{Bands: 4, RowsPerBand: 2}
	full := ^uint64(0)
	sig := []uint64{1, 2, 1, 2, 1, 2, 9, 2}
	// Bands 0, 1 and 2 hold identical rows; the band index must still
	// separate their buckets.
	if p.bandKey(0, sig, full) != p.bandKey(0, sig, full) {
		t.Fatal("bandKey is not deterministic")
	}
	if p.bandKey(0, sig, full) == p.bandKey(1, sig, full) {
		t.Fatal("identical rows in different bands must hash to different keys")
	}
	// Band 3 differs from band 0 in one row and must (with overwhelming
	// probability) get a different key.
	other := []uint64{1, 2, 1, 2, 1, 2, 1, 2}
	if p.bandKey(3, sig, full) == p.bandKey(3, other, full) {
		t.Fatal("different rows hashed to the same band key")
	}
	// Masked keys see only the low lanes: values differing above the
	// mask land in the same bucket (that is what lets full-width query
	// signatures probe a b-bit index), values differing below do not.
	m8 := laneMask(8)
	high := []uint64{1 | 5<<8, 2, 1, 2, 1, 2, 9, 2} // differs from sig only above bit 8
	if p.bandKey(0, sig, m8) != p.bandKey(0, high, m8) {
		t.Fatal("8-bit mask: high-bit difference changed the band key")
	}
	low := []uint64{3, 2, 1, 2, 1, 2, 9, 2}
	if p.bandKey(0, sig, m8) == p.bandKey(0, low, m8) {
		t.Fatal("8-bit mask: low-bit difference did not change the band key")
	}
}

// probeNames runs a candidate probe for sig against sh and returns the
// candidate record names.
func probeNames(sh *shard, sig []uint64) map[string]bool {
	q := &packedQuery{name: "probe", shingles: 1, slots: len(sig),
		packed: packSignatureAppend(nil, sig, sh.arena.bits)}
	for band := 0; band < sh.bands.params.Bands; band++ {
		q.bandKeys = append(q.bandKeys, sh.bands.params.bandKey(band, sig, sh.mask))
	}
	var sc shardScratch
	sh.probeCandidates(q, &sc)
	got := map[string]bool{}
	for _, idx := range sc.cands {
		got[sh.names[idx]] = true
	}
	return got
}

func TestShardProbeCandidates(t *testing.T) {
	p := LSHParams{Bands: 2, RowsPerBand: 2}
	sh := newShard(p, 4, 64)
	a := []uint64{1, 2, 3, 4}
	b := []uint64{1, 2, 9, 9} // shares band 0 with a
	c := []uint64{7, 7, 7, 7} // shares nothing
	for name, sig := range map[string][]uint64{"a": a, "b": b, "c": c} {
		if ok, err := sh.add(&Sketch{Name: name, K: 2, Shingles: 1, Signature: sig}); !ok || err != nil {
			t.Fatalf("add %q failed: %v", name, err)
		}
	}

	got := probeNames(sh, a)
	if !got["a"] {
		t.Error("a must be a candidate of its own signature")
	}
	if !got["b"] {
		t.Error("b shares band 0 with a and must be a candidate")
	}
	if got["c"] {
		t.Error("c shares no band with a and must not be a candidate")
	}
	// An 8-bit shard must reach the same candidate set from the same
	// full-width probe signature: band keys are masked on both sides.
	sh8 := newShard(p, 4, 8)
	for name, sig := range map[string][]uint64{"a": a, "b": b, "c": c} {
		if ok, err := sh8.add(&Sketch{Name: name, K: 2, Shingles: 1, Signature: sig}); !ok || err != nil {
			t.Fatalf("add %q to 8-bit shard failed: %v", name, err)
		}
	}
	got8 := probeNames(sh8, a)
	if !got8["a"] || !got8["b"] || got8["c"] {
		t.Errorf("8-bit shard candidates = %v, want a and b only", got8)
	}
}

// TestLSHMatchesExactOnSyntheticCorpus plants near-duplicates well
// above the banding threshold in a sea of random records and checks
// that LSH mode returns the identical top-K result list as exact mode.
func TestLSHMatchesExactOnSyntheticCorpus(t *testing.T) {
	ix, q := plantedCorpus(t, 1000, 30, 7)
	pool := NewPool(0)
	exact, err := SearchTopK(ix, q, 10, 0, pool)
	if err != nil {
		t.Fatal(err)
	}
	lsh, err := SearchTopKLSH(ix, q, 10, 0, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 10 || len(lsh) != 10 {
		t.Fatalf("result lengths: exact=%d lsh=%d, want 10", len(exact), len(lsh))
	}
	for i := range exact {
		if exact[i] != lsh[i] {
			t.Fatalf("result %d differs: exact=%+v lsh=%+v", i, exact[i], lsh[i])
		}
	}
	// The planted neighbors sit far above the threshold; the top hit
	// must be one of them, not a random record.
	if !strings.HasPrefix(lsh[0].Ref, "near-") {
		t.Fatalf("top hit %q is not a planted near-duplicate", lsh[0].Ref)
	}
}

// TestLSHFallbackOnSparseIndex: when candidates cannot fill topK, LSH
// mode must fall back to the exact scan and return identical results.
func TestLSHFallbackOnSparseIndex(t *testing.T) {
	s := mustSketcher(t, DefaultK, DefaultSignatureSize)
	ix := NewIndex("sparse", DefaultK, DefaultSignatureSize)
	for i, text := range []string{
		"completely unrelated payload number one with its own words",
		"a second record that shares nothing with the query either!!",
		"third filler record, also dissimilar to everything nearby..",
	} {
		if _, err := ix.Add(s.Sketch(Record{Name: string(rune('a' + i)), Data: []byte(text)})); err != nil {
			t.Fatal(err)
		}
	}
	q := s.Sketch(Record{Name: "q", Data: []byte("query text matching none of the indexed records at all")})
	exact, err := SearchTopK(ix, q, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsh, err := SearchTopKLSH(ix, q, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != len(lsh) {
		t.Fatalf("fallback mismatch: exact=%d results, lsh=%d", len(exact), len(lsh))
	}
	for i := range exact {
		if exact[i] != lsh[i] {
			t.Fatalf("result %d differs: exact=%+v lsh=%+v", i, exact[i], lsh[i])
		}
	}
}

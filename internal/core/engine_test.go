package core

import (
	"runtime"
	"testing"
)

func TestNewEngineDefaults(t *testing.T) {
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Sketcher().K() != DefaultK || e.Sketcher().SignatureSize() != DefaultSignatureSize {
		t.Fatalf("sketcher params = (%d, %d), want defaults (%d, %d)",
			e.Sketcher().K(), e.Sketcher().SignatureSize(), DefaultK, DefaultSignatureSize)
	}
	meta := e.Index().Metadata()
	if meta.Name != "default" || meta.K != DefaultK || meta.SignatureSize != DefaultSignatureSize {
		t.Fatalf("index metadata = %+v", meta)
	}
	if e.Pool().Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("pool workers = %d, want GOMAXPROCS", e.Pool().Workers())
	}
	if _, err := NewEngine(Options{K: -1}); err == nil {
		t.Fatal("invalid options: want error")
	}
}

func TestNewEngineWithIndex(t *testing.T) {
	ix := NewIndex("wrapped", 4, 32)
	e, err := NewEngineWithIndex(ix, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Index() != ix {
		t.Fatal("engine does not wrap the given index")
	}
	if e.Sketcher().K() != 4 || e.Sketcher().SignatureSize() != 32 {
		t.Fatalf("sketcher params = (%d, %d), want index params (4, 32)",
			e.Sketcher().K(), e.Sketcher().SignatureSize())
	}
	if e.Pool().Workers() != 2 {
		t.Fatalf("pool workers = %d, want 2", e.Pool().Workers())
	}
	if _, err := NewEngineWithIndex(NewIndex("bad", -1, 32), 0); err == nil {
		t.Fatal("invalid index params: want error")
	}
}

func TestEngineAddAndSearch(t *testing.T) {
	e, err := NewEngine(Options{K: 4, SignatureSize: 64, Threads: 2, IndexName: "facade"})
	if err != nil {
		t.Fatal(err)
	}
	refs := []Record{
		{Name: "close", Data: []byte("shared payload text that mostly overlaps with the query data")},
		{Name: "far", Data: []byte("zzz 999 ### totally different bytes with nothing in common !!!")},
	}
	for _, rec := range refs {
		added, err := e.Add(rec)
		if err != nil || !added {
			t.Fatalf("Add(%q) = %v, %v; want true, nil", rec.Name, added, err)
		}
	}
	// Duplicate add through the facade is skipped.
	added, err := e.Add(refs[0])
	if err != nil || added {
		t.Fatalf("duplicate Add = %v, %v; want false, nil", added, err)
	}
	results, err := e.Search(Record{
		Name: "q",
		Data: []byte("shared payload text that mostly overlaps with the query info"),
	}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Ref != "close" || results[0].Similarity <= results[1].Similarity {
		t.Fatalf("results = %v, want close ranked first", results)
	}
}

package core

import (
	"runtime"
	"testing"
)

func TestNewEngineDefaults(t *testing.T) {
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Sketcher().K() != DefaultK || e.Sketcher().SignatureSize() != DefaultSignatureSize {
		t.Fatalf("sketcher params = (%d, %d), want defaults (%d, %d)",
			e.Sketcher().K(), e.Sketcher().SignatureSize(), DefaultK, DefaultSignatureSize)
	}
	meta := e.Index().Metadata()
	if meta.Name != "default" || meta.K != DefaultK || meta.SignatureSize != DefaultSignatureSize {
		t.Fatalf("index metadata = %+v", meta)
	}
	if e.Pool().Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("pool workers = %d, want GOMAXPROCS", e.Pool().Workers())
	}
	if _, err := NewEngine(Options{K: -1}); err == nil {
		t.Fatal("invalid options: want error")
	}
}

func TestNewEngineWithIndex(t *testing.T) {
	ix := NewIndex("wrapped", 4, 32)
	e, err := NewEngineWithIndex(ix, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Index() != ix {
		t.Fatal("engine does not wrap the given index")
	}
	if e.Sketcher().K() != 4 || e.Sketcher().SignatureSize() != 32 {
		t.Fatalf("sketcher params = (%d, %d), want index params (4, 32)",
			e.Sketcher().K(), e.Sketcher().SignatureSize())
	}
	if e.Pool().Workers() != 2 {
		t.Fatalf("pool workers = %d, want 2", e.Pool().Workers())
	}
	if _, err := NewEngineWithIndex(NewIndex("bad", -1, 32), 0); err == nil {
		t.Fatal("invalid index params: want error")
	}
}

func TestEngineAddAndSearch(t *testing.T) {
	e, err := NewEngine(Options{K: 4, SignatureSize: 64, Threads: 2, IndexName: "facade"})
	if err != nil {
		t.Fatal(err)
	}
	refs := []Record{
		{Name: "close", Data: []byte("shared payload text that mostly overlaps with the query data")},
		{Name: "far", Data: []byte("zzz 999 ### totally different bytes with nothing in common !!!")},
	}
	for _, rec := range refs {
		added, err := e.Add(rec)
		if err != nil || !added {
			t.Fatalf("Add(%q) = %v, %v; want true, nil", rec.Name, added, err)
		}
	}
	// Duplicate add through the facade is skipped.
	added, err := e.Add(refs[0])
	if err != nil || added {
		t.Fatalf("duplicate Add = %v, %v; want false, nil", added, err)
	}
	results, err := e.Search(Record{
		Name: "q",
		Data: []byte("shared payload text that mostly overlaps with the query info"),
	}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Ref != "close" || results[0].Similarity <= results[1].Similarity {
		t.Fatalf("results = %v, want close ranked first", results)
	}
}

func TestEngineAddBatchResults(t *testing.T) {
	e, err := NewEngine(Options{K: 4, SignatureSize: 64, IndexName: "batched"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(Record{Name: "pre", Data: []byte("already indexed payload")}); err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Name: "a", Data: []byte("first fresh record payload in this batch")},
		{Name: "pre", Data: []byte("collides with an indexed name")},
		{Name: "a", Data: []byte("repeats a name earlier in the batch")},
		{Name: "b", Data: []byte("second fresh record payload in this batch")},
	}
	oks, err := e.AddBatchResults(recs)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, false, true}
	if len(oks) != len(want) {
		t.Fatalf("got %d flags, want %d", len(oks), len(want))
	}
	for i := range want {
		if oks[i] != want[i] {
			t.Fatalf("oks = %v, want %v", oks, want)
		}
	}
	if e.Index().Len() != 3 {
		t.Fatalf("index has %d records, want 3", e.Index().Len())
	}
	// AddBatch sees the same outcomes through its count.
	if n, err := e.AddBatch(recs); err != nil || n != 0 {
		t.Fatalf("re-AddBatch = %d, %v; want 0, nil", n, err)
	}
	if oks, err := e.AddBatchResults(nil); err != nil || oks != nil {
		t.Fatalf("empty batch = %v, %v; want nil, nil", oks, err)
	}
}

func TestEngineStatsAndGeneration(t *testing.T) {
	e, err := NewEngine(Options{K: 4, SignatureSize: 32, IndexName: "stats", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if gen := e.Index().Generation(); gen != 0 {
		t.Fatalf("fresh generation = %d, want 0", gen)
	}
	recs := []Record{
		{Name: "one", Data: []byte("payload number one for the stats test")},
		{Name: "two", Data: []byte("payload number two for the stats test")},
		{Name: "three", Data: []byte("payload number three for the stats test")},
	}
	if _, err := e.AddBatch(recs); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.IndexName != "stats" || st.Records != 3 || st.K != 4 || st.SignatureSize != 32 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Shards != 4 || len(st.ShardOccupancy) != 4 {
		t.Fatalf("shard stats = %+v", st)
	}
	occ := 0
	for _, n := range st.ShardOccupancy {
		occ += n
	}
	if occ != 3 {
		t.Fatalf("occupancy sums to %d, want 3", occ)
	}
	if st.Generation != 3 {
		t.Fatalf("generation = %d, want 3 (one bump per add)", st.Generation)
	}
	if st.Mode != ModeLSH || st.Bands == 0 || st.LSHThreshold <= 0 {
		t.Fatalf("lsh stats = %+v", st)
	}
	// Duplicate adds do not advance the generation: snapshotters can
	// trust "unchanged generation" to mean "nothing new to save".
	if _, err := e.Add(recs[0]); err != nil {
		t.Fatal(err)
	}
	if gen := e.Index().Generation(); gen != 3 {
		t.Fatalf("generation after duplicate add = %d, want 3", gen)
	}
}

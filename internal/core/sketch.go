package core

import (
	"fmt"
	"math"
)

// Default sketching parameters. K follows common shingle lengths for
// text/sequence data; 128 slots gives a Jaccard standard error of
// about 1/sqrt(128) ~= 0.09.
const (
	DefaultK             = 8
	DefaultSignatureSize = 128
)

// hashBase is the multiplier for the polynomial rolling hash over
// shingles (the 64-bit FNV prime).
const hashBase uint64 = 1099511628211

// Record is one named input to the sketching stage.
type Record struct {
	Name string
	Data []byte
}

// Sketch is a compact fixed-size minhash signature of one record.
// Two sketches are comparable only if they share K and signature size.
type Sketch struct {
	Name      string   `json:"name"`
	K         int      `json:"k"`
	Shingles  int      `json:"shingles"`
	Signature []uint64 `json:"signature"`
}

// Sketcher converts records into minhash signatures. It is stateless
// and safe for concurrent use.
type Sketcher struct {
	k       int
	sigSize int
}

// NewSketcher returns a sketcher producing sigSize-slot signatures over
// k-byte shingles.
func NewSketcher(k, sigSize int) (*Sketcher, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sketcher: k must be positive, got %d", k)
	}
	if sigSize <= 0 {
		return nil, fmt.Errorf("sketcher: signature size must be positive, got %d", sigSize)
	}
	return &Sketcher{k: k, sigSize: sigSize}, nil
}

// K returns the shingle length.
func (s *Sketcher) K() int { return s.k }

// SignatureSize returns the number of minhash slots.
func (s *Sketcher) SignatureSize() int { return s.sigSize }

// Sketch computes the minhash signature of rec. Records shorter than K
// produce zero shingles and an empty (all-max) signature; such sketches
// compare as dissimilar to everything, including each other.
func (s *Sketcher) Sketch(rec Record) *Sketch {
	sig := make([]uint64, s.sigSize)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	shingles := 0
	eachShingleHash(rec.Data, s.k, func(h uint64) {
		shingles++
		// Kirsch-Mitzenmacher double hashing: slot i sees h1 + i*h2,
		// standing in for sigSize independent permutations.
		h1 := mix64(h)
		h2 := mix64(h^0x9e3779b97f4a7c15) | 1
		v := h1
		for i := range sig {
			if v < sig[i] {
				sig[i] = v
			}
			v += h2
		}
	})
	return &Sketch{Name: rec.Name, K: s.k, Shingles: shingles, Signature: sig}
}

// eachShingleHash calls fn with a 64-bit hash of every k-byte window of
// data, using an O(n) polynomial rolling hash.
func eachShingleHash(data []byte, k int, fn func(uint64)) {
	if k <= 0 || len(data) < k {
		return
	}
	// pow = hashBase^(k-1), the weight of the outgoing byte.
	var pow uint64 = 1
	for i := 0; i < k-1; i++ {
		pow *= hashBase
	}
	var h uint64
	for i := 0; i < k; i++ {
		h = h*hashBase + uint64(data[i]) + 1
	}
	fn(h)
	for i := k; i < len(data); i++ {
		h = (h-(uint64(data[i-k])+1)*pow)*hashBase + uint64(data[i]) + 1
		fn(h)
	}
}

// mix64 is the SplitMix64 finalizer; it whitens the weakly-mixed
// rolling hash before minhash slot derivation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package core

import (
	"fmt"
	"math"
	"math/bits"
)

// Default sketching parameters. K follows common shingle lengths for
// text/sequence data; 128 slots gives a Jaccard standard error of
// about 1/sqrt(128) ~= 0.09.
const (
	DefaultK             = 8
	DefaultSignatureSize = 128
)

// Scheme selects how shingle hashes are folded into a signature.
type Scheme string

const (
	// SchemeOPH is one-permutation hashing with rotation densification:
	// each shingle is hashed once and routed to one slot, so sketching
	// costs O(n + sigSize) instead of O(n * sigSize). The default.
	SchemeOPH Scheme = "oph"
	// SchemeKMH is the legacy Kirsch-Mitzenmacher k-minhash: every
	// shingle updates every slot. An order of magnitude slower, kept for
	// compatibility with indexes built before format v3.
	SchemeKMH Scheme = "kmh"
	// DefaultScheme is the scheme used when none is specified.
	DefaultScheme = SchemeOPH
)

// ParseScheme maps a CLI/config string onto a Scheme. The empty string
// selects DefaultScheme.
func ParseScheme(s string) (Scheme, error) {
	switch Scheme(s) {
	case "":
		return DefaultScheme, nil
	case SchemeOPH, SchemeKMH:
		return Scheme(s), nil
	default:
		return "", fmt.Errorf("sketch: unknown scheme %q (want %q or %q)", s, SchemeOPH, SchemeKMH)
	}
}

// normScheme resolves the zero value to SchemeKMH: sketches and index
// metadata written before schemes existed (formats v1/v2, or literals
// in older code) carry no scheme and were always k-minhash.
func normScheme(s Scheme) Scheme {
	if s == "" {
		return SchemeKMH
	}
	return s
}

// hashBase is the multiplier for the polynomial rolling hash over
// shingles (the 64-bit FNV prime).
const hashBase uint64 = 1099511628211

// emptySlot marks an OPH slot no shingle hashed into. A genuine hash
// value can collide with it only with probability 2^-64 per shingle;
// such a slot is densified like an empty one, which keeps sketching
// deterministic and merely costs one slot of resolution.
const emptySlot uint64 = math.MaxUint64

// densifyStep offsets borrowed slot values by the borrow distance
// during densification, so different gap patterns stay distinguishable
// (Shrivastava & Li, "Improved Densification of One Permutation
// Hashing").
const densifyStep uint64 = 0x9e3779b97f4a7c15

// Record is one named input to the sketching stage.
type Record struct {
	Name string
	Data []byte
}

// Sketch is a compact fixed-size minhash signature of one record.
// Two sketches are comparable only if they share the scheme, K,
// signature size, and slot width. Scheme and Bits are in-memory state:
// index files record them once in their metadata, and loaders stamp
// them back onto every sketch (empty/zero mean legacy KMH and
// full-width slots). Bits below 64 marks a sketch reconstructed from a
// b-bit packed index, whose slot values are truncated lanes — mixing
// those with full-width sketches would silently score near-zero, so
// comparisons reject the mismatch instead (see compatible).
type Sketch struct {
	Name      string   `json:"name"`
	K         int      `json:"k"`
	Shingles  int      `json:"shingles"`
	Scheme    Scheme   `json:"-"`
	Bits      int      `json:"-"`
	Signature []uint64 `json:"signature"`
}

// Sketcher converts records into minhash signatures. It is stateless
// and safe for concurrent use.
type Sketcher struct {
	k       int
	sigSize int
	scheme  Scheme
}

// NewSketcher returns a sketcher producing sigSize-slot signatures over
// k-byte shingles using the default scheme.
func NewSketcher(k, sigSize int) (*Sketcher, error) {
	return NewSketcherScheme(k, sigSize, DefaultScheme)
}

// NewSketcherScheme is NewSketcher with an explicit sketching scheme.
// The empty scheme means legacy KMH, matching pre-v3 index metadata.
func NewSketcherScheme(k, sigSize int, scheme Scheme) (*Sketcher, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sketcher: k must be positive, got %d", k)
	}
	if sigSize <= 0 {
		return nil, fmt.Errorf("sketcher: signature size must be positive, got %d", sigSize)
	}
	scheme = normScheme(scheme)
	if scheme != SchemeOPH && scheme != SchemeKMH {
		return nil, fmt.Errorf("sketcher: unknown scheme %q", scheme)
	}
	return &Sketcher{k: k, sigSize: sigSize, scheme: scheme}, nil
}

// K returns the shingle length.
func (s *Sketcher) K() int { return s.k }

// SignatureSize returns the number of minhash slots.
func (s *Sketcher) SignatureSize() int { return s.sigSize }

// Scheme returns the sketching scheme.
func (s *Sketcher) Scheme() Scheme { return s.scheme }

// Sketch computes the minhash signature of rec. Records shorter than K
// produce zero shingles and an empty (all-max) signature; such sketches
// compare as dissimilar to everything, including each other.
func (s *Sketcher) Sketch(rec Record) *Sketch {
	sig := make([]uint64, s.sigSize)
	shingles := s.SketchInto(sig, rec)
	return &Sketch{Name: rec.Name, K: s.k, Shingles: shingles, Scheme: s.scheme, Signature: sig}
}

// SketchInto is the emit-into-buffer form of Sketch: it writes rec's
// signature into sig — whose length must be SignatureSize — and returns
// the shingle count, allocating nothing. It is the building block of
// zero-alloc pipelines that sketch straight into pooled buffers or a
// packed arena row.
func (s *Sketcher) SketchInto(sig []uint64, rec Record) int {
	if len(sig) != s.sigSize {
		panic(fmt.Sprintf("sketch: SketchInto buffer has %d slots, want %d", len(sig), s.sigSize))
	}
	if s.scheme == SchemeKMH {
		return s.sketchKMHInto(sig, rec.Data)
	}
	return s.sketchOPHInto(sig, rec.Data)
}

// sketchOPHInto hashes each shingle once and routes it to slot
// floor(h * sigSize / 2^64) — the high bits of h, equal to
// h >> (64 - log2(sigSize)) when sigSize is a power of two — keeping
// the per-slot minimum. Empty slots are then densified by rotation so
// sparse records still compare correctly. The rolling hash is inlined
// rather than shared through eachShingleHash because the per-byte
// closure call costs ~25% of the whole pipeline at these speeds.
func (s *Sketcher) sketchOPHInto(sig []uint64, data []byte) int {
	for i := range sig {
		sig[i] = emptySlot
	}
	k := s.k
	shingles := 0
	if len(data) >= k {
		shingles = len(data) - k + 1
		m := uint64(s.sigSize)
		// pow = hashBase^(k-1), the weight of the outgoing byte.
		var pow uint64 = 1
		for i := 0; i < k-1; i++ {
			pow *= hashBase
		}
		var h uint64
		for i := 0; i < k; i++ {
			h = h*hashBase + uint64(data[i]) + 1
		}
		v := mix64(h)
		slot, _ := bits.Mul64(v, m)
		if v < sig[slot] {
			sig[slot] = v
		}
		for i := k; i < len(data); i++ {
			h = (h-(uint64(data[i-k])+1)*pow)*hashBase + uint64(data[i]) + 1
			v := mix64(h)
			slot, _ := bits.Mul64(v, m)
			if v < sig[slot] {
				sig[slot] = v
			}
		}
		densify(sig)
	}
	return shingles
}

// densify fills every empty OPH slot by rotation: an empty slot borrows
// the value of the nearest filled slot to its right (circularly),
// offset by densifyStep per step of distance. Identical shingle sets
// therefore still produce identical signatures, and partially
// overlapping sets keep matching on borrowed slots only when both the
// donor value and the gap pattern agree. No-op when every slot is
// filled; leaves an all-empty signature untouched (the caller treats
// zero-shingle sketches as dissimilar to everything).
func densify(sig []uint64) {
	first := -1
	for i, v := range sig {
		if v != emptySlot {
			first = i
			break
		}
	}
	if first < 0 {
		return
	}
	m := len(sig)
	// Scan right-to-left tracking the nearest originally-filled slot at
	// or after each position; slots past the last filled one wrap to
	// `first` in the next turn of the circle.
	src := first + m
	for i := m - 1; i >= 0; i-- {
		if sig[i] != emptySlot {
			src = i
			continue
		}
		d := uint64(src - i)
		sig[i] = sig[src%m] + d*densifyStep
	}
}

// sketchKMHInto is the legacy Kirsch-Mitzenmacher path: every shingle
// updates every slot, standing in for sigSize independent permutations.
func (s *Sketcher) sketchKMHInto(sig []uint64, data []byte) int {
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	shingles := 0
	eachShingleHash(data, s.k, func(h uint64) {
		shingles++
		// Kirsch-Mitzenmacher double hashing: slot i sees h1 + i*h2.
		h1 := mix64(h)
		h2 := mix64(h^0x9e3779b97f4a7c15) | 1
		v := h1
		for i := range sig {
			if v < sig[i] {
				sig[i] = v
			}
			v += h2
		}
	})
	return shingles
}

// eachShingleHash calls fn with a 64-bit hash of every k-byte window of
// data, using an O(n) polynomial rolling hash.
func eachShingleHash(data []byte, k int, fn func(uint64)) {
	if k <= 0 || len(data) < k {
		return
	}
	// pow = hashBase^(k-1), the weight of the outgoing byte.
	var pow uint64 = 1
	for i := 0; i < k-1; i++ {
		pow *= hashBase
	}
	var h uint64
	for i := 0; i < k; i++ {
		h = h*hashBase + uint64(data[i]) + 1
	}
	fn(h)
	for i := k; i < len(data); i++ {
		h = (h-(uint64(data[i-k])+1)*pow)*hashBase + uint64(data[i]) + 1
		fn(h)
	}
}

// mix64 is the SplitMix64 finalizer; it whitens the weakly-mixed
// rolling hash before minhash slot derivation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"sketchengine/internal/fault"
)

// DefaultSegmentRows is how many records a shard's mutable head holds
// before it is sealed into an immutable on-disk segment. 4096 rows of
// 128 full-width slots is a 4 MiB segment — big enough that segment
// count stays low, small enough that a snapshot's incremental cost
// (seal head + rewrite manifest) is bounded.
const DefaultSegmentRows = 4096

// tierState is the index-wide half of tiered storage: where segments
// live, how big they grow, the per-query rescore budget, and the
// counters behind TierStats. Counters are atomics because shard scans
// update them concurrently without holding ix.mu.
type tierState struct {
	dataDir     string
	segmentRows int
	budget      atomic.Int64 // max full-width rescores per shard per query; 0 = unbounded

	scanned    atomic.Uint64 // rows prefilter-scored
	survived   atomic.Uint64 // rows past the prefilter minSim cut
	rescored   atomic.Uint64 // rows actually read full-width
	readErrors atomic.Uint64 // full-width reads that failed (row skipped)

	// Write-ahead-log state: the index-wide mutation sequence the
	// per-shard logs share, and the counters behind WALStats.
	walSeq        atomic.Uint64 // last sequence number handed out
	walAppends    atomic.Uint64 // frames appended since open
	walFsyncs     atomic.Uint64 // fsyncs performed by sync
	walFsyncNanos atomic.Uint64 // total nanoseconds spent in fsync
	walReplayed   atomic.Uint64 // frames replayed by the last open
	walTornBytes  atomic.Uint64 // torn-tail bytes truncated by the last open
}

func (t *tierState) segmentsDir() string { return filepath.Join(t.dataDir, "segments") }

// TierStats is the observable state of tiered storage, surfaced through
// Stats and /stats. ResidentBytes is what tiered search keeps on the
// heap (packed prefilter + unsealed heads); MappedBytes is the
// full-width payload served from the page cache via mmap (0 when every
// segment is on the pread fallback). SurvivalRate is
// PrefilterSurvived/PrefilterScanned over the process lifetime — the
// fraction of rows whose packed score cleared the query's minSim and
// went on to candidate ranking.
type TierStats struct {
	PrefilterBits     int     `json:"prefilter_bits"`
	Budget            int     `json:"budget"`
	SegmentRows       int     `json:"segment_rows"`
	Segments          int     `json:"segments"`
	ResidentBytes     int64   `json:"resident_bytes"`
	MappedBytes       int64   `json:"mapped_bytes"`
	HeadBytes         int64   `json:"head_bytes"`
	PrefilterScanned  uint64  `json:"prefilter_scanned"`
	PrefilterSurvived uint64  `json:"prefilter_survived"`
	Rescored          uint64  `json:"rescored"`
	ReadErrors        uint64  `json:"read_errors"`
	SurvivalRate      float64 `json:"survival_rate"`
}

// fullStore is one shard's full-width signature tier: sealed immutable
// segments on disk plus a small mutable head holding rows not yet
// sealed. Shard-local row i lives in the head when i >= headBase and in
// exactly one segment otherwise (segments tile [0, headBase) in base
// order). Like sigArena it is not internally locked; the owning shard
// serializes access.
type fullStore struct {
	slots    int
	shardID  int
	tier     *tierState
	segs     []*segment // sorted by base, contiguous
	head     []uint64   // headRows() * slots full-width words
	headBase int        // shard-local row index of head[0]
}

func newFullStore(slots, shardID int, tier *tierState) *fullStore {
	return &fullStore{slots: slots, shardID: shardID, tier: tier}
}

func (fs *fullStore) headRows() int {
	if fs.slots == 0 {
		return 0
	}
	return len(fs.head) / fs.slots
}

func (fs *fullStore) rows() int { return fs.headBase + fs.headRows() }

func (fs *fullStore) segPath(base int) string {
	return filepath.Join(fs.tier.segmentsDir(), fmt.Sprintf("shard-%04d-%010d.seg", fs.shardID, base))
}

// freshSegPath returns a segment path for base that no existing file
// occupies. After a compaction the canonical name may still be taken by
// an old-generation segment the committed manifest references (it is
// only swept after the next manifest commit), so sealing probes
// generation-suffixed names until one is free.
func (fs *fullStore) freshSegPath(base int) (string, error) {
	path := fs.segPath(base)
	for gen := 1; ; gen++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", fmt.Errorf("tier: %w", err)
		}
		if gen > 9999 {
			return "", fmt.Errorf("tier: no free segment name for shard %d base %d", fs.shardID, base)
		}
		path = filepath.Join(fs.tier.segmentsDir(), fmt.Sprintf("shard-%04d-%010d-c%04d.seg", fs.shardID, base, gen))
	}
}

// append adds one full-width signature as the store's next row, sealing
// the head into a segment when it reaches segmentRows. A failed seal
// (disk full, permissions) rolls the row back out of the head so the
// caller can fail the whole add without registering the record.
func (fs *fullStore) append(sig []uint64) error {
	fs.head = append(fs.head, sig...)
	if fs.headRows() >= fs.tier.segmentRows {
		if err := fs.sealHead(); err != nil {
			fs.head = fs.head[:len(fs.head)-fs.slots]
			return err
		}
	}
	return nil
}

// sealHead writes the head rows (however many there are — SaveDir seals
// partial heads so snapshots only ever append) into a new segment file,
// reopens it through the normal verified path, and starts a fresh head.
// Sealing nothing is a no-op.
func (fs *fullStore) sealHead() error {
	rows := fs.headRows()
	if rows == 0 {
		return nil
	}
	if err := fault.Check("segment.seal"); err != nil {
		return fmt.Errorf("tier: seal shard %d: %w", fs.shardID, err)
	}
	path, err := fs.freshSegPath(fs.headBase)
	if err != nil {
		return err
	}
	crc, err := writeSegment(path, fs.headBase, fs.slots, rows, fs.head)
	if err != nil {
		return err
	}
	sg, err := openSegment(path, fs.headBase, fs.slots, rows, crc)
	if err != nil {
		return err
	}
	fs.segs = append(fs.segs, sg)
	fs.headBase += rows
	fs.head = fs.head[:0]
	return nil
}

// row returns the full-width words of shard-local row i: a head slice,
// a slice of the mmap'd segment payload, or (pread fallback) sc's
// decode buffer. Head and mmap slices alias live storage — callers hold
// the shard lock across use, like sigArena.row.
func (fs *fullStore) row(i int, sc *rowScratch) ([]uint64, error) {
	if i >= fs.headBase {
		off := (i - fs.headBase) * fs.slots
		return fs.head[off : off+fs.slots : off+fs.slots], nil
	}
	// Binary search for the segment covering i (segments tile the range
	// in base order).
	lo, hi := 0, len(fs.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if fs.segs[mid].base+fs.segs[mid].rows <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(fs.segs) || fs.segs[lo].base > i {
		return nil, fmt.Errorf("tier: shard %d row %d is in no segment", fs.shardID, i)
	}
	sg := fs.segs[lo]
	return sg.rowWords(i-sg.base, sc)
}

func (fs *fullStore) headBytes() int64 { return int64(len(fs.head)) * 8 }

func (fs *fullStore) mappedBytes() int64 {
	var n int64
	for _, sg := range fs.segs {
		n += sg.mappedBytes()
	}
	return n
}

func (fs *fullStore) close() error {
	var first error
	for _, sg := range fs.segs {
		if err := sg.close(); err != nil && first == nil {
			first = err
		}
	}
	fs.segs = nil
	return first
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"strings"
	"testing"
)

// naiveZeroLanes is the per-lane reference the SWAR counters are
// checked against.
func naiveZeroLanes(x uint64, bits int) int {
	mask := laneMask(bits)
	n := 0
	for i := 0; i < 64; i += bits {
		if (x>>uint(i))&mask == 0 {
			n++
		}
	}
	return n
}

func TestZeroLanesMatchesNaive(t *testing.T) {
	cases := []uint64{0, ^uint64(0), 1, 1 << 63, 0x0001000100010001, 0x0100010001000100}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		cases = append(cases, rng.Uint64())
		// Sparse values exercise the zero-lane-rich corner the fully
		// random draws almost never hit.
		cases = append(cases, rng.Uint64()&rng.Uint64()&rng.Uint64()&rng.Uint64())
	}
	for _, x := range cases {
		if got, want := zeroLanes16(x), naiveZeroLanes(x, 16); got != want {
			t.Fatalf("zeroLanes16(%#x) = %d, want %d", x, got, want)
		}
		if got, want := zeroLanes8(x), naiveZeroLanes(x, 8); got != want {
			t.Fatalf("zeroLanes8(%#x) = %d, want %d", x, got, want)
		}
	}
}

// FuzzZeroLanes cross-checks the branch-free SWAR lane counters against
// the naive per-slot loop on arbitrary words.
func FuzzZeroLanes(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(0x0001000100010001))
	f.Add(uint64(0x8000000000000000))
	f.Add(uint64(0x00FF00FF00FF00FF))
	f.Fuzz(func(t *testing.T, x uint64) {
		if got, want := zeroLanes16(x), naiveZeroLanes(x, 16); got != want {
			t.Fatalf("zeroLanes16(%#x) = %d, want %d", x, got, want)
		}
		if got, want := zeroLanes8(x), naiveZeroLanes(x, 8); got != want {
			t.Fatalf("zeroLanes8(%#x) = %d, want %d", x, got, want)
		}
	})
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, bits := range []int{64, 16, 8} {
		// Odd slot counts exercise the partially-used final word.
		for _, slots := range []int{1, 3, 7, 8, 9, 32, 127, 128} {
			sig := make([]uint64, slots)
			for i := range sig {
				sig[i] = rng.Uint64()
			}
			packed := packSignatureAppend(nil, sig, bits)
			if want := sigWords(slots, bits); len(packed) != want {
				t.Fatalf("bits=%d slots=%d: packed to %d words, want %d", bits, slots, len(packed), want)
			}
			back := unpackSignatureAppend(nil, packed, slots, bits)
			mask := laneMask(bits)
			for i, v := range sig {
				if back[i] != v&mask {
					t.Fatalf("bits=%d slots=%d slot %d: unpacked %#x, want %#x", bits, slots, i, back[i], v&mask)
				}
			}
			// Truncation is idempotent: repacking the truncated values
			// reproduces the packed words exactly (what makes save/load
			// and Rebucket lossless at every width).
			again := packSignatureAppend(nil, back, bits)
			if !slices.Equal(packed, again) {
				t.Fatalf("bits=%d slots=%d: repack of unpacked values differs", bits, slots)
			}
		}
	}
}

func TestPackedMatchingSlotsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, bits := range []int{64, 16, 8} {
		mask := laneMask(bits)
		for _, slots := range []int{1, 5, 8, 9, 64, 127, 128} {
			for trial := 0; trial < 50; trial++ {
				a := make([]uint64, slots)
				b := make([]uint64, slots)
				want := 0
				for i := range a {
					a[i] = rng.Uint64()
					switch rng.Intn(3) {
					case 0: // identical slot
						b[i] = a[i]
					case 1: // equal only after truncation
						b[i] = (a[i] & mask) | (rng.Uint64() &^ mask)
					default:
						b[i] = rng.Uint64()
					}
					if a[i]&mask == b[i]&mask {
						want++
					}
				}
				pa := packSignatureAppend(nil, a, bits)
				pb := packSignatureAppend(nil, b, bits)
				if got := packedMatchingSlots(pa, pb, slots, bits); got != want {
					t.Fatalf("bits=%d slots=%d trial %d: packedMatchingSlots = %d, want %d",
						bits, slots, trial, got, want)
				}
			}
		}
	}
}

// TestPackedSimilarityWithinCollisionBound is the b-bit accuracy
// property: for random record pairs, the packed b-bit similarity can
// only exceed the unpacked 64-bit estimate (matching full slots always
// match truncated), and the excess stays within the analytical
// collision bound — non-matching slots collide on their low b bits with
// probability 2^-b, so the extra matches are Binomial(n-m, 2^-b) and a
// mean + 5 sigma + 1 envelope holds with overwhelming probability.
func TestPackedSimilarityWithinCollisionBound(t *testing.T) {
	const slots = DefaultSignatureSize
	s := mustSketcher(t, DefaultK, slots)
	rng := rand.New(rand.NewSource(23))
	for _, bits := range []int{16, 8} {
		for trial := 0; trial < 100; trial++ {
			// Pairs across the overlap spectrum: b edits a random prefix
			// of a's payload, so similarity sweeps ~0..1.
			data := benchData(2048, int64(trial))
			edited := make([]byte, len(data))
			copy(edited, data)
			cut := rng.Intn(len(edited))
			for j := 0; j < cut; j++ {
				edited[j] = byte('A' + rng.Intn(26))
			}
			x := s.Sketch(Record{Name: "x", Data: data})
			y := s.Sketch(Record{Name: "y", Data: edited})

			m64 := matchingSlots(x.Signature, y.Signature)
			px := packSignatureAppend(nil, x.Signature, bits)
			py := packSignatureAppend(nil, y.Signature, bits)
			mb := packedMatchingSlots(px, py, slots, bits)
			if mb < m64 {
				t.Fatalf("bits=%d trial %d: packed matches %d < full-width matches %d", bits, trial, mb, m64)
			}
			mean := float64(slots-m64) / math.Pow(2, float64(bits))
			bound := mean + 5*math.Sqrt(mean) + 1
			if extra := float64(mb - m64); extra > bound {
				t.Fatalf("bits=%d trial %d: %v extra collisions exceeds bound %v (m64=%d)",
					bits, trial, extra, bound, m64)
			}
		}
	}
}

// TestPackedSearchAgreesAcrossWidths plants near-duplicates and checks
// that every packing width finds them: LSH and exact mode agree with
// each other at each width, and the top hits are the planted records.
func TestPackedSearchAgreesAcrossWidths(t *testing.T) {
	const n, planted = 1200, 30
	for _, bits := range []int{64, 16, 8} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			eng, err := NewEngine(Options{IndexName: "packed", Bits: bits})
			if err != nil {
				t.Fatal(err)
			}
			recs, base := plantedRecords(n, planted, 7)
			if added, err := eng.AddBatch(recs); err != nil || added != n {
				t.Fatalf("AddBatch = %d, %v; want %d, nil", added, err, n)
			}
			q := eng.Sketcher().Sketch(Record{Name: "query", Data: base})
			exact, err := SearchTopK(eng.Index(), q, 10, 0, eng.Pool())
			if err != nil {
				t.Fatal(err)
			}
			lsh, err := SearchTopKLSH(eng.Index(), q, 10, 0, eng.Pool())
			if err != nil {
				t.Fatal(err)
			}
			if len(exact) != 10 || len(lsh) != 10 {
				t.Fatalf("result lengths: exact=%d lsh=%d, want 10", len(exact), len(lsh))
			}
			for i := range exact {
				if exact[i] != lsh[i] {
					t.Fatalf("bits=%d result %d differs: exact=%+v lsh=%+v", bits, i, exact[i], lsh[i])
				}
			}
			for i, r := range exact[:5] {
				if r.Ref[:5] != "near-" {
					t.Fatalf("bits=%d: hit %d = %+v, want a planted near-duplicate", bits, i, r)
				}
			}
		})
	}
}

// TestSearchParallelMatchesSerial drives the per-shard fan-out path
// (corpus above parallelScoreMin) and checks that fan-out worker counts
// never change the answer, in both modes.
func TestSearchParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a corpus above parallelScoreMin")
	}
	const n = parallelScoreMin + 500
	eng, err := NewEngine(Options{IndexName: "fanout", Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	recs, base := plantedRecords(n, 20, 5)
	if added, err := eng.AddBatch(recs); err != nil || added != n {
		t.Fatalf("AddBatch = %d, %v; want %d, nil", added, err, n)
	}
	q := eng.Sketcher().Sketch(Record{Name: "query", Data: base})
	for _, search := range []struct {
		name string
		fn   func(*Index, *Sketch, int, float64, *Pool) ([]Result, error)
	}{{"exact", SearchTopK}, {"lsh", SearchTopKLSH}} {
		// minSim 0.01 exercises the LSH fallback sweep too: candidates
		// score above it but cannot fill topK=50.
		serial, err := search.fn(eng.Index(), q, 50, 0.01, NewPool(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 16} {
			par, err := search.fn(eng.Index(), q, 50, 0.01, NewPool(workers))
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(serial) {
				t.Fatalf("%s workers=%d: %d results, serial %d", search.name, workers, len(par), len(serial))
			}
			for i := range serial {
				if par[i] != serial[i] {
					t.Fatalf("%s workers=%d result %d: %+v, serial %+v", search.name, workers, i, par[i], serial[i])
				}
			}
		}
	}
}

// plantedRecords builds n records, the first `planted` of which are
// near-duplicates of the returned base payload. It mirrors
// plantedCorpus but returns raw records so callers pick their own
// engine options.
func plantedRecords(n, planted int, seed int64) ([]Record, []byte) {
	const recBytes = 256
	base := benchData(recBytes, seed)
	recs := make([]Record, 0, n)
	for i := 0; i < planted; i++ {
		data := make([]byte, len(base))
		copy(data, base)
		rng := rand.New(rand.NewSource(seed + int64(i) + 1))
		for j := 0; j < 5; j++ {
			data[rng.Intn(len(data))] = byte('a' + rng.Intn(26))
		}
		recs = append(recs, Record{Name: fmt.Sprintf("near-%d", i), Data: data})
	}
	for i := planted; i < n; i++ {
		recs = append(recs, Record{Name: fmt.Sprintf("rand-%d", i), Data: benchData(recBytes, seed+int64(i)+1000)})
	}
	return recs, base
}

// TestTruncatedSketchesDoNotMixWithFullWidth: a sketch read back from
// a b-bit index holds truncated lanes; comparing, adding, or querying
// it against full-width state must error rather than silently score
// near-zero.
func TestTruncatedSketchesDoNotMixWithFullWidth(t *testing.T) {
	eng8, err := NewEngine(Options{IndexName: "p8", Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Name: "r", Data: benchData(512, 1)}
	if _, err := eng8.Add(rec); err != nil {
		t.Fatal(err)
	}
	trunc := eng8.Index().Get("r")
	if trunc.Bits != 8 {
		t.Fatalf("Get from 8-bit index: Bits = %d, want 8", trunc.Bits)
	}
	full := eng8.Sketcher().Sketch(rec)
	if _, err := Similarity(trunc, full); err == nil || !strings.Contains(err.Error(), "slot widths") {
		t.Fatalf("Similarity(truncated, full) err = %v, want mixed-slot-width error", err)
	}
	// Two sketches from the same packed index stay comparable — both
	// sides hold the same truncated lanes.
	if _, err := eng8.Add(Record{Name: "r2", Data: benchData(512, 1)}); err != nil {
		t.Fatal(err)
	}
	if sim, err := Similarity(trunc, eng8.Index().Get("r2")); err != nil || sim != 1 {
		t.Fatalf("Similarity within 8-bit index = %v, %v; want 1, nil", sim, err)
	}
	// A full-width index rejects the truncated sketch on add and search.
	eng64, err := NewEngine(Options{IndexName: "p64"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng64.Index().Add(trunc); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("Add truncated to 64-bit index err = %v, want packing-width error", err)
	}
	if _, err := SearchTopK(eng64.Index(), trunc, 3, 0, nil); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("search 64-bit index with truncated query err = %v, want packing-width error", err)
	}
	// And the truncated sketch still queries its own index fine.
	if res, err := SearchTopK(eng8.Index(), trunc, 3, 0, nil); err != nil || len(res) != 1 || res[0].Ref != "r2" {
		t.Fatalf("search 8-bit index with its own sketch = %v, %v; want r2", res, err)
	}
}

func TestArenaStats(t *testing.T) {
	for _, tc := range []struct {
		bits        int
		wantPerRec  float64
		wantSigSize int
	}{
		{64, 8 * DefaultSignatureSize, DefaultSignatureSize},
		{16, 2 * DefaultSignatureSize, DefaultSignatureSize},
		{8, 1 * DefaultSignatureSize, DefaultSignatureSize},
	} {
		eng, err := NewEngine(Options{IndexName: "arena", Bits: tc.bits})
		if err != nil {
			t.Fatal(err)
		}
		empty := eng.Index().Arena()
		if empty.SignatureBytes != 0 || empty.BytesPerRecord != 0 {
			t.Fatalf("bits=%d empty arena stats = %+v", tc.bits, empty)
		}
		const n = 100
		for i := 0; i < n; i++ {
			rec := Record{Name: fmt.Sprintf("r%d", i), Data: benchData(512, int64(i))}
			if _, err := eng.Add(rec); err != nil {
				t.Fatal(err)
			}
		}
		st := eng.Index().Arena()
		if st.Bits != tc.bits {
			t.Fatalf("arena bits = %d, want %d", st.Bits, tc.bits)
		}
		if st.BytesPerRecord != tc.wantPerRec {
			t.Fatalf("bits=%d bytes/record = %v, want %v", tc.bits, st.BytesPerRecord, tc.wantPerRec)
		}
		if st.SignatureBytes != int64(n*int(tc.wantPerRec)) {
			t.Fatalf("bits=%d signature bytes = %d, want %d", tc.bits, st.SignatureBytes, n*int(tc.wantPerRec))
		}
		if st.Utilization <= 0 || st.Utilization > 1 {
			t.Fatalf("bits=%d utilization = %v, want in (0,1]", tc.bits, st.Utilization)
		}
		// Engine stats surface the same numbers (the /stats payload).
		es := eng.Stats()
		if es.Bits != tc.bits || es.SignatureBytes != st.SignatureBytes ||
			es.BytesPerRecord != st.BytesPerRecord || es.ArenaUtilized != st.Utilization {
			t.Fatalf("bits=%d engine stats arena fields = %+v, want %+v", tc.bits, es, st)
		}
	}
}

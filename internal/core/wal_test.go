package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// walEngine builds a tiered engine over dir with n records committed
// by one SaveDir, so the per-shard WALs are attached and every later
// acked mutation is durable through them.
func walEngine(t *testing.T, dir string, n int) *Engine {
	t.Helper()
	eng, err := NewEngine(Options{
		IndexName: "wal", Bits: 8,
		Tiered: true, DataDir: dir, SegmentRows: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Index().SaveDir(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestWALCrashRecovery is the tentpole's durability proof: mutations
// acknowledged after the last snapshot exist only in the WALs, and a
// reopen must reconstruct exactly the acknowledged state — every acked
// add present, every acked delete absent — from replay alone.
func TestWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	eng := walEngine(t, dir, 40)

	// Acked delta after the snapshot: 20 adds and 10 deletes, each
	// synced to the WAL by the engine's ack path. No second SaveDir.
	for i := 40; i < 60; i++ {
		if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if ok, err := eng.Delete(fmt.Sprintf("rec-%d", i)); !ok || err != nil {
			t.Fatalf("delete rec-%d = %v, %v", i, ok, err)
		}
	}
	// The crash: no snapshot of the delta. Close only releases file
	// handles; everything acked is already fsynced in the WALs.
	if err := eng.Index().Close(); err != nil {
		t.Fatal(err)
	}

	ix, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer ix.Close()
	if ix.Len() != 50 {
		t.Fatalf("recovered %d records, want 50", ix.Len())
	}
	for i := 0; i < 10; i++ {
		if ix.Has(fmt.Sprintf("rec-%d", i)) {
			t.Fatalf("deleted rec-%d resurrected by replay", i)
		}
	}
	for i := 10; i < 60; i++ {
		if !ix.Has(fmt.Sprintf("rec-%d", i)) {
			t.Fatalf("acked rec-%d lost in the crash", i)
		}
	}
	ws := ix.WAL()
	if ws == nil || ws.ReplayedFrames != 30 {
		t.Fatalf("WAL stats after replay = %+v, want 30 replayed frames", ws)
	}
	// Deleted records must not surface in search either: query with a
	// deleted record's own payload, the strongest possible attractor.
	q := NewEngineSketch(t, "q", benchData(256, 6)) // rec-5's data, rec-5 deleted
	res, err := SearchTopK(ix, q, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		for i := 0; i < 10; i++ {
			if r.Ref == fmt.Sprintf("rec-%d", i) {
				t.Fatalf("deleted record %s in search results", r.Ref)
			}
		}
	}
	// A second reopen replays the same WAL suffix over the same
	// snapshot and must converge to the same state (idempotence).
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != 50 || again.Has("rec-3") || !again.Has("rec-59") {
		t.Fatalf("second replay diverged: len=%d", again.Len())
	}
}

// NewEngineSketch sketches data with the default engine parameters so
// tests can build queries without holding an engine.
func NewEngineSketch(t *testing.T, name string, data []byte) *Sketch {
	t.Helper()
	eng, err := NewEngine(Options{IndexName: "sketcher"})
	if err != nil {
		t.Fatal(err)
	}
	return eng.Sketcher().Sketch(Record{Name: name, Data: data})
}

// TestWALTornTail: a crash mid-append leaves a torn final frame. The
// scanner must keep the valid prefix, truncate the tail, and report
// the torn bytes — never reject the whole log.
func TestWALTornTail(t *testing.T) {
	// nonEmptyWALs returns the shard WALs holding at least one frame.
	nonEmptyWALs := func(t *testing.T, dir string) []string {
		t.Helper()
		paths, err := filepath.Glob(filepath.Join(dir, "wal", "shard-*.wal"))
		if err != nil || len(paths) == 0 {
			t.Fatalf("no WAL files in %s: %v", dir, err)
		}
		var out []string
		for _, p := range paths {
			if fi, err := os.Stat(p); err == nil && fi.Size() > walHeaderSize {
				out = append(out, p)
			}
		}
		if len(out) == 0 {
			t.Fatal("no WAL carries frames")
		}
		return out
	}

	t.Run("garbage tail", func(t *testing.T) {
		dir := t.TempDir()
		eng := walEngine(t, dir, 8)
		for i := 8; i < 20; i++ {
			if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Index().Close(); err != nil {
			t.Fatal(err)
		}
		// A torn frame: a length word promising more than is there.
		garbage := []byte{0xFF, 0xFF, 0xFF, 0x7F, 0xde, 0xad, 0xbe}
		f, err := os.OpenFile(nonEmptyWALs(t, dir)[0], os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(garbage); err != nil {
			t.Fatal(err)
		}
		f.Close()

		ix, err := Open(dir)
		if err != nil {
			t.Fatalf("Open with torn tail: %v", err)
		}
		defer ix.Close()
		if ix.Len() != 20 {
			t.Fatalf("torn tail lost whole frames: len=%d, want 20", ix.Len())
		}
		if ws := ix.WAL(); ws == nil || ws.TornBytes != uint64(len(garbage)) {
			t.Fatalf("WAL stats = %+v, want %d torn bytes", ws, len(garbage))
		}
	})

	t.Run("chopped frame", func(t *testing.T) {
		dir := t.TempDir()
		eng := walEngine(t, dir, 8)
		for i := 8; i < 20; i++ {
			if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Index().Close(); err != nil {
			t.Fatal(err)
		}
		// Chop one byte off a WAL's final frame: exactly that frame (one
		// acked add) is lost, everything before it survives.
		path := nonEmptyWALs(t, dir)[0]
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-1); err != nil {
			t.Fatal(err)
		}

		ix, err := Open(dir)
		if err != nil {
			t.Fatalf("Open with chopped frame: %v", err)
		}
		defer ix.Close()
		if ix.Len() != 19 {
			t.Fatalf("chopped frame: len=%d, want 19 (one frame lost)", ix.Len())
		}
		if ws := ix.WAL(); ws == nil || ws.TornBytes == 0 {
			t.Fatalf("WAL stats = %+v, want torn bytes reported", ws)
		}
	})
}

// TestDeleteSemantics covers the tombstone API on both layouts:
// Delete reports presence, Has/Get/Len see the removal immediately,
// re-adding a deleted name is legal, and deleted records never appear
// in search results.
func TestDeleteSemantics(t *testing.T) {
	tiered, plain := tieredEngines(t, 60, 16)
	for _, eng := range []*Engine{tiered, plain} {
		ix := eng.Index()
		if _, err := ix.Delete(""); err == nil {
			t.Fatal("Delete of empty name succeeded")
		}
		if ok, err := eng.Delete("rec-7"); !ok || err != nil {
			t.Fatalf("delete rec-7 = %v, %v", ok, err)
		}
		if ok, err := eng.Delete("rec-7"); ok || err != nil {
			t.Fatalf("second delete rec-7 = %v, %v, want false", ok, err)
		}
		if ix.Has("rec-7") || ix.Get("rec-7") != nil || ix.Len() != 59 {
			t.Fatalf("rec-7 still visible after delete: len=%d", ix.Len())
		}
		// The strongest attractor: rec-7's own payload.
		q := eng.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 8)})
		res, err := SearchTopK(ix, q, 60, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Ref == "rec-7" {
				t.Fatal("deleted rec-7 in search results")
			}
		}
		// Re-add under the same name.
		if ok, err := eng.Add(Record{Name: "rec-7", Data: benchData(256, 8)}); !ok || err != nil {
			t.Fatalf("re-add rec-7 = %v, %v", ok, err)
		}
		if !ix.Has("rec-7") || ix.Len() != 60 {
			t.Fatalf("re-added rec-7 invisible: len=%d", ix.Len())
		}
		dead, rows := ix.Tombstones()
		if dead == 0 || rows <= ix.Len() {
			t.Fatalf("tombstones = %d/%d, want dead rows behind %d live records", dead, rows, ix.Len())
		}
	}
}

// TestCompactionEquivalence: compaction reclaims tombstoned rows
// without changing anything observable — search results are identical
// before and after, on both layouts, and deleted records appear in
// neither.
func TestCompactionEquivalence(t *testing.T) {
	tiered, plain := tieredEngines(t, 300, 32)
	for i := 0; i < 90; i += 2 {
		name := fmt.Sprintf("rec-%d", i)
		if ok, err := tiered.Delete(name); !ok || err != nil {
			t.Fatalf("tiered delete %s: %v, %v", name, ok, err)
		}
		if ok, err := plain.Delete(name); !ok || err != nil {
			t.Fatalf("plain delete %s: %v, %v", name, ok, err)
		}
	}
	queries := []*Sketch{
		plain.Sketcher().Sketch(Record{Name: "q1", Data: benchData(256, 3)}),
		plain.Sketcher().Sketch(Record{Name: "q2", Data: benchData(256, 11)}),
		plain.Sketcher().Sketch(Record{Name: "q3", Data: benchData(256, 77777)}),
	}
	for _, eng := range []*Engine{tiered, plain} {
		ix := eng.Index()
		var before [][]Result
		for _, q := range queries {
			res, err := SearchTopK(ix, q, 20, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			before = append(before, res)
		}
		if err := ix.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
		if dead, _ := ix.Tombstones(); dead != 0 {
			t.Fatalf("tombstones after compaction = %d, want 0", dead)
		}
		for qi, q := range queries {
			after, err := SearchTopK(ix, q, 20, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(after) != len(before[qi]) {
				t.Fatalf("query %d: %d results after compaction, want %d", qi, len(after), len(before[qi]))
			}
			for i := range after {
				if after[i] != before[qi][i] {
					t.Fatalf("query %d result %d changed across compaction: %+v vs %+v", qi, i, after[i], before[qi][i])
				}
			}
			for _, r := range after {
				for i := 0; i < 90; i += 2 {
					if r.Ref == fmt.Sprintf("rec-%d", i) {
						t.Fatalf("deleted %s in post-compaction results", r.Ref)
					}
				}
			}
		}
	}
	// Snapshots auto-compact past the threshold and round-trip the
	// compacted state.
	ix := tiered.Index()
	if err := ix.SaveDir(); err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(ix.DataDir())
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != ix.Len() {
		t.Fatalf("reload after compaction: len=%d, want %d", loaded.Len(), ix.Len())
	}
	for qi, q := range queries {
		want, err := SearchTopK(ix, q, 20, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SearchTopK(loaded, q, 20, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d changed across reload: %+v vs %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestSaveDirAutoCompacts: once the tombstone ratio crosses the
// threshold, the next snapshot compacts as it seals.
func TestSaveDirAutoCompacts(t *testing.T) {
	dir := t.TempDir()
	eng := walEngine(t, dir, 100)
	defer eng.Index().Close()
	for i := 0; i < 40; i++ {
		if ok, err := eng.Delete(fmt.Sprintf("rec-%d", i)); !ok || err != nil {
			t.Fatalf("delete rec-%d: %v, %v", i, ok, err)
		}
	}
	if err := eng.Index().SaveDir(); err != nil {
		t.Fatal(err)
	}
	if dead, _ := eng.Index().Tombstones(); dead != 0 {
		t.Fatalf("snapshot above threshold left %d dead rows", dead)
	}
	st := eng.Stats()
	if st.Compactions == 0 || st.CompactedRows != 40 {
		t.Fatalf("compaction counters = %d/%d, want >0/40", st.Compactions, st.CompactedRows)
	}
}

// TestOpenDispatch: Open resolves every on-disk layout and rejects
// non-indexes with a diagnosable error.
func TestOpenDispatch(t *testing.T) {
	// JSON file.
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")
	ix := NewIndex("open", 4, 32)
	s := mustSketcher(t, 4, 32)
	if _, err := ix.Add(s.Sketch(Record{Name: "rec", Data: []byte("payload for the open dispatch test")})); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil || got.Len() != 1 {
		t.Fatalf("Open(json) = %v, len=%d", err, got.Len())
	}
	// Tiered directory.
	tdir := t.TempDir()
	walEngine(t, tdir, 10).Index().Close()
	tx, err := Open(tdir)
	if err != nil || tx.Len() != 10 {
		t.Fatalf("Open(dir) = %v", err)
	}
	tx.Close()
	// A directory without a manifest is not an index.
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open of an empty directory succeeded")
	}
	// Neither is a missing path.
	if _, err := Open(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("Open of a missing path succeeded")
	}
}

// TestLiveRebucketUnderLoad: Rebucket on a live index races writers
// and searchers; nothing may error, deadlock, or (under -race) trip
// the detector, and the index must be fully searchable afterwards.
func TestLiveRebucketUnderLoad(t *testing.T) {
	dir := t.TempDir()
	eng := walEngine(t, dir, 200)
	defer eng.Index().Close()
	ix := eng.Index()
	shards := ix.Metadata().Shards

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: adds and deletes
		defer wg.Done()
		for i := 200; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
				t.Errorf("add under rebucket: %v", err)
				return
			}
			if _, err := eng.Delete(fmt.Sprintf("rec-%d", i-150)); err != nil {
				t.Errorf("delete under rebucket: %v", err)
				return
			}
		}
	}()
	go func() { // searcher: both modes
		defer wg.Done()
		q := eng.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 5)})
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := SearchTopKLSH(ix, q, 10, 0, nil); err != nil {
				t.Errorf("lsh search under rebucket: %v", err)
				return
			}
			if _, err := SearchTopK(ix, q, 10, 0, nil); err != nil {
				t.Errorf("exact search under rebucket: %v", err)
				return
			}
		}
	}()
	schemes := []LSHParams{{Bands: 32, RowsPerBand: 4}, {Bands: 16, RowsPerBand: 8}, {Bands: 64, RowsPerBand: 2}}
	for i := 0; i < 12; i++ {
		if err := ix.Rebucket(schemes[i%len(schemes)], shards); err != nil {
			t.Fatalf("rebucket %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// Changing the shard count of a tiered index stays rejected.
	if err := ix.Rebucket(schemes[0], shards+1); err == nil {
		t.Fatal("tiered rebucket with a changed shard count succeeded")
	}
	// The rebucketed index still answers correctly: a live record's own
	// payload must find it via the rebuilt postings.
	q := eng.Sketcher().Sketch(Record{Name: "q", Data: benchData(256, 100)})
	res, err := SearchTopKLSH(ix, q, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Ref != "rec-99" {
		t.Fatalf("post-rebucket search missed rec-99: %+v", res)
	}
}

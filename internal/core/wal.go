package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sketchengine/internal/fault"
)

// Per-shard write-ahead log. Every acknowledged add or delete on a
// tiered index is appended as a CRC-framed record to the owning shard's
// WAL before the ack, and replayed over the last snapshot when the
// directory is reopened — so acked-ingest-survives costs O(delta since
// the last snapshot) instead of being snapshot-gated. The full protocol
// (frame layout, fsync batching, truncation, crash-safety argument) is
// specified in docs/FORMAT.md.
//
// File layout: a 16-byte header (magic "SKWL", u32 version, u32 shard
// ID, u32 reserved) followed by frames. Each frame is
//
//	u32 bodyLen | u32 crc32(body) | body
//
// where body is
//
//	u64 seq | u8 op | u32 nameLen | name
//	  op=add only: u32 shingles | u32 slots | slots x u64 signature
//
// all little-endian. seq is a global (index-wide) sequence number, so
// replay can merge the per-shard logs back into one total mutation
// order.
const (
	walDirName    = "wal"
	walMagic      = "SKWL"
	walVersion    = 1
	walHeaderSize = 16

	walOpAdd    = 1
	walOpDelete = 2

	// walMaxBody rejects absurd frame lengths before allocating; the
	// largest legal frame is a name plus a signature, both far smaller.
	walMaxBody = 1 << 27
)

// walPath names shard si's WAL file under dataDir.
func walPath(dataDir string, si int) string {
	return filepath.Join(dataDir, walDirName, fmt.Sprintf("shard-%04d.wal", si))
}

// walOp is one decoded WAL frame.
type walOp struct {
	seq      uint64
	op       byte
	name     string
	shingles int32
	sig      []uint64 // add frames only; full-width slot values
}

// shardWAL is one shard's open write-ahead log. Appends encode into an
// in-memory buffer (and therefore never fail), so shard.add needs no
// rollback path; sync flushes and fsyncs whatever has accumulated —
// concurrent writers on the same shard group-commit under one fsync.
// The owning shard's lock is NOT required: shardWAL has its own mutex,
// and the lock order is writeMu -> ix.mu -> sh.mu -> w.mu.
type shardWAL struct {
	t       *tierState
	shardID int
	path    string

	mu     sync.Mutex
	f      *os.File
	buf    []byte // encoded frames not yet written to the file
	frames int64  // frames appended since the last reset
	bytes  int64  // frame bytes (excluding header) since the last reset
}

// openShardWAL opens (creating if needed) the shard WAL at path and
// positions it at off — the end of the valid prefix a prior
// scanShardWAL found. Anything past off (a torn tail from a crash
// mid-write) is truncated away; off <= walHeaderSize rewrites a fresh
// header. frames is the number of valid frames in the retained prefix.
func openShardWAL(path string, shardID int, t *tierState, off, frames int64) (*shardWAL, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &shardWAL{t: t, shardID: shardID, path: path, f: f}
	if off <= walHeaderSize {
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return w, nil
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	w.frames = frames
	w.bytes = off - walHeaderSize
	return w, nil
}

// writeHeader resets the file to a fresh, empty log: header only.
func (w *shardWAL) writeHeader() error {
	var hdr [walHeaderSize]byte
	copy(hdr[0:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(w.shardID))
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", w.path, err)
	}
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: %s: %w", w.path, err)
	}
	if _, err := w.f.Seek(walHeaderSize, 0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.frames, w.bytes = 0, 0
	w.buf = w.buf[:0]
	return nil
}

// appendAdd logs an acknowledged insert. The append lands in the
// in-memory buffer and cannot fail; durability comes from the next
// sync.
func (w *shardWAL) appendAdd(seq uint64, name string, shingles int32, sig []uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	hdrAt := w.openFrame(seq, walOpAdd, name)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(shingles))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(sig)))
	for _, v := range sig {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	}
	w.sealFrame(hdrAt)
}

// appendDelete logs an acknowledged tombstone.
func (w *shardWAL) appendDelete(seq uint64, name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sealFrame(w.openFrame(seq, walOpDelete, name))
}

// openFrame appends the 8-byte frame-header placeholder plus the body
// fields every frame shares, returning the placeholder's offset for
// sealFrame. Callers hold w.mu.
func (w *shardWAL) openFrame(seq uint64, op byte, name string) (hdrAt int) {
	hdrAt = len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0) // bodyLen + crc placeholder
	w.buf = binary.LittleEndian.AppendUint64(w.buf, seq)
	w.buf = append(w.buf, op)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(name)))
	w.buf = append(w.buf, name...)
	return hdrAt
}

// sealFrame backfills the bodyLen and body-CRC placeholder of the frame
// opened at hdrAt, completing the append. Callers hold w.mu.
func (w *shardWAL) sealFrame(hdrAt int) {
	body := w.buf[hdrAt+8:]
	binary.LittleEndian.PutUint32(w.buf[hdrAt:], uint32(len(body)))
	binary.LittleEndian.PutUint32(w.buf[hdrAt+4:], crc32.ChecksumIEEE(body))
	w.frames++
	w.bytes += int64(8 + len(body))
	w.t.walAppends.Add(1)
}

// sync writes the buffered frames and fsyncs the file — the durability
// point every ack waits on. An empty buffer is a no-op (whatever was
// written before is already fsynced), so syncing all shards after an
// add only pays one fsync, on the shard that changed. On a write error
// the buffered frames are dropped from the log (the caller fails the
// ack; the records themselves are still in memory and reach disk with
// the next snapshot).
func (w *shardWAL) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) == 0 {
		return nil
	}
	if ferr := fault.Check("wal.write"); ferr != nil {
		w.buf = w.buf[:0]
		return fmt.Errorf("wal: %s: %w", w.path, ferr)
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		return fmt.Errorf("wal: %s: %w", w.path, err)
	}
	start := time.Now()
	if ferr := fault.Check("wal.fsync"); ferr != nil {
		return fmt.Errorf("wal: fsync %s: %w", w.path, ferr)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", w.path, err)
	}
	w.t.walFsyncs.Add(1)
	w.t.walFsyncNanos.Add(uint64(time.Since(start).Nanoseconds()))
	return nil
}

// reset empties the log back to a bare header. SaveDir calls it right
// after the manifest rename commits a snapshot that already contains
// every logged mutation; the lock order guarantees no frame can land
// between the snapshot and the truncation.
func (w *shardWAL) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeHeader()
}

// depth returns the (frames, bytes) accumulated since the last reset.
func (w *shardWAL) depth() (int64, int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.frames, w.bytes
}

func (w *shardWAL) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// scanShardWAL reads the WAL at path and returns every decodable frame
// plus the file offset where the valid prefix ends. A torn tail — a
// frame the process was still writing when it died — fails its length
// or CRC check and cleanly ends the scan; everything before it is
// intact because frames are appended in order and fsynced before the
// ack. A missing file returns (nil, 0, nil): no log, nothing to
// replay. A corrupt header (wrong magic, version, or shard ID) is a
// hard error — that is not a torn write but the wrong file.
func scanShardWAL(path string, shardID int) (ops []walOp, validEnd int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if len(data) < walHeaderSize {
		// Torn header: treat the whole file as a tail to truncate.
		return nil, 0, nil
	}
	if string(data[0:4]) != walMagic {
		return nil, 0, fmt.Errorf("wal: %s: bad magic %q", path, data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != walVersion {
		return nil, 0, fmt.Errorf("wal: %s: version %d is newer than this engine supports (max %d)", path, v, walVersion)
	}
	if id := binary.LittleEndian.Uint32(data[8:12]); id != uint32(shardID) {
		return nil, 0, fmt.Errorf("wal: %s: header names shard %d, want %d", path, id, shardID)
	}
	off := int64(walHeaderSize)
	for {
		rest := data[off:]
		if len(rest) < 8 {
			return ops, off, nil
		}
		bodyLen := binary.LittleEndian.Uint32(rest[0:4])
		if bodyLen > walMaxBody || int(bodyLen) > len(rest)-8 {
			return ops, off, nil
		}
		body := rest[8 : 8+bodyLen]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(rest[4:8]) {
			return ops, off, nil
		}
		op, derr := decodeWALBody(body)
		if derr != nil {
			// The CRC matched but the structure is wrong: not a torn
			// write but real corruption (or a writer bug). Refuse to
			// guess at acknowledged data.
			return nil, 0, fmt.Errorf("wal: %s: frame at offset %d: %w", path, off, derr)
		}
		ops = append(ops, op)
		off += int64(8 + bodyLen)
	}
}

// decodeWALBody parses one CRC-verified frame body.
func decodeWALBody(body []byte) (walOp, error) {
	var op walOp
	if len(body) < 13 {
		return op, fmt.Errorf("body too short (%d bytes)", len(body))
	}
	op.seq = binary.LittleEndian.Uint64(body[0:8])
	op.op = body[8]
	nameLen := binary.LittleEndian.Uint32(body[9:13])
	rest := body[13:]
	if uint32(len(rest)) < nameLen {
		return op, fmt.Errorf("name length %d exceeds body", nameLen)
	}
	op.name = string(rest[:nameLen])
	rest = rest[nameLen:]
	switch op.op {
	case walOpDelete:
		if len(rest) != 0 {
			return op, fmt.Errorf("delete frame has %d trailing bytes", len(rest))
		}
	case walOpAdd:
		if len(rest) < 8 {
			return op, fmt.Errorf("add frame truncated")
		}
		op.shingles = int32(binary.LittleEndian.Uint32(rest[0:4]))
		slots := binary.LittleEndian.Uint32(rest[4:8])
		rest = rest[8:]
		if uint64(len(rest)) != uint64(slots)*8 {
			return op, fmt.Errorf("add frame holds %d signature bytes, want %d slots", len(rest), slots)
		}
		op.sig = make([]uint64, slots)
		for i := range op.sig {
			op.sig[i] = binary.LittleEndian.Uint64(rest[i*8:])
		}
	default:
		return op, fmt.Errorf("unknown op %d", op.op)
	}
	return op, nil
}

package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"
)

// Index format versions. The full compatibility rules — field tables,
// version-sniffing, value-range checks — are specified normatively in
// docs/FORMAT.md; the short version: v1 files carry no format field and
// load with defaults, v1–v2 predate sketch schemes and load as legacy
// KMH, v1–v3 predate packing and load as full-width 64-bit arenas, v4
// records the packing width. V5 is not a JSON layout at all but the
// tiered directory format (MANIFEST.json plus binary segment files)
// written by SaveDir and read by LoadDir. Save always writes
// CurrentFormat, which stays v4: the JSON path's bytes are unchanged by
// the existence of the tiered format.
const (
	FormatV1      = 1
	FormatV2      = 2
	FormatV3      = 3
	FormatV4      = 4
	FormatV5      = 5
	CurrentFormat = FormatV4
)

// Metadata describes an index; it is embedded in the JSON serialization
// and kept current as records are added. Format, Bands, RowsPerBand and
// Shards are new in format v2, Scheme in v3, Bits in v4; absent fields
// are defaulted when loading older files (pre-v3 indexes are always
// KMH, pre-v4 always 64-bit).
type Metadata struct {
	Name          string    `json:"name"`
	Version       string    `json:"version"`
	Format        int       `json:"format,omitempty"`
	CreatedAt     time.Time `json:"created_at"`
	UpdatedAt     time.Time `json:"updated_at"`
	RecordCount   int       `json:"record_count"`
	K             int       `json:"k"`
	SignatureSize int       `json:"signature_size"`
	Scheme        Scheme    `json:"scheme,omitempty"`
	Bits          int       `json:"bits,omitempty"`
	Bands         int       `json:"bands,omitempty"`
	RowsPerBand   int       `json:"rows_per_band,omitempty"`
	Shards        int       `json:"shards,omitempty"`
}

// Index is an in-memory store of sketches keyed by record name,
// striped over N independently-locked shards so concurrent adds and
// probes on different stripes never contend. Each shard owns a
// contiguous packed signature arena (optionally truncated to b-bit
// slots; see sigArena) plus LSH band postings for sub-linear candidate
// filtering (see SearchTopKLSH). All methods are safe for concurrent
// use except Rebucket. Adds are incremental: a sketch whose name is
// already present is skipped, never overwritten.
type Index struct {
	mu     sync.RWMutex // guards meta, order, gen, and the shards slice header
	meta   Metadata
	order  []string // insertion order, for deterministic iteration
	shards []*shard
	lsh    LSHParams
	bits   int
	gen    uint64     // bumped on every successful Add; see Generation
	tier   *tierState // non-nil once EnableTiered has run (or LoadDir built the index)
}

// NewIndex returns an empty index accepting sketches with the given
// shingle length and signature size, using the default sketch scheme,
// banding scheme, shard count, and full-width (64-bit) signature
// storage. Use NewIndexWith to configure those.
func NewIndex(name string, k, sigSize int) *Index {
	if ix, err := NewIndexWith(name, k, sigSize, DefaultScheme, DefaultLSHParams(sigSize), DefaultShards, DefaultBits); err == nil {
		return ix
	}
	// Non-positive sigSize: keep the old never-fail contract with a
	// placeholder single-band scheme. Such an index rejects every add
	// through signature-size validation, so the scheme is never probed.
	now := time.Now().UTC()
	lsh := LSHParams{Bands: 1, RowsPerBand: 1}
	return &Index{
		meta: Metadata{
			Name:          name,
			Version:       Version,
			Format:        CurrentFormat,
			CreatedAt:     now,
			UpdatedAt:     now,
			K:             k,
			SignatureSize: sigSize,
			Scheme:        DefaultScheme,
			Bits:          DefaultBits,
			Bands:         lsh.Bands,
			RowsPerBand:   lsh.RowsPerBand,
			Shards:        DefaultShards,
		},
		shards: newShards(DefaultShards, lsh, sigSize, DefaultBits),
		lsh:    lsh,
		bits:   DefaultBits,
	}
}

// NewIndexWith returns an empty index with an explicit sketch scheme,
// LSH banding scheme, shard count, and signature packing width (64, 16,
// or 8 bits per slot; 0 means DefaultBits). The empty scheme means
// legacy KMH, matching pre-v3 metadata.
func NewIndexWith(name string, k, sigSize int, scheme Scheme, lsh LSHParams, shards, bits int) (*Index, error) {
	scheme = normScheme(scheme)
	if scheme != SchemeOPH && scheme != SchemeKMH {
		return nil, fmt.Errorf("index %q: unknown scheme %q", name, scheme)
	}
	if _, err := NewLSHParams(lsh.Bands, lsh.RowsPerBand, sigSize); err != nil {
		return nil, fmt.Errorf("index %q: %w", name, err)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("index %q: shard count must be positive, got %d", name, shards)
	}
	bits, err := validBits(bits)
	if err != nil {
		return nil, fmt.Errorf("index %q: %w", name, err)
	}
	now := time.Now().UTC()
	return &Index{
		meta: Metadata{
			Name:          name,
			Version:       Version,
			Format:        CurrentFormat,
			CreatedAt:     now,
			UpdatedAt:     now,
			K:             k,
			SignatureSize: sigSize,
			Scheme:        scheme,
			Bits:          bits,
			Bands:         lsh.Bands,
			RowsPerBand:   lsh.RowsPerBand,
			Shards:        shards,
		},
		shards: newShards(shards, lsh, sigSize, bits),
		lsh:    lsh,
		bits:   bits,
	}, nil
}

// Add inserts s if no record with the same name exists. It reports
// whether the sketch was added; false with a nil error means the name
// already existed and the add was skipped. The signature is packed into
// the owning shard's arena: at packing widths below 64 only the low b
// bits of every slot are stored.
func (ix *Index) Add(s *Sketch) (bool, error) {
	if s.Name == "" {
		return false, fmt.Errorf("index: sketch has empty name")
	}
	if got, want := normScheme(s.Scheme), normScheme(ix.meta.Scheme); got != want {
		return false, fmt.Errorf("index %q: sketch scheme %q does not match index scheme %q",
			ix.meta.Name, got, want)
	}
	if s.K != ix.meta.K {
		return false, fmt.Errorf("index %q: sketch k %d does not match index k %d",
			ix.meta.Name, s.K, ix.meta.K)
	}
	if len(s.Signature) != ix.meta.SignatureSize {
		return false, fmt.Errorf("index %q: signature size %d does not match index size %d",
			ix.meta.Name, len(s.Signature), ix.meta.SignatureSize)
	}
	// Full-width sketches are always accepted (packing truncates them);
	// a sketch already truncated to b bits only fits an index of the
	// same width — repacking it elsewhere would store garbage lanes.
	if b := normSketchBits(s.Bits); b != 64 && b != ix.bits {
		return false, fmt.Errorf("index %q: sketch holds %d-bit truncated slots but the index packs at %d bits",
			ix.meta.Name, b, ix.bits)
	}
	ix.mu.RLock()
	shards := ix.shards
	tiered := ix.tier != nil
	ix.mu.RUnlock()
	// A tiered index stores the full-width signature on disk; a
	// pre-truncated sketch has nothing to store there.
	if tiered && normSketchBits(s.Bits) != 64 {
		return false, fmt.Errorf("index %q: tiered index requires full-width sketches, got %d-bit truncated slots",
			ix.meta.Name, normSketchBits(s.Bits))
	}
	// Same-named adds always land on the same shard, whose lock
	// serializes the existence check against the insert.
	added, err := shards[shardFor(s.Name, len(shards))].add(s)
	if err != nil {
		return false, fmt.Errorf("index %q: %w", ix.meta.Name, err)
	}
	if !added {
		return false, nil
	}
	ix.mu.Lock()
	ix.order = append(ix.order, s.Name)
	ix.meta.RecordCount = len(ix.order)
	ix.meta.UpdatedAt = time.Now().UTC()
	ix.gen++
	ix.mu.Unlock()
	return true, nil
}

// Generation returns a counter that increments on every successful Add.
// It is the snapshot hook for long-lived servers: remember the
// generation at the last save and skip the next one when it has not
// moved, so idle periods never rewrite an unchanged index file.
func (ix *Index) Generation() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.gen
}

// Occupancy returns the number of records held by each shard stripe, in
// stripe order. It is an observability aid: a heavily skewed occupancy
// means one stripe's lock is carrying most of the write traffic.
func (ix *Index) Occupancy() []int {
	ix.mu.RLock()
	shards := ix.shards
	ix.mu.RUnlock()
	out := make([]int, len(shards))
	for i, sh := range shards {
		out[i] = sh.size()
	}
	return out
}

// ArenaStats is the memory footprint of the packed signature store,
// summed over every shard arena. BytesPerRecord is SignatureBytes over
// the record count (0 for an empty index); Utilization is live bytes
// over allocated capacity (append growth keeps headroom).
type ArenaStats struct {
	Bits           int     `json:"bits"`
	SignatureBytes int64   `json:"signature_bytes"`
	CapacityBytes  int64   `json:"capacity_bytes"`
	BytesPerRecord float64 `json:"bytes_per_record"`
	Utilization    float64 `json:"utilization"`
}

// Arena reports the signature arenas' aggregate memory footprint.
func (ix *Index) Arena() ArenaStats {
	ix.mu.RLock()
	shards := ix.shards
	bits := ix.bits
	ix.mu.RUnlock()
	st := ArenaStats{Bits: bits}
	records := 0
	for _, sh := range shards {
		used, capacity := sh.arenaBytes()
		st.SignatureBytes += used
		st.CapacityBytes += capacity
		records += sh.size()
	}
	if records > 0 {
		st.BytesPerRecord = float64(st.SignatureBytes) / float64(records)
	}
	if st.CapacityBytes > 0 {
		st.Utilization = float64(st.SignatureBytes) / float64(st.CapacityBytes)
	}
	return st
}

// Bits returns the signature packing width (64, 16, or 8).
func (ix *Index) Bits() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.bits
}

// Has reports whether a record named name is indexed, without
// reconstructing its sketch.
func (ix *Index) Has(name string) bool {
	ix.mu.RLock()
	shards := ix.shards
	ix.mu.RUnlock()
	return shards[shardFor(name, len(shards))].has(name)
}

// Get reconstructs the sketch named name from the arena, or returns nil
// if absent. At packing widths below 64 the returned slot values are
// the stored truncated lanes, not the original full-width minhashes.
func (ix *Index) Get(name string) *Sketch {
	ix.mu.RLock()
	shards := ix.shards
	k := ix.meta.K
	scheme := ix.meta.Scheme
	ix.mu.RUnlock()
	return shards[shardFor(name, len(shards))].getSketch(name, k, scheme)
}

// Len returns the number of indexed records.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.order)
}

// Names returns record names in insertion order.
func (ix *Index) Names() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, len(ix.order))
	copy(out, ix.order)
	return out
}

// Metadata returns a snapshot of the index metadata.
func (ix *Index) Metadata() Metadata {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.meta
}

// LSHParams returns the index's banding scheme.
func (ix *Index) LSHParams() LSHParams {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.lsh
}

// ShardCount returns the number of lock stripes.
func (ix *Index) ShardCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.shards)
}

// snapshotShards returns the current shard slice for query fan-out.
// Shards are append-only (Rebucket excepted, which must not run
// concurrently with queries on a live index), so holding the snapshot
// without ix.mu is safe.
func (ix *Index) snapshotShards() []*shard {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.shards
}

// Rebucket rebuilds the shard stripes and LSH band postings in place
// with a new banding scheme and shard count, without re-sketching; the
// packing width is preserved (repacking truncated lanes is lossless).
// It must not run concurrently with Add; it exists so a loaded index
// can be retuned (e.g. `search -bands ... -shards ...`) before serving.
//
// On a tiered index the shard count must stay what it is: on-disk
// segments are laid out by shard-local row order, and changing the
// stripe count would reshuffle records across shards and orphan every
// segment. A band retune keeps the per-shard row order (records are
// re-added shard by shard in arena order), so each shard's full-width
// store carries over untouched.
func (ix *Index) Rebucket(lsh LSHParams, shards int) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, err := NewLSHParams(lsh.Bands, lsh.RowsPerBand, ix.meta.SignatureSize); err != nil {
		return fmt.Errorf("index %q: rebucket: %w", ix.meta.Name, err)
	}
	if shards <= 0 {
		return fmt.Errorf("index %q: rebucket: shard count must be positive, got %d", ix.meta.Name, shards)
	}
	if ix.tier != nil && shards != len(ix.shards) {
		return fmt.Errorf("index %q: rebucket: cannot change the shard count of a tiered index (%d -> %d): on-disk segments are per-shard",
			ix.meta.Name, len(ix.shards), shards)
	}
	fresh := newShards(shards, lsh, ix.meta.SignatureSize, ix.bits)
	sig := make([]uint64, 0, ix.meta.SignatureSize)
	for _, old := range ix.shards {
		for i, name := range old.names {
			sig = old.arena.appendUnpacked(sig[:0], i)
			// fresh shards have no full store attached, so add cannot fail.
			_, _ = fresh[shardFor(name, shards)].add(&Sketch{
				Name:      name,
				K:         ix.meta.K,
				Shingles:  int(old.shingles[i]),
				Scheme:    ix.meta.Scheme,
				Bits:      ix.bits,
				Signature: sig,
			})
		}
	}
	if ix.tier != nil {
		// Same shard count and same per-shard insertion order: row
		// indexes are unchanged, so the full-width stores move over 1:1.
		for i, old := range ix.shards {
			fresh[i].full = old.full
		}
	}
	ix.shards = fresh
	ix.lsh = lsh
	ix.meta.Bands = lsh.Bands
	ix.meta.RowsPerBand = lsh.RowsPerBand
	ix.meta.Shards = shards
	return nil
}

// indexFile is the JSON serialization of an Index. Band postings are
// not serialized; they are derived from the signatures and rebuilt on
// load. Signatures are written as per-slot values (truncated to the
// packing width for b-bit indexes) so files stay debuggable and
// format-stable across packing layouts.
type indexFile struct {
	Meta     Metadata  `json:"meta"`
	Sketches []*Sketch `json:"sketches"`
}

// Save writes the index as JSON in the current format. Tiered indexes
// refuse: their full-width signatures live in segment files and the
// JSON layout has no slot for them (writing the truncated lanes under a
// v4 header would silently discard precision). Use SaveDir.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	if ix.tier != nil {
		ix.mu.RUnlock()
		return fmt.Errorf("index %q: tiered index cannot be saved as single-file JSON; use SaveDir", ix.meta.Name)
	}
	meta := ix.meta
	meta.Format = CurrentFormat
	meta.Bits = ix.bits
	f := indexFile{Meta: meta, Sketches: make([]*Sketch, 0, len(ix.order))}
	shards := ix.shards
	for _, n := range ix.order {
		f.Sketches = append(f.Sketches, shards[shardFor(n, len(shards))].getSketch(n, meta.K, meta.Scheme))
	}
	ix.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// SaveFile atomically writes the index to path: the JSON is written to
// a temporary file in the same directory, synced, and renamed over the
// destination, so a crash mid-save can never corrupt an existing index
// file.
func (ix *Index) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".index-*.tmp")
	if err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = ix.Save(f); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	// CreateTemp makes mode-0600 files; restore the 0644 a plain
	// os.Create would have produced so other readers keep access.
	if err = f.Chmod(0o644); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// LoadIndex reads an index previously written by Save. Format v1 files
// (no format field) load with the default banding scheme and shard
// count; v1 and v2 files predate sketch schemes and load as legacy KMH;
// v1–v3 files predate packing and load into full-width 64-bit arenas;
// files written by a newer engine are rejected. Every loaded sketch is
// stamped with the index scheme, so mixed-scheme comparisons fail even
// on sketches pulled out of the index directly.
func LoadIndex(r io.Reader) (*Index, error) {
	var f indexFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	if f.Meta.K <= 0 || f.Meta.SignatureSize <= 0 {
		return nil, fmt.Errorf("index: invalid metadata: k=%d signature_size=%d",
			f.Meta.K, f.Meta.SignatureSize)
	}
	var (
		lsh    LSHParams
		shards int
		scheme Scheme
		bits   int
		err    error
	)
	bits = DefaultBits // v1–v3 predate packing
	switch f.Meta.Format {
	case 0, FormatV1: // v1 files predate the format field
		lsh = DefaultLSHParams(f.Meta.SignatureSize)
		shards = DefaultShards
		scheme = SchemeKMH
	case FormatV2, FormatV3, FormatV4:
		if lsh, err = NewLSHParams(f.Meta.Bands, f.Meta.RowsPerBand, f.Meta.SignatureSize); err != nil {
			return nil, fmt.Errorf("index: invalid metadata: %w", err)
		}
		if shards = f.Meta.Shards; shards <= 0 {
			return nil, fmt.Errorf("index: invalid metadata: shards=%d", shards)
		}
		if f.Meta.Format == FormatV2 {
			scheme = SchemeKMH // v2 predates schemes; always k-minhash
			break
		}
		switch scheme = normScheme(f.Meta.Scheme); scheme {
		case SchemeOPH, SchemeKMH:
		default:
			return nil, fmt.Errorf("index: invalid metadata: unknown scheme %q", f.Meta.Scheme)
		}
		if f.Meta.Format == FormatV4 {
			if bits, err = validBits(f.Meta.Bits); err != nil {
				return nil, fmt.Errorf("index: invalid metadata: %w", err)
			}
		}
	case FormatV5:
		return nil, fmt.Errorf("index: format 5 is the tiered directory format, not a JSON file; load its directory with LoadDir")
	default:
		return nil, fmt.Errorf("index: format %d is newer than this engine supports (max %d)",
			f.Meta.Format, FormatV5)
	}
	meta := f.Meta
	meta.Format = CurrentFormat
	meta.Scheme = scheme
	meta.Bits = bits
	meta.Bands = lsh.Bands
	meta.RowsPerBand = lsh.RowsPerBand
	meta.Shards = shards
	ix := &Index{
		meta:   meta,
		shards: newShards(shards, lsh, meta.SignatureSize, bits),
		lsh:    lsh,
		bits:   bits,
	}
	mask := laneMask(bits)
	for _, s := range f.Sketches {
		if s == nil {
			return nil, fmt.Errorf("index: null sketch entry")
		}
		if s.Name == "" {
			return nil, fmt.Errorf("index: sketch with empty name")
		}
		if s.K != f.Meta.K {
			return nil, fmt.Errorf("index: sketch %q k %d does not match metadata k %d",
				s.Name, s.K, f.Meta.K)
		}
		if len(s.Signature) != f.Meta.SignatureSize {
			return nil, fmt.Errorf("index: sketch %q signature size %d does not match metadata %d",
				s.Name, len(s.Signature), f.Meta.SignatureSize)
		}
		if bits < 64 {
			// A b-bit file must carry b-bit values; anything wider means
			// the file was corrupted or mislabeled.
			for _, v := range s.Signature {
				if v&^mask != 0 {
					return nil, fmt.Errorf("index: sketch %q slot value %d exceeds the %d-bit packing width",
						s.Name, v, bits)
				}
			}
		}
		s.Scheme = scheme
		s.Bits = bits
		// Freshly-built shards have no full store attached, so add can
		// only fail by reporting a duplicate.
		if added, _ := ix.shards[shardFor(s.Name, shards)].add(s); !added {
			return nil, fmt.Errorf("index: duplicate sketch name %q", s.Name)
		}
		ix.order = append(ix.order, s.Name)
	}
	ix.meta.RecordCount = len(ix.order)
	return ix, nil
}

// LoadIndexFile opens and loads an index file.
func LoadIndexFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	defer f.Close()
	return LoadIndex(f)
}

// sortResults orders by descending similarity, breaking ties by query
// then ref name so output is deterministic. slices.SortFunc rather than
// sort.Slice: the generic sort allocates nothing, keeping the pooled
// query path allocation-free.
func sortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		switch {
		case a.Similarity > b.Similarity:
			return -1
		case a.Similarity < b.Similarity:
			return 1
		}
		if c := strings.Compare(a.Query, b.Query); c != 0 {
			return c
		}
		return strings.Compare(a.Ref, b.Ref)
	})
}

package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Index format versions. The full compatibility rules — field tables,
// version-sniffing, value-range checks — are specified normatively in
// docs/FORMAT.md; the short version: v1 files carry no format field and
// load with defaults, v1–v2 predate sketch schemes and load as legacy
// KMH, v1–v3 predate packing and load as full-width 64-bit arenas, v4
// records the packing width. V5 and v6 are not JSON layouts at all but
// the tiered directory format (MANIFEST.json plus binary segment
// files) written by SaveDir and read by Open: v6 extends v5 with
// per-shard tombstone lists and a write-ahead log replayed on open.
// Save always writes CurrentFormat, which stays v4: the JSON path's
// bytes are unchanged by the existence of the tiered formats.
const (
	FormatV1      = 1
	FormatV2      = 2
	FormatV3      = 3
	FormatV4      = 4
	FormatV5      = 5
	FormatV6      = 6
	CurrentFormat = FormatV4
)

// Metadata describes an index; it is embedded in the JSON serialization
// and kept current as records are added. Format, Bands, RowsPerBand and
// Shards are new in format v2, Scheme in v3, Bits in v4; absent fields
// are defaulted when loading older files (pre-v3 indexes are always
// KMH, pre-v4 always 64-bit).
type Metadata struct {
	Name          string    `json:"name"`
	Version       string    `json:"version"`
	Format        int       `json:"format,omitempty"`
	CreatedAt     time.Time `json:"created_at"`
	UpdatedAt     time.Time `json:"updated_at"`
	RecordCount   int       `json:"record_count"`
	K             int       `json:"k"`
	SignatureSize int       `json:"signature_size"`
	Scheme        Scheme    `json:"scheme,omitempty"`
	Bits          int       `json:"bits,omitempty"`
	Bands         int       `json:"bands,omitempty"`
	RowsPerBand   int       `json:"rows_per_band,omitempty"`
	Shards        int       `json:"shards,omitempty"`
}

// Index is an in-memory store of sketches keyed by record name,
// striped over N independently-locked shards so concurrent adds and
// probes on different stripes never contend. Each shard owns a
// contiguous packed signature arena (optionally truncated to b-bit
// slots; see sigArena) plus LSH band postings for sub-linear candidate
// filtering (see SearchTopKLSH). All methods are safe for concurrent
// use except Rebucket. Adds are incremental: a sketch whose name is
// already present is skipped, never overwritten.
type Index struct {
	// writeMu serializes structural rebuilds (Rebucket, EnableTiered,
	// SaveDir) against mutations (Add, Delete): mutators hold it shared,
	// rebuilds exclusively. Queries never touch it. Lock order is
	// writeMu -> ix.mu -> shard.mu -> shardWAL.mu.
	writeMu sync.RWMutex

	mu     sync.RWMutex // guards meta, order, gen, and the shards slice header
	meta   Metadata
	order  []string // insertion order, for deterministic iteration
	shards []*shard
	lsh    LSHParams
	bits   int
	gen    uint64     // bumped on every successful Add or Delete; see Generation
	tier   *tierState // non-nil once EnableTiered has run (or Open built the index)

	compactions   atomic.Uint64 // compaction passes that dropped rows
	compactedRows atomic.Uint64 // tombstoned rows reclaimed by compaction
}

// NewIndex returns an empty index accepting sketches with the given
// shingle length and signature size, using the default sketch scheme,
// banding scheme, shard count, and full-width (64-bit) signature
// storage. Use NewIndexWith to configure those.
func NewIndex(name string, k, sigSize int) *Index {
	if ix, err := NewIndexWith(name, k, sigSize, DefaultScheme, DefaultLSHParams(sigSize), DefaultShards, DefaultBits); err == nil {
		return ix
	}
	// Non-positive sigSize: keep the old never-fail contract with a
	// placeholder single-band scheme. Such an index rejects every add
	// through signature-size validation, so the scheme is never probed.
	now := time.Now().UTC()
	lsh := LSHParams{Bands: 1, RowsPerBand: 1}
	return &Index{
		meta: Metadata{
			Name:          name,
			Version:       Version,
			Format:        CurrentFormat,
			CreatedAt:     now,
			UpdatedAt:     now,
			K:             k,
			SignatureSize: sigSize,
			Scheme:        DefaultScheme,
			Bits:          DefaultBits,
			Bands:         lsh.Bands,
			RowsPerBand:   lsh.RowsPerBand,
			Shards:        DefaultShards,
		},
		shards: newShards(DefaultShards, lsh, sigSize, DefaultBits),
		lsh:    lsh,
		bits:   DefaultBits,
	}
}

// NewIndexWith returns an empty index with an explicit sketch scheme,
// LSH banding scheme, shard count, and signature packing width (64, 16,
// or 8 bits per slot; 0 means DefaultBits). The empty scheme means
// legacy KMH, matching pre-v3 metadata.
func NewIndexWith(name string, k, sigSize int, scheme Scheme, lsh LSHParams, shards, bits int) (*Index, error) {
	scheme = normScheme(scheme)
	if scheme != SchemeOPH && scheme != SchemeKMH {
		return nil, fmt.Errorf("index %q: unknown scheme %q", name, scheme)
	}
	if _, err := NewLSHParams(lsh.Bands, lsh.RowsPerBand, sigSize); err != nil {
		return nil, fmt.Errorf("index %q: %w", name, err)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("index %q: shard count must be positive, got %d", name, shards)
	}
	bits, err := validBits(bits)
	if err != nil {
		return nil, fmt.Errorf("index %q: %w", name, err)
	}
	now := time.Now().UTC()
	return &Index{
		meta: Metadata{
			Name:          name,
			Version:       Version,
			Format:        CurrentFormat,
			CreatedAt:     now,
			UpdatedAt:     now,
			K:             k,
			SignatureSize: sigSize,
			Scheme:        scheme,
			Bits:          bits,
			Bands:         lsh.Bands,
			RowsPerBand:   lsh.RowsPerBand,
			Shards:        shards,
		},
		shards: newShards(shards, lsh, sigSize, bits),
		lsh:    lsh,
		bits:   bits,
	}, nil
}

// Add inserts s if no record with the same name exists. It reports
// whether the sketch was added; false with a nil error means the name
// already existed and the add was skipped. The signature is packed into
// the owning shard's arena: at packing widths below 64 only the low b
// bits of every slot are stored.
func (ix *Index) Add(s *Sketch) (bool, error) {
	if s.Name == "" {
		return false, fmt.Errorf("index: sketch has empty name")
	}
	if got, want := normScheme(s.Scheme), normScheme(ix.meta.Scheme); got != want {
		return false, fmt.Errorf("index %q: sketch scheme %q does not match index scheme %q",
			ix.meta.Name, got, want)
	}
	if s.K != ix.meta.K {
		return false, fmt.Errorf("index %q: sketch k %d does not match index k %d",
			ix.meta.Name, s.K, ix.meta.K)
	}
	if len(s.Signature) != ix.meta.SignatureSize {
		return false, fmt.Errorf("index %q: signature size %d does not match index size %d",
			ix.meta.Name, len(s.Signature), ix.meta.SignatureSize)
	}
	// Full-width sketches are always accepted (packing truncates them);
	// a sketch already truncated to b bits only fits an index of the
	// same width — repacking it elsewhere would store garbage lanes.
	if b := normSketchBits(s.Bits); b != 64 && b != ix.bits {
		return false, fmt.Errorf("index %q: sketch holds %d-bit truncated slots but the index packs at %d bits",
			ix.meta.Name, b, ix.bits)
	}
	// Shared writeMu spans the shard insert and the order append, so a
	// structural rebuild (Rebucket, SaveDir) can never observe a record
	// that is in a shard but not yet in order.
	ix.writeMu.RLock()
	defer ix.writeMu.RUnlock()
	ix.mu.RLock()
	shards := ix.shards
	tiered := ix.tier != nil
	ix.mu.RUnlock()
	// A tiered index stores the full-width signature on disk; a
	// pre-truncated sketch has nothing to store there.
	if tiered && normSketchBits(s.Bits) != 64 {
		return false, fmt.Errorf("index %q: tiered index requires full-width sketches, got %d-bit truncated slots",
			ix.meta.Name, normSketchBits(s.Bits))
	}
	// Same-named adds always land on the same shard, whose lock
	// serializes the existence check against the insert.
	added, err := shards[shardFor(s.Name, len(shards))].add(s)
	if err != nil {
		return false, fmt.Errorf("index %q: %w", ix.meta.Name, err)
	}
	if !added {
		return false, nil
	}
	ix.mu.Lock()
	ix.order = append(ix.order, s.Name)
	ix.meta.RecordCount = len(ix.order)
	ix.meta.UpdatedAt = time.Now().UTC()
	ix.gen++
	ix.mu.Unlock()
	return true, nil
}

// Delete tombstones the record named name and reports whether it was
// present. The record disappears from every lookup and search
// immediately; its arena row is reclaimed by the next compaction (see
// Compact and SaveDir). On a WAL-attached tiered index the tombstone is
// logged, so an acknowledged delete survives a crash the same way an
// acknowledged add does — call SyncWAL (or Engine.Delete, which does)
// before acking. Deleting frees the name: a later Add with the same
// name succeeds and is a fresh record.
func (ix *Index) Delete(name string) (bool, error) {
	if name == "" {
		return false, fmt.Errorf("index: delete with empty name")
	}
	ix.writeMu.RLock()
	defer ix.writeMu.RUnlock()
	ix.mu.RLock()
	shards := ix.shards
	ix.mu.RUnlock()
	if !shards[shardFor(name, len(shards))].delete(name) {
		return false, nil
	}
	ix.mu.Lock()
	// Insertion order is kept dense for deterministic iteration;
	// deletes pay the O(n) removal, which is fine at the delete rates a
	// tombstone design targets.
	if i := slices.Index(ix.order, name); i >= 0 {
		ix.order = slices.Delete(ix.order, i, i+1)
	}
	ix.meta.RecordCount = len(ix.order)
	ix.meta.UpdatedAt = time.Now().UTC()
	ix.gen++
	ix.mu.Unlock()
	return true, nil
}

// SyncWAL flushes and fsyncs every shard's write-ahead log — the
// durability barrier an ack must wait on. Shards with nothing buffered
// skip their fsync, so the cost tracks the shards actually touched. It
// is a no-op (nil error) when no WAL is attached: either a non-tiered
// index, or a tiered directory that has not committed its first
// manifest yet.
func (ix *Index) SyncWAL() error {
	shards := ix.snapshotShards()
	var first error
	for _, sh := range shards {
		if w := sh.wal.Load(); w != nil {
			if err := w.sync(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Tombstones returns the number of tombstoned (deleted but not yet
// compacted) arena rows and the total arena row count.
func (ix *Index) Tombstones() (dead, rows int) {
	for _, sh := range ix.snapshotShards() {
		d, r := sh.deadCount()
		dead += d
		rows += r
	}
	return dead, rows
}

// DefaultCompactThreshold is the tombstone ratio (dead rows over total
// rows, per shard) at which SaveDir compacts a stripe before
// snapshotting it.
const DefaultCompactThreshold = 0.25

// Compact rewrites every stripe that holds tombstoned rows, reclaiming
// their arena (and, on tiered indexes, segment) space. Search results
// are unchanged — deleted rows were already invisible — and it is safe
// to run on a live index: each stripe is rebuilt under its own lock,
// and in-flight queries that captured candidates against the old row
// numbering detect the generation change and rescan.
func (ix *Index) Compact() error {
	ix.mu.RLock()
	shards := ix.shards
	lsh := ix.lsh
	slots := ix.meta.SignatureSize
	bits := ix.bits
	name := ix.meta.Name
	ix.mu.RUnlock()
	for _, sh := range shards {
		sh.mu.Lock()
		dropped, err := sh.compactLocked(lsh, slots, bits)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("index %q: compact: %w", name, err)
		}
		if dropped > 0 {
			ix.compactions.Add(1)
			ix.compactedRows.Add(uint64(dropped))
		}
	}
	return nil
}

// WALStats is the observable write-ahead-log state, surfaced through
// Stats and /stats. Frames and Bytes are the log depth since the last
// snapshot truncated it; FsyncNanos over Fsyncs is the mean fsync
// latency the ack path is paying.
type WALStats struct {
	Frames         int64  `json:"frames"`
	Bytes          int64  `json:"bytes"`
	Appends        uint64 `json:"appends"`
	Fsyncs         uint64 `json:"fsyncs"`
	FsyncNanos     uint64 `json:"fsync_nanos"`
	ReplayedFrames uint64 `json:"replayed_frames"`
	TornBytes      uint64 `json:"torn_bytes"`
}

// WAL returns a snapshot of write-ahead-log state, or nil when no WAL
// is attached (non-tiered index, or no committed manifest yet).
func (ix *Index) WAL() *WALStats {
	ix.mu.RLock()
	tier := ix.tier
	ix.mu.RUnlock()
	if tier == nil {
		return nil
	}
	st := &WALStats{
		Appends:        tier.walAppends.Load(),
		Fsyncs:         tier.walFsyncs.Load(),
		FsyncNanos:     tier.walFsyncNanos.Load(),
		ReplayedFrames: tier.walReplayed.Load(),
		TornBytes:      tier.walTornBytes.Load(),
	}
	attached := false
	for _, sh := range ix.snapshotShards() {
		if w := sh.wal.Load(); w != nil {
			attached = true
			frames, bytes := w.depth()
			st.Frames += frames
			st.Bytes += bytes
		}
	}
	if !attached {
		return nil
	}
	return st
}

// Generation returns a counter that increments on every successful Add
// or Delete. It is the snapshot hook for long-lived servers: remember the
// generation at the last save and skip the next one when it has not
// moved, so idle periods never rewrite an unchanged index file.
func (ix *Index) Generation() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.gen
}

// Occupancy returns the number of records held by each shard stripe, in
// stripe order. It is an observability aid: a heavily skewed occupancy
// means one stripe's lock is carrying most of the write traffic.
func (ix *Index) Occupancy() []int {
	ix.mu.RLock()
	shards := ix.shards
	ix.mu.RUnlock()
	out := make([]int, len(shards))
	for i, sh := range shards {
		out[i] = sh.size()
	}
	return out
}

// ArenaStats is the memory footprint of the packed signature store,
// summed over every shard arena. BytesPerRecord is SignatureBytes over
// the record count (0 for an empty index); Utilization is live bytes
// over allocated capacity (append growth keeps headroom).
type ArenaStats struct {
	Bits           int     `json:"bits"`
	SignatureBytes int64   `json:"signature_bytes"`
	CapacityBytes  int64   `json:"capacity_bytes"`
	BytesPerRecord float64 `json:"bytes_per_record"`
	Utilization    float64 `json:"utilization"`
}

// Arena reports the signature arenas' aggregate memory footprint.
func (ix *Index) Arena() ArenaStats {
	ix.mu.RLock()
	shards := ix.shards
	bits := ix.bits
	ix.mu.RUnlock()
	st := ArenaStats{Bits: bits}
	records := 0
	for _, sh := range shards {
		used, capacity := sh.arenaBytes()
		st.SignatureBytes += used
		st.CapacityBytes += capacity
		records += sh.size()
	}
	if records > 0 {
		st.BytesPerRecord = float64(st.SignatureBytes) / float64(records)
	}
	if st.CapacityBytes > 0 {
		st.Utilization = float64(st.SignatureBytes) / float64(st.CapacityBytes)
	}
	return st
}

// Bits returns the signature packing width (64, 16, or 8).
func (ix *Index) Bits() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.bits
}

// Has reports whether a record named name is indexed, without
// reconstructing its sketch.
func (ix *Index) Has(name string) bool {
	ix.mu.RLock()
	shards := ix.shards
	ix.mu.RUnlock()
	return shards[shardFor(name, len(shards))].has(name)
}

// Get reconstructs the sketch named name from the arena, or returns nil
// if absent. At packing widths below 64 the returned slot values are
// the stored truncated lanes, not the original full-width minhashes.
func (ix *Index) Get(name string) *Sketch {
	ix.mu.RLock()
	shards := ix.shards
	k := ix.meta.K
	scheme := ix.meta.Scheme
	ix.mu.RUnlock()
	return shards[shardFor(name, len(shards))].getSketch(name, k, scheme)
}

// Len returns the number of indexed records.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.order)
}

// Names returns record names in insertion order.
func (ix *Index) Names() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, len(ix.order))
	copy(out, ix.order)
	return out
}

// Metadata returns a snapshot of the index metadata.
func (ix *Index) Metadata() Metadata {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.meta
}

// LSHParams returns the index's banding scheme.
func (ix *Index) LSHParams() LSHParams {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.lsh
}

// ShardCount returns the number of lock stripes.
func (ix *Index) ShardCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.shards)
}

// snapshotShards returns the current shard slice for query fan-out.
// Shards are append-only, and the structural rebuilds (a Rebucket that
// changes the shard count) swap in a fresh slice while leaving the old
// shards untouched, so holding the snapshot without ix.mu is safe:
// queries against the old snapshot stay internally consistent.
func (ix *Index) snapshotShards() []*shard {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.shards
}

// Rebucket retunes the LSH banding scheme (and, on non-tiered indexes,
// the shard count) without re-sketching; the packing width is preserved
// (repacking truncated lanes is lossless). It is safe on a live index:
// writers (Add, Delete) are briefly blocked on writeMu, but queries
// keep running throughout. With an unchanged shard count the band
// postings are rebuilt stripe by stripe under each stripe's own lock,
// so row numbering, full-width stores, and WALs all carry over; a
// changed shard count builds a fresh shard set and swaps it in, leaving
// in-flight queries a consistent view of the old one. Queries that
// overlap the swap may transiently probe with stale band keys — they
// lose candidates, never gain wrong results, because every candidate is
// still exact-scored.
//
// On a tiered index the shard count must stay what it is: on-disk
// segments are laid out by shard-local row order, and changing the
// stripe count would reshuffle records across shards and orphan every
// segment.
func (ix *Index) Rebucket(lsh LSHParams, shards int) error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	ix.mu.RLock()
	cur := ix.shards
	sigSize := ix.meta.SignatureSize
	bits := ix.bits
	k := ix.meta.K
	scheme := ix.meta.Scheme
	name := ix.meta.Name
	tiered := ix.tier != nil
	ix.mu.RUnlock()
	if _, err := NewLSHParams(lsh.Bands, lsh.RowsPerBand, sigSize); err != nil {
		return fmt.Errorf("index %q: rebucket: %w", name, err)
	}
	if shards <= 0 {
		return fmt.Errorf("index %q: rebucket: shard count must be positive, got %d", name, shards)
	}
	if tiered && shards != len(cur) {
		return fmt.Errorf("index %q: rebucket: cannot change the shard count of a tiered index (%d -> %d): on-disk segments are per-shard",
			name, len(cur), shards)
	}
	if shards == len(cur) {
		// Same stripe count: rebuild each stripe's postings in place.
		// Tombstoned rows drop out of the new postings for free.
		sig := make([]uint64, 0, sigSize)
		for _, sh := range cur {
			sh.mu.Lock()
			nb := newBandIndex(lsh)
			for i := range sh.names {
				if sh.rowDead(int32(i)) {
					continue
				}
				sig = sh.arena.appendUnpacked(sig[:0], i)
				nb.add(int32(i), sig, sh.mask)
			}
			sh.bands = nb
			sh.mu.Unlock()
		}
	} else {
		// Changed stripe count (non-tiered only): build fresh shards from
		// a read-locked walk of the old ones, then swap the slice header.
		fresh := newShards(shards, lsh, sigSize, bits)
		sig := make([]uint64, 0, sigSize)
		for _, old := range cur {
			old.mu.RLock()
			for i, nm := range old.names {
				if old.rowDead(int32(i)) {
					continue
				}
				sig = old.arena.appendUnpacked(sig[:0], i)
				// fresh shards have no full store attached, so add cannot fail.
				_, _ = fresh[shardFor(nm, shards)].add(&Sketch{
					Name:      nm,
					K:         k,
					Shingles:  int(old.shingles[i]),
					Scheme:    scheme,
					Bits:      bits,
					Signature: sig,
				})
			}
			old.mu.RUnlock()
		}
		ix.mu.Lock()
		ix.shards = fresh
		ix.mu.Unlock()
	}
	ix.mu.Lock()
	ix.lsh = lsh
	ix.meta.Bands = lsh.Bands
	ix.meta.RowsPerBand = lsh.RowsPerBand
	ix.meta.Shards = shards
	ix.mu.Unlock()
	return nil
}

// indexFile is the JSON serialization of an Index. Band postings are
// not serialized; they are derived from the signatures and rebuilt on
// load. Signatures are written as per-slot values (truncated to the
// packing width for b-bit indexes) so files stay debuggable and
// format-stable across packing layouts.
type indexFile struct {
	Meta     Metadata  `json:"meta"`
	Sketches []*Sketch `json:"sketches"`
}

// Save writes the index as JSON in the current format. Tiered indexes
// refuse: their full-width signatures live in segment files and the
// JSON layout has no slot for them (writing the truncated lanes under a
// v4 header would silently discard precision). Use SaveDir.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	if ix.tier != nil {
		ix.mu.RUnlock()
		return fmt.Errorf("index %q: tiered index cannot be saved as single-file JSON; use SaveDir", ix.meta.Name)
	}
	meta := ix.meta
	meta.Format = CurrentFormat
	meta.Bits = ix.bits
	f := indexFile{Meta: meta, Sketches: make([]*Sketch, 0, len(ix.order))}
	shards := ix.shards
	for _, n := range ix.order {
		f.Sketches = append(f.Sketches, shards[shardFor(n, len(shards))].getSketch(n, meta.K, meta.Scheme))
	}
	ix.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// SaveFile atomically writes the index to path: the JSON is written to
// a temporary file in the same directory, synced, and renamed over the
// destination, so a crash mid-save can never corrupt an existing index
// file.
func (ix *Index) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".index-*.tmp")
	if err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = ix.Save(f); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	// CreateTemp makes mode-0600 files; restore the 0644 a plain
	// os.Create would have produced so other readers keep access.
	if err = f.Chmod(0o644); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// LoadIndex reads an index previously written by Save. Format v1 files
// (no format field) load with the default banding scheme and shard
// count; v1 and v2 files predate sketch schemes and load as legacy KMH;
// v1–v3 files predate packing and load into full-width 64-bit arenas;
// files written by a newer engine are rejected. Every loaded sketch is
// stamped with the index scheme, so mixed-scheme comparisons fail even
// on sketches pulled out of the index directly.
func LoadIndex(r io.Reader) (*Index, error) {
	var f indexFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	if f.Meta.K <= 0 || f.Meta.SignatureSize <= 0 {
		return nil, fmt.Errorf("index: invalid metadata: k=%d signature_size=%d",
			f.Meta.K, f.Meta.SignatureSize)
	}
	var (
		lsh    LSHParams
		shards int
		scheme Scheme
		bits   int
		err    error
	)
	bits = DefaultBits // v1–v3 predate packing
	switch f.Meta.Format {
	case 0, FormatV1: // v1 files predate the format field
		lsh = DefaultLSHParams(f.Meta.SignatureSize)
		shards = DefaultShards
		scheme = SchemeKMH
	case FormatV2, FormatV3, FormatV4:
		if lsh, err = NewLSHParams(f.Meta.Bands, f.Meta.RowsPerBand, f.Meta.SignatureSize); err != nil {
			return nil, fmt.Errorf("index: invalid metadata: %w", err)
		}
		if shards = f.Meta.Shards; shards <= 0 {
			return nil, fmt.Errorf("index: invalid metadata: shards=%d", shards)
		}
		if f.Meta.Format == FormatV2 {
			scheme = SchemeKMH // v2 predates schemes; always k-minhash
			break
		}
		switch scheme = normScheme(f.Meta.Scheme); scheme {
		case SchemeOPH, SchemeKMH:
		default:
			return nil, fmt.Errorf("index: invalid metadata: unknown scheme %q", f.Meta.Scheme)
		}
		if f.Meta.Format == FormatV4 {
			if bits, err = validBits(f.Meta.Bits); err != nil {
				return nil, fmt.Errorf("index: invalid metadata: %w", err)
			}
		}
	case FormatV5, FormatV6:
		return nil, fmt.Errorf("index: format %d is the tiered directory format, not a JSON file; open its directory with core.Open", f.Meta.Format)
	default:
		return nil, fmt.Errorf("index: format %d is newer than this engine supports (max %d)",
			f.Meta.Format, FormatV6)
	}
	meta := f.Meta
	meta.Format = CurrentFormat
	meta.Scheme = scheme
	meta.Bits = bits
	meta.Bands = lsh.Bands
	meta.RowsPerBand = lsh.RowsPerBand
	meta.Shards = shards
	ix := &Index{
		meta:   meta,
		shards: newShards(shards, lsh, meta.SignatureSize, bits),
		lsh:    lsh,
		bits:   bits,
	}
	mask := laneMask(bits)
	for _, s := range f.Sketches {
		if s == nil {
			return nil, fmt.Errorf("index: null sketch entry")
		}
		if s.Name == "" {
			return nil, fmt.Errorf("index: sketch with empty name")
		}
		if s.K != f.Meta.K {
			return nil, fmt.Errorf("index: sketch %q k %d does not match metadata k %d",
				s.Name, s.K, f.Meta.K)
		}
		if len(s.Signature) != f.Meta.SignatureSize {
			return nil, fmt.Errorf("index: sketch %q signature size %d does not match metadata %d",
				s.Name, len(s.Signature), f.Meta.SignatureSize)
		}
		if bits < 64 {
			// A b-bit file must carry b-bit values; anything wider means
			// the file was corrupted or mislabeled.
			for _, v := range s.Signature {
				if v&^mask != 0 {
					return nil, fmt.Errorf("index: sketch %q slot value %d exceeds the %d-bit packing width",
						s.Name, v, bits)
				}
			}
		}
		s.Scheme = scheme
		s.Bits = bits
		// Freshly-built shards have no full store attached, so add can
		// only fail by reporting a duplicate.
		if added, _ := ix.shards[shardFor(s.Name, shards)].add(s); !added {
			return nil, fmt.Errorf("index: duplicate sketch name %q", s.Name)
		}
		ix.order = append(ix.order, s.Name)
	}
	ix.meta.RecordCount = len(ix.order)
	return ix, nil
}

// LoadIndexFile opens and loads a single-file JSON index.
//
// Deprecated: use Open, which detects the on-disk layout (JSON file or
// tiered directory) and dispatches accordingly.
func LoadIndexFile(path string) (*Index, error) { return loadIndexFile(path) }

func loadIndexFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	defer f.Close()
	return LoadIndex(f)
}

// sortResults orders by descending similarity, breaking ties by query
// then ref name so output is deterministic. slices.SortFunc rather than
// sort.Slice: the generic sort allocates nothing, keeping the pooled
// query path allocation-free.
func sortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		switch {
		case a.Similarity > b.Similarity:
			return -1
		case a.Similarity < b.Similarity:
			return 1
		}
		if c := strings.Compare(a.Query, b.Query); c != 0 {
			return c
		}
		return strings.Compare(a.Ref, b.Ref)
	})
}

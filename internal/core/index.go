package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Metadata describes an index; it is embedded in the JSON serialization
// and kept current as records are added.
type Metadata struct {
	Name          string    `json:"name"`
	Version       string    `json:"version"`
	CreatedAt     time.Time `json:"created_at"`
	UpdatedAt     time.Time `json:"updated_at"`
	RecordCount   int       `json:"record_count"`
	K             int       `json:"k"`
	SignatureSize int       `json:"signature_size"`
}

// Index is an in-memory store of sketches keyed by record name. All
// methods are safe for concurrent use. Adds are incremental: a sketch
// whose name is already present is skipped, never overwritten.
type Index struct {
	mu       sync.RWMutex
	meta     Metadata
	sketches map[string]*Sketch
	names    []string // insertion order, for deterministic iteration
}

// NewIndex returns an empty index accepting sketches with the given
// shingle length and signature size.
func NewIndex(name string, k, sigSize int) *Index {
	now := time.Now().UTC()
	return &Index{
		meta: Metadata{
			Name:          name,
			Version:       Version,
			CreatedAt:     now,
			UpdatedAt:     now,
			K:             k,
			SignatureSize: sigSize,
		},
		sketches: make(map[string]*Sketch),
	}
}

// Add inserts s if no record with the same name exists. It reports
// whether the sketch was added; false with a nil error means the name
// already existed and the add was skipped.
func (ix *Index) Add(s *Sketch) (bool, error) {
	if s.Name == "" {
		return false, fmt.Errorf("index: sketch has empty name")
	}
	if s.K != ix.meta.K {
		return false, fmt.Errorf("index %q: sketch k %d does not match index k %d",
			ix.meta.Name, s.K, ix.meta.K)
	}
	if len(s.Signature) != ix.meta.SignatureSize {
		return false, fmt.Errorf("index %q: signature size %d does not match index size %d",
			ix.meta.Name, len(s.Signature), ix.meta.SignatureSize)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, exists := ix.sketches[s.Name]; exists {
		return false, nil
	}
	ix.sketches[s.Name] = s
	ix.names = append(ix.names, s.Name)
	ix.meta.RecordCount = len(ix.sketches)
	ix.meta.UpdatedAt = time.Now().UTC()
	return true, nil
}

// Get returns the sketch named name, or nil if absent.
func (ix *Index) Get(name string) *Sketch {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.sketches[name]
}

// Len returns the number of indexed records.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sketches)
}

// Names returns record names in insertion order.
func (ix *Index) Names() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, len(ix.names))
	copy(out, ix.names)
	return out
}

// Metadata returns a snapshot of the index metadata.
func (ix *Index) Metadata() Metadata {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.meta
}

// snapshot returns the sketches in insertion order without copying the
// sketches themselves (they are immutable once added).
func (ix *Index) snapshot() []*Sketch {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]*Sketch, 0, len(ix.names))
	for _, n := range ix.names {
		out = append(out, ix.sketches[n])
	}
	return out
}

// indexFile is the JSON serialization of an Index.
type indexFile struct {
	Meta     Metadata  `json:"meta"`
	Sketches []*Sketch `json:"sketches"`
}

// Save writes the index as JSON.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	f := indexFile{Meta: ix.meta, Sketches: make([]*Sketch, 0, len(ix.names))}
	for _, n := range ix.names {
		f.Sketches = append(f.Sketches, ix.sketches[n])
	}
	ix.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// LoadIndex reads an index previously written by Save.
func LoadIndex(r io.Reader) (*Index, error) {
	var f indexFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	if f.Meta.K <= 0 || f.Meta.SignatureSize <= 0 {
		return nil, fmt.Errorf("index: invalid metadata: k=%d signature_size=%d",
			f.Meta.K, f.Meta.SignatureSize)
	}
	ix := &Index{meta: f.Meta, sketches: make(map[string]*Sketch, len(f.Sketches))}
	for _, s := range f.Sketches {
		if s.Name == "" {
			return nil, fmt.Errorf("index: sketch with empty name")
		}
		if s.K != f.Meta.K {
			return nil, fmt.Errorf("index: sketch %q k %d does not match metadata k %d",
				s.Name, s.K, f.Meta.K)
		}
		if len(s.Signature) != f.Meta.SignatureSize {
			return nil, fmt.Errorf("index: sketch %q signature size %d does not match metadata %d",
				s.Name, len(s.Signature), f.Meta.SignatureSize)
		}
		if _, dup := ix.sketches[s.Name]; dup {
			return nil, fmt.Errorf("index: duplicate sketch name %q", s.Name)
		}
		ix.sketches[s.Name] = s
		ix.names = append(ix.names, s.Name)
	}
	ix.meta.RecordCount = len(ix.sketches)
	return ix, nil
}

// sortResults orders by descending similarity, breaking ties by ref
// name so output is deterministic.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Similarity != rs[j].Similarity {
			return rs[i].Similarity > rs[j].Similarity
		}
		if rs[i].Query != rs[j].Query {
			return rs[i].Query < rs[j].Query
		}
		return rs[i].Ref < rs[j].Ref
	})
}

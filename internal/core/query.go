package core

import "fmt"

// SearchMode selects how SearchTopK-style queries scan the index.
type SearchMode string

const (
	// ModeExact scores the query against every indexed sketch.
	ModeExact SearchMode = "exact"
	// ModeLSH probes LSH band buckets for candidates and exact-scores
	// only those, falling back to a full scan when the candidate set
	// cannot fill the requested K.
	ModeLSH SearchMode = "lsh"
)

// ParseSearchMode maps a CLI/config string onto a SearchMode. The empty
// string selects ModeLSH, the default.
func ParseSearchMode(s string) (SearchMode, error) {
	switch SearchMode(s) {
	case "":
		return ModeLSH, nil
	case ModeExact, ModeLSH:
		return SearchMode(s), nil
	default:
		return "", fmt.Errorf("search: unknown mode %q (want %q or %q)", s, ModeLSH, ModeExact)
	}
}

// PairwiseDistances computes all n*(n-1)/2 distinct pairwise
// comparisons among sketches, fanning out over pool. Results are sorted
// by descending similarity (ties broken by name) for stable output.
func PairwiseDistances(sketches []*Sketch, pool *Pool) ([]Result, error) {
	n := len(sketches)
	if n < 2 {
		return nil, nil
	}
	for i := 1; i < n; i++ {
		if err := compatible(sketches[0], sketches[i]); err != nil {
			return nil, err
		}
	}
	results := make([]Result, n*(n-1)/2)
	if pool == nil {
		pool = NewPool(0)
	}
	// Workers pull whole rows of the upper triangle; row i owns the
	// contiguous result range starting at its triangular offset, so no
	// O(n^2) pair list is materialized. Dynamic row pull via Map's
	// atomic counter balances the shrinking row lengths.
	pool.Map(n-1, func(i int) {
		a := sketches[i]
		base := i * (2*n - i - 1) / 2
		for j := i + 1; j < n; j++ {
			b := sketches[j]
			sim, _ := Similarity(a, b) // compatibility pre-checked above
			results[base+j-i-1] = Result{Query: a.Name, Ref: b.Name, Similarity: sim, Distance: 1 - sim}
		}
	})
	sortResults(results)
	return results, nil
}

// SearchTopK compares query against every sketch in ix concurrently and
// returns up to topK results with similarity >= minSim, best first.
// An index record that is the query itself — same name AND same
// signature — is skipped so self-hits do not crowd out real neighbors.
// A same-named record with different content (e.g. the file changed
// after indexing) is still reported.
func SearchTopK(ix *Index, query *Sketch, topK int, minSim float64, pool *Pool) ([]Result, error) {
	if err := checkSearchArgs(ix, query, topK); err != nil {
		return nil, err
	}
	return scoreRefs(ix.snapshot(), query, topK, minSim, pool), nil
}

// SearchTopKLSH is the sub-linear counterpart of SearchTopK: it probes
// the index's LSH band buckets for candidates and exact-scores only
// those, so cost scales with the number of plausible matches rather
// than the corpus size. When the scored candidates cannot fill the
// requested K — too few candidates, a filtered self-hit, or a minSim
// cut — it falls back to a full SearchTopK scan, so small or sparse
// indexes behave exactly like exact mode. When it does return a full
// K, completeness is probabilistic: pairs with similarity well above
// ix.LSHParams().Threshold() are candidates almost surely, pairs well
// below it are skipped by design.
func SearchTopKLSH(ix *Index, query *Sketch, topK int, minSim float64, pool *Pool) ([]Result, error) {
	if err := checkSearchArgs(ix, query, topK); err != nil {
		return nil, err
	}
	cands := ix.lshCandidates(query.Signature)
	if len(cands) >= ix.Len() {
		return scoreRefs(ix.snapshot(), query, topK, minSim, pool), nil
	}
	results := scoreRefs(cands, query, topK, minSim, pool)
	if len(results) >= topK {
		return results, nil
	}
	// Fallback: score only the records the candidate pass skipped, then
	// merge, so no sketch is scored twice.
	inCands := make(map[string]struct{}, len(cands))
	for _, c := range cands {
		inCands[c.Name] = struct{}{}
	}
	var rest []*Sketch
	for _, s := range ix.snapshot() {
		if _, ok := inCands[s.Name]; !ok {
			rest = append(rest, s)
		}
	}
	results = append(results, scoreRefs(rest, query, topK, minSim, pool)...)
	sortResults(results)
	if len(results) > topK {
		results = results[:topK]
	}
	return results, nil
}

func checkSearchArgs(ix *Index, query *Sketch, topK int) error {
	if topK <= 0 {
		return fmt.Errorf("search: topK must be positive, got %d", topK)
	}
	meta := ix.Metadata()
	if query.K != meta.K || len(query.Signature) != meta.SignatureSize {
		return fmt.Errorf("search: query sketch (k=%d, size=%d) incompatible with index %q (k=%d, size=%d)",
			query.K, len(query.Signature), meta.Name, meta.K, meta.SignatureSize)
	}
	return nil
}

// scoreRefs exact-scores query against refs over pool, filters
// self-hits and sub-minSim results, and returns the sorted top K.
// Compatibility of refs with query must be pre-checked by the caller.
func scoreRefs(refs []*Sketch, query *Sketch, topK int, minSim float64, pool *Pool) []Result {
	if len(refs) == 0 {
		return nil
	}
	if pool == nil {
		pool = NewPool(0)
	}
	results := make([]Result, len(refs))
	pool.Map(len(refs), func(i int) {
		ref := refs[i]
		if ref.Name == query.Name && sameSignature(ref, query) {
			results[i] = Result{Similarity: -1} // sentinel, filtered below
			return
		}
		sim, _ := Similarity(query, ref) // compatibility pre-checked by caller
		results[i] = Result{Query: query.Name, Ref: ref.Name, Similarity: sim, Distance: 1 - sim}
	})
	kept := results[:0]
	for _, r := range results {
		if r.Similarity >= 0 && r.Similarity >= minSim {
			kept = append(kept, r)
		}
	}
	sortResults(kept)
	if len(kept) > topK {
		kept = kept[:topK]
	}
	return kept
}

func sameSignature(a, b *Sketch) bool {
	if len(a.Signature) != len(b.Signature) {
		return false
	}
	for i := range a.Signature {
		if a.Signature[i] != b.Signature[i] {
			return false
		}
	}
	return true
}

package core

import (
	"fmt"
	"sync"
)

// SearchMode selects how SearchTopK-style queries scan the index.
type SearchMode string

const (
	// ModeExact scores the query against every indexed sketch.
	ModeExact SearchMode = "exact"
	// ModeLSH probes LSH band buckets for candidates and exact-scores
	// only those, falling back to a full scan when the candidate set
	// cannot fill the requested K.
	ModeLSH SearchMode = "lsh"
)

// ParseSearchMode maps a CLI/config string onto a SearchMode. The empty
// string selects ModeLSH, the default.
func ParseSearchMode(s string) (SearchMode, error) {
	switch SearchMode(s) {
	case "":
		return ModeLSH, nil
	case ModeExact, ModeLSH:
		return SearchMode(s), nil
	default:
		return "", fmt.Errorf("search: unknown mode %q (want %q or %q)", s, ModeLSH, ModeExact)
	}
}

// parallelScoreMin is the candidate count below which scoring runs
// inline instead of fanning out over the pool: spawning workers costs
// a few goroutine wakeups and closure allocations, which the word-packed
// comparator out-runs until the corpus is several thousand sketches.
// Keeping small scans inline is also what makes steady-state SearchTopK
// allocation-free.
const parallelScoreMin = 4096

// searchBuf holds the scratch state of one top-K search: the candidate
// slice, the scored results, and the LSH dedup set. Buffers are pooled
// and reused across searches, so a steady-state search allocates only
// the result slice it returns.
type searchBuf struct {
	refs    []*Sketch
	rest    []*Sketch
	results []Result
	seen    map[string]struct{}
}

var searchBufPool = sync.Pool{
	New: func() any { return &searchBuf{seen: make(map[string]struct{})} },
}

func getSearchBuf() *searchBuf { return searchBufPool.Get().(*searchBuf) }

func putSearchBuf(b *searchBuf) {
	b.refs = b.refs[:0]
	b.rest = b.rest[:0]
	b.results = b.results[:0]
	clear(b.seen)
	searchBufPool.Put(b)
}

// PairwiseDistances computes all n*(n-1)/2 distinct pairwise
// comparisons among sketches, fanning out over pool. Results are sorted
// by descending similarity (ties broken by name) for stable output.
func PairwiseDistances(sketches []*Sketch, pool *Pool) ([]Result, error) {
	n := len(sketches)
	if n < 2 {
		return nil, nil
	}
	for i := 1; i < n; i++ {
		if err := compatible(sketches[0], sketches[i]); err != nil {
			return nil, err
		}
	}
	results := make([]Result, n*(n-1)/2)
	if pool == nil {
		pool = NewPool(0)
	}
	// Workers pull whole rows of the upper triangle; row i owns the
	// contiguous result range starting at its triangular offset, so no
	// O(n^2) pair list is materialized. Dynamic row pull via Map's
	// atomic counter balances the shrinking row lengths.
	pool.Map(n-1, func(i int) {
		a := sketches[i]
		base := i * (2*n - i - 1) / 2
		for j := i + 1; j < n; j++ {
			b := sketches[j]
			sim, _ := Similarity(a, b) // compatibility pre-checked above
			results[base+j-i-1] = Result{Query: a.Name, Ref: b.Name, Similarity: sim, Distance: 1 - sim}
		}
	})
	sortResults(results)
	return results, nil
}

// SearchTopK compares query against every sketch in ix and returns up
// to topK results with similarity >= minSim, best first. An index
// record that is the query itself — same name AND same signature — is
// skipped so self-hits do not crowd out real neighbors. A same-named
// record with different content (e.g. the file changed after indexing)
// is still reported. Scratch state comes from a pool, so steady-state
// calls allocate only the returned slice.
func SearchTopK(ix *Index, query *Sketch, topK int, minSim float64, pool *Pool) ([]Result, error) {
	if err := checkSearchArgs(ix, query, topK); err != nil {
		return nil, err
	}
	buf := getSearchBuf()
	defer putSearchBuf(buf)
	buf.refs = ix.appendAll(buf.refs[:0])
	buf.results = scoreAppend(buf.results[:0], buf.refs, query, minSim, pool)
	return finishResults(buf.results, topK), nil
}

// SearchTopKLSH is the sub-linear counterpart of SearchTopK: it probes
// the index's LSH band buckets for candidates and exact-scores only
// those, so cost scales with the number of plausible matches rather
// than the corpus size. When the scored candidates cannot fill the
// requested K — too few candidates, a filtered self-hit, or a minSim
// cut — it falls back to scoring the rest of the corpus, so small or
// sparse indexes behave exactly like exact mode. When it does return a
// full K, completeness is probabilistic: pairs with similarity well
// above ix.LSHParams().Threshold() are candidates almost surely, pairs
// well below it are skipped by design.
func SearchTopKLSH(ix *Index, query *Sketch, topK int, minSim float64, pool *Pool) ([]Result, error) {
	if err := checkSearchArgs(ix, query, topK); err != nil {
		return nil, err
	}
	buf := getSearchBuf()
	defer putSearchBuf(buf)
	buf.refs = ix.appendLSHCandidates(query.Signature, buf.seen, buf.refs[:0])
	buf.results = scoreAppend(buf.results[:0], buf.refs, query, minSim, pool)
	if len(buf.results) < topK && len(buf.refs) < ix.Len() {
		// Fallback: score only the records the candidate pass skipped
		// (every candidate name is in buf.seen), so no sketch is scored
		// twice and the merged set matches an exact scan.
		buf.rest = ix.appendAllExcept(buf.seen, buf.rest[:0])
		buf.results = scoreAppend(buf.results, buf.rest, query, minSim, pool)
	}
	return finishResults(buf.results, topK), nil
}

func checkSearchArgs(ix *Index, query *Sketch, topK int) error {
	if topK <= 0 {
		return fmt.Errorf("search: topK must be positive, got %d", topK)
	}
	meta := ix.Metadata()
	if got, want := normScheme(query.Scheme), normScheme(meta.Scheme); got != want {
		return fmt.Errorf("search: query sketch scheme %q incompatible with index %q scheme %q",
			got, meta.Name, want)
	}
	if query.K != meta.K || len(query.Signature) != meta.SignatureSize {
		return fmt.Errorf("search: query sketch (k=%d, size=%d) incompatible with index %q (k=%d, size=%d)",
			query.K, len(query.Signature), meta.Name, meta.K, meta.SignatureSize)
	}
	return nil
}

// scoreAppend exact-scores query against refs, appending results that
// pass the self-hit and minSim filters to dst. Large ref sets fan out
// over pool; small ones score inline, allocation-free. Compatibility of
// refs with query must be pre-checked by the caller.
func scoreAppend(dst []Result, refs []*Sketch, query *Sketch, minSim float64, pool *Pool) []Result {
	if len(refs) == 0 {
		return dst
	}
	base := len(dst)
	if need := base + len(refs); cap(dst) < need {
		grown := make([]Result, need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:need]
	}
	if len(refs) >= parallelScoreMin {
		if pool == nil {
			pool = NewPool(0) // nil keeps the old GOMAXPROCS fan-out contract
		}
		pool.Map(len(refs), func(i int) {
			scoreOne(dst, base+i, refs[i], query)
		})
	} else {
		for i, ref := range refs {
			scoreOne(dst, base+i, ref, query)
		}
	}
	// Compact in place: the write index never passes the read index.
	kept := dst[:base]
	for _, r := range dst[base:] {
		if r.Similarity >= 0 && r.Similarity >= minSim {
			kept = append(kept, r)
		}
	}
	return kept
}

// scoreOne scores one reference into dst[i], writing the Similarity=-1
// sentinel for self-hits so the compaction pass drops them. It inlines
// Similarity minus the compatibility checks, which checkSearchArgs
// already ran once for the whole query — per-ref re-validation was
// measurable at these per-comparison costs.
func scoreOne(dst []Result, i int, ref, query *Sketch) {
	if ref.Name == query.Name && sameSignature(ref, query) {
		dst[i] = Result{Similarity: -1}
		return
	}
	var sim float64
	if n := len(query.Signature); n != 0 && query.Shingles != 0 && ref.Shingles != 0 {
		sim = float64(matchingSlots(query.Signature, ref.Signature)) / float64(n)
	}
	dst[i] = Result{Query: query.Name, Ref: ref.Name, Similarity: sim, Distance: 1 - sim}
}

// finishResults reduces kept (which may alias a pooled buffer) to its
// topK best-ranked results, sorts them, and copies them out so the
// pooled backing array never escapes to the caller. The bounded-heap
// selection runs in O(n log k) and sorts only the K survivors, so a
// full-corpus scan never pays an O(n log n) sort for a top-10 answer.
// Empty result sets return nil.
func finishResults(kept []Result, topK int) []Result {
	if len(kept) == 0 {
		return nil
	}
	if len(kept) > topK {
		selectTopK(kept, topK)
		kept = kept[:topK]
	}
	sortResults(kept)
	out := make([]Result, len(kept))
	copy(out, kept)
	return out
}

// resultBetter reports whether a ranks strictly before b: descending
// similarity, ties broken by query then ref name. It is the same total
// order sortResults applies, so heap selection plus a final sort of the
// survivors returns exactly what sorting everything would have.
func resultBetter(a, b Result) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity > b.Similarity
	}
	if a.Query != b.Query {
		return a.Query < b.Query
	}
	return a.Ref < b.Ref
}

// selectTopK partitions rs in place so its first k elements are the k
// best-ranked results (in unspecified order). rs[:k] is kept as a
// min-heap whose root is the worst retained result; every later element
// that beats the root replaces it.
func selectTopK(rs []Result, k int) {
	h := rs[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftWorstDown(h, i)
	}
	for i := k; i < len(rs); i++ {
		if resultBetter(rs[i], h[0]) {
			h[0], rs[i] = rs[i], h[0]
			siftWorstDown(h, 0)
		}
	}
}

// siftWorstDown restores the "parent is no better than its children"
// invariant from index i downward, keeping the worst retained result at
// the root.
func siftWorstDown(h []Result, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		w := l
		if r := l + 1; r < len(h) && resultBetter(h[l], h[r]) {
			w = r
		}
		if !resultBetter(h[i], h[w]) {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}

func sameSignature(a, b *Sketch) bool {
	return len(a.Signature) == len(b.Signature) &&
		matchingSlots(a.Signature, b.Signature) == len(a.Signature)
}

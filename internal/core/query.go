package core

import "fmt"

// PairwiseDistances computes all n*(n-1)/2 distinct pairwise
// comparisons among sketches, fanning out over pool. Results are sorted
// by descending similarity (ties broken by name) for stable output.
func PairwiseDistances(sketches []*Sketch, pool *Pool) ([]Result, error) {
	n := len(sketches)
	if n < 2 {
		return nil, nil
	}
	for i := 1; i < n; i++ {
		if err := compatible(sketches[0], sketches[i]); err != nil {
			return nil, err
		}
	}
	results := make([]Result, n*(n-1)/2)
	if pool == nil {
		pool = NewPool(0)
	}
	// Workers pull whole rows of the upper triangle; row i owns the
	// contiguous result range starting at its triangular offset, so no
	// O(n^2) pair list is materialized. Dynamic row pull via Map's
	// atomic counter balances the shrinking row lengths.
	pool.Map(n-1, func(i int) {
		a := sketches[i]
		base := i * (2*n - i - 1) / 2
		for j := i + 1; j < n; j++ {
			b := sketches[j]
			sim, _ := Similarity(a, b) // compatibility pre-checked above
			results[base+j-i-1] = Result{Query: a.Name, Ref: b.Name, Similarity: sim, Distance: 1 - sim}
		}
	})
	sortResults(results)
	return results, nil
}

// SearchTopK compares query against every sketch in ix concurrently and
// returns up to topK results with similarity >= minSim, best first.
// An index record that is the query itself — same name AND same
// signature — is skipped so self-hits do not crowd out real neighbors.
// A same-named record with different content (e.g. the file changed
// after indexing) is still reported.
func SearchTopK(ix *Index, query *Sketch, topK int, minSim float64, pool *Pool) ([]Result, error) {
	if topK <= 0 {
		return nil, fmt.Errorf("search: topK must be positive, got %d", topK)
	}
	meta := ix.Metadata()
	if query.K != meta.K || len(query.Signature) != meta.SignatureSize {
		return nil, fmt.Errorf("search: query sketch (k=%d, size=%d) incompatible with index %q (k=%d, size=%d)",
			query.K, len(query.Signature), meta.Name, meta.K, meta.SignatureSize)
	}
	refs := ix.snapshot()
	if len(refs) == 0 {
		return nil, nil
	}
	if pool == nil {
		pool = NewPool(0)
	}
	results := make([]Result, len(refs))
	pool.Map(len(refs), func(i int) {
		ref := refs[i]
		if ref.Name == query.Name && sameSignature(ref, query) {
			results[i] = Result{Similarity: -1} // sentinel, filtered below
			return
		}
		sim, _ := Similarity(query, ref) // compatibility pre-checked above
		results[i] = Result{Query: query.Name, Ref: ref.Name, Similarity: sim, Distance: 1 - sim}
	})
	kept := results[:0]
	for _, r := range results {
		if r.Similarity >= 0 && r.Similarity >= minSim {
			kept = append(kept, r)
		}
	}
	sortResults(kept)
	if len(kept) > topK {
		kept = kept[:topK]
	}
	return kept, nil
}

func sameSignature(a, b *Sketch) bool {
	if len(a.Signature) != len(b.Signature) {
		return false
	}
	for i := range a.Signature {
		if a.Signature[i] != b.Signature[i] {
			return false
		}
	}
	return true
}

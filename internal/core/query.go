package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// SearchMode selects how SearchTopK-style queries scan the index.
type SearchMode string

const (
	// ModeExact scores the query against every indexed sketch.
	ModeExact SearchMode = "exact"
	// ModeLSH probes LSH band buckets for candidates and exact-scores
	// only those, falling back to a full scan when the candidate set
	// cannot fill the requested K.
	ModeLSH SearchMode = "lsh"
)

// ParseSearchMode maps a CLI/config string onto a SearchMode. The empty
// string selects ModeLSH, the default.
func ParseSearchMode(s string) (SearchMode, error) {
	switch SearchMode(s) {
	case "":
		return ModeLSH, nil
	case ModeExact, ModeLSH:
		return SearchMode(s), nil
	default:
		return "", fmt.Errorf("search: unknown mode %q (want %q or %q)", s, ModeLSH, ModeExact)
	}
}

// parallelScoreMin is the comparison count below which scoring runs
// inline instead of fanning out per shard over the pool. Per-shard
// fan-out spawns at most one goroutine per stripe (not one task per
// record, as the pre-arena path did), so the break-even sits far lower
// than the old 4096: a few hundred arena rows already out-cost the
// shard count's worth of goroutine wakeups on a multicore box. Keeping
// small scans inline is also what makes steady-state SearchTopK
// allocation-free.
const parallelScoreMin = 512

// packedQuery is one query sketch prepared for arena scans: the
// signature packed to the index's width for word-parallel row
// comparisons, plus (LSH searches only) the precomputed band bucket
// keys — bandKey depends only on the query and the index-wide mask, so
// computing the keys once instead of once per shard saves
// (shards-1)*bands mix64 chains per probe.
type packedQuery struct {
	name     string
	shingles int
	slots    int
	packed   []uint64  // arena-width row image
	full     []uint64  // full-width signature; set only on tiered indexes
	bandKeys []uint64  // one bucket key per band; nil outside LSH probes
	cancel   *canceler // non-nil on ctx-aware searches; scan loops poll it
}

// cancelCheckEvery is how many rows a scan loop scores between
// cancellation polls. Polling is one atomic load on the common path, so
// the stride only has to amortize the ctx.Err() call.
const cancelCheckEvery = 1024

// canceler adapts a context for polling from the scan hot loops: the
// first goroutine to observe ctx expiry latches stop, and every other
// loop sees the latch with a single atomic load instead of re-deriving
// ctx.Err().
type canceler struct {
	ctx  context.Context
	stop atomic.Bool
}

// newCanceler returns nil for contexts that can never fire, keeping the
// background-search path free of polling entirely.
func newCanceler(ctx context.Context) *canceler {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &canceler{ctx: ctx}
}

// canceled polls the context. Safe on a nil receiver (never canceled).
func (c *canceler) canceled() bool {
	if c == nil {
		return false
	}
	if c.stop.Load() {
		return true
	}
	if c.ctx.Err() != nil {
		c.stop.Store(true)
		return true
	}
	return false
}

// err returns the context error once a scan aborted, nil otherwise.
func (c *canceler) err() error {
	if c == nil || !c.stop.Load() {
		return nil
	}
	return c.ctx.Err()
}

// scoredCand is one prefilter survivor: a shard-local row index and its
// packed matched-slot count, which upper-bounds the full-width count.
type scoredCand struct {
	idx     int32
	matched int32
}

// shardScratch is the per-shard scratch of one query: the candidate
// bitset and index list filled by the LSH probe, the shard's local
// result buffer for parallel scans, and (tiered indexes) the prefilter
// survivor list plus the pread-path row decode buffer.
type shardScratch struct {
	candSet []uint64 // bitset over shard-local record indexes
	cands   []int32
	results []Result
	scored  []scoredCand
	rsc     rowScratch

	// gen is the shard's structGen at probe time; a mismatch at scoring
	// time means a compaction reassigned row indexes in between, and the
	// captured candidates must not be trusted. fullScanned records that
	// the scoring pass already swept every row (the stale-generation
	// fallback), so the complement pass has nothing left to do.
	gen         uint64
	fullScanned bool
}

// resetFor clears the scratch for a shard currently holding n records.
func (sc *shardScratch) resetFor(n int) {
	words := (n + 63) >> 6
	if cap(sc.candSet) < words {
		sc.candSet = make([]uint64, words)
	} else {
		sc.candSet = sc.candSet[:words]
		clear(sc.candSet)
	}
	sc.cands = sc.cands[:0]
	sc.fullScanned = false
}

// searchBuf holds the scratch state of one top-K search: the packed
// query image, per-shard scratch, and the merged result buffer.
// Buffers are pooled and reused across searches, so a steady-state
// search allocates only the result slice it returns.
type searchBuf struct {
	q       packedQuery
	packed  []uint64
	keys    []uint64
	merged  []Result
	scratch []shardScratch
}

var searchBufPool = sync.Pool{New: func() any { return new(searchBuf) }}

func getSearchBuf() *searchBuf { return searchBufPool.Get().(*searchBuf) }

func putSearchBuf(b *searchBuf) {
	b.q = packedQuery{}
	b.packed = b.packed[:0]
	b.keys = b.keys[:0]
	b.merged = b.merged[:0]
	searchBufPool.Put(b)
}

// prepare packs the query for ix's arena width and sizes the per-shard
// scratch.
func (b *searchBuf) prepare(ix *Index, query *Sketch, shards int) *packedQuery {
	b.merged = b.merged[:0]
	b.packed = packSignatureAppend(b.packed[:0], query.Signature, ix.Bits())
	b.q = packedQuery{
		name:     query.Name,
		shingles: query.Shingles,
		slots:    len(query.Signature),
		packed:   b.packed,
	}
	if ix.Tiered() {
		// checkSearchArgs has already required a full-width query sketch,
		// so the signature doubles as the rescore image.
		b.q.full = query.Signature
	}
	if cap(b.scratch) < shards {
		grown := make([]shardScratch, shards)
		copy(grown, b.scratch)
		b.scratch = grown
	} else {
		b.scratch = b.scratch[:shards]
	}
	return &b.q
}

// prepareBandKeys precomputes the query's bucket key for every band,
// masked to the index's packing width so the keys match what the
// shards stored at add time.
func (b *searchBuf) prepareBandKeys(ix *Index, query *Sketch) {
	lsh := ix.LSHParams()
	mask := laneMask(ix.Bits())
	b.keys = b.keys[:0]
	for band := 0; band < lsh.Bands; band++ {
		b.keys = append(b.keys, lsh.bandKey(band, query.Signature, mask))
	}
	b.q.bandKeys = b.keys
}

// PairwiseDistances computes all n*(n-1)/2 distinct pairwise
// comparisons among sketches, fanning out over pool. Results are sorted
// by descending similarity (ties broken by name) for stable output.
func PairwiseDistances(sketches []*Sketch, pool *Pool) ([]Result, error) {
	n := len(sketches)
	if n < 2 {
		return nil, nil
	}
	for i := 1; i < n; i++ {
		if err := compatible(sketches[0], sketches[i]); err != nil {
			return nil, err
		}
	}
	results := make([]Result, n*(n-1)/2)
	if pool == nil {
		pool = NewPool(0)
	}
	// Workers pull contiguous row ranges of the upper triangle, each
	// range owning a contiguous result span, so no O(n^2) pair list is
	// materialized. Row i holds n-1-i pairs, so equal row counts would
	// give wildly uneven work; ranges are instead balanced by pair
	// count, ~4 per worker, which bounds scheduling overhead while
	// keeping the tail ranges from starving.
	type rowRange struct{ lo, hi int }
	total := n * (n - 1) / 2
	chunks := 4 * pool.Workers()
	if chunks > n-1 {
		chunks = n - 1
	}
	target := (total + chunks - 1) / chunks
	ranges := make([]rowRange, 0, chunks)
	lo, acc := 0, 0
	for i := 0; i < n-1; i++ {
		acc += n - 1 - i
		if acc >= target || i == n-2 {
			ranges = append(ranges, rowRange{lo, i + 1})
			lo, acc = i+1, 0
		}
	}
	pool.Map(len(ranges), func(ci int) {
		for i := ranges[ci].lo; i < ranges[ci].hi; i++ {
			a := sketches[i]
			base := i * (2*n - i - 1) / 2
			for j := i + 1; j < n; j++ {
				b := sketches[j]
				sim, _ := Similarity(a, b) // compatibility pre-checked above
				results[base+j-i-1] = Result{Query: a.Name, Ref: b.Name, Similarity: sim, Distance: 1 - sim}
			}
		}
	})
	sortResults(results)
	return results, nil
}

// SearchTopK compares query against every sketch in ix and returns up
// to topK results with similarity >= minSim, best first. An index
// record that is the query itself — same name AND same signature — is
// skipped so self-hits do not crowd out real neighbors. A same-named
// record with different content (e.g. the file changed after indexing)
// is still reported. Large corpora fan out one goroutine per shard:
// each worker sweeps its stripe's packed arena sequentially, keeps a
// bounded local top-K, and the survivors are merged. Scratch state
// comes from a pool, so steady-state calls allocate only the returned
// slice.
func SearchTopK(ix *Index, query *Sketch, topK int, minSim float64, pool *Pool) ([]Result, error) {
	return SearchTopKCtx(context.Background(), ix, query, topK, minSim, pool)
}

// SearchTopKCtx is SearchTopK with cooperative cancellation: the scan
// loops poll ctx every cancelCheckEvery rows and the search returns
// ctx's error instead of a partial result set when it fires. A
// background context costs nothing extra.
func SearchTopKCtx(ctx context.Context, ix *Index, query *Sketch, topK int, minSim float64, pool *Pool) ([]Result, error) {
	if err := checkSearchArgs(ix, query, topK); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	buf := getSearchBuf()
	defer putSearchBuf(buf)
	shards := ix.snapshotShards()
	q := buf.prepare(ix, query, len(shards))
	q.cancel = newCanceler(ctx)
	scan := func(sh *shard, sc *shardScratch, dst []Result) []Result {
		return sh.scanAppend(dst, q, minSim)
	}
	if q.full != nil {
		scan = func(sh *shard, sc *shardScratch, dst []Result) []Result {
			return sh.tieredScanAppend(dst, q, minSim, topK, sc)
		}
	}
	merged := runScan(buf, shards, q, topK, minSim, pool, ix.Len(), scan)
	if err := q.cancel.err(); err != nil {
		return nil, err
	}
	return finishResults(merged, topK), nil
}

// SearchTopKLSH is the sub-linear counterpart of SearchTopK: it probes
// the index's LSH band buckets for candidates and exact-scores only
// those, so cost scales with the number of plausible matches rather
// than the corpus size. When the scored candidates cannot fill the
// requested K — too few candidates, a filtered self-hit, or a minSim
// cut — it falls back to scoring the rest of the corpus, so small or
// sparse indexes behave exactly like exact mode. When it does return a
// full K, completeness is probabilistic: pairs with similarity well
// above ix.LSHParams().Threshold() are candidates almost surely, pairs
// well below it are skipped by design. Candidate scoring and the
// fallback sweep fan out per shard when the row count justifies it.
func SearchTopKLSH(ix *Index, query *Sketch, topK int, minSim float64, pool *Pool) ([]Result, error) {
	return SearchTopKLSHCtx(context.Background(), ix, query, topK, minSim, pool)
}

// SearchTopKLSHCtx is SearchTopKLSH with cooperative cancellation,
// under the same contract as SearchTopKCtx.
func SearchTopKLSHCtx(ctx context.Context, ix *Index, query *Sketch, topK int, minSim float64, pool *Pool) ([]Result, error) {
	if err := checkSearchArgs(ix, query, topK); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	buf := getSearchBuf()
	defer putSearchBuf(buf)
	shards := ix.snapshotShards()
	q := buf.prepare(ix, query, len(shards))
	q.cancel = newCanceler(ctx)
	buf.prepareBandKeys(ix, query)
	// Probing is a handful of map lookups per shard; always inline.
	totalCand := 0
	for si, sh := range shards {
		sh.probeCandidates(q, &buf.scratch[si])
		totalCand += len(buf.scratch[si].cands)
	}
	scoreCands := func(sh *shard, sc *shardScratch, dst []Result) []Result {
		return sh.scoreCandidates(dst, q, minSim, sc)
	}
	scanRest := func(sh *shard, sc *shardScratch, dst []Result) []Result {
		return sh.scanRestAppend(dst, q, minSim, sc)
	}
	if q.full != nil {
		scoreCands = func(sh *shard, sc *shardScratch, dst []Result) []Result {
			return sh.tieredScoreCandidates(dst, q, minSim, topK, sc)
		}
		scanRest = func(sh *shard, sc *shardScratch, dst []Result) []Result {
			return sh.tieredScanRest(dst, q, minSim, topK, sc)
		}
	}
	merged := runScan(buf, shards, q, topK, minSim, pool, totalCand, scoreCands)
	if n := ix.Len(); len(merged) < topK && totalCand < n && !q.cancel.canceled() {
		// Fallback: score only the records the candidate pass skipped
		// (each shard's bitset marks its probed rows), so no record is
		// scored twice and the merged set matches an exact scan.
		merged = runScan(buf, shards, q, topK, minSim, pool, n-totalCand, scanRest)
	}
	if err := q.cancel.err(); err != nil {
		return nil, err
	}
	return finishResults(merged, topK), nil
}

// parallelPool decides whether a scan of `rows` comparisons is worth
// fanning out: it returns the pool to fan out on (a nil pool keeps the
// old GOMAXPROCS fan-out contract), or nil to scan inline.
func parallelPool(pool *Pool, rows int) *Pool {
	if rows < parallelScoreMin {
		return nil
	}
	if pool == nil {
		pool = NewPool(0)
	}
	if pool.Workers() <= 1 {
		return nil
	}
	return pool
}

// runScan scores q across the shards with scan — which appends one
// stripe's passing results to the slice it is handed — extending
// buf.merged with the survivors and returning it. Scans of fewer than
// parallelScoreMin rows run inline; larger ones fan out one goroutine
// per stripe, each appending into its own scratch buffer and
// truncating to a bounded top-K heap before the concatenation. The
// global top-K is contained in the union of per-shard top-Ks (heap
// selection uses the same resultBetter total order as the final sort),
// so truncating early keeps the merge and final sort O(shards*topK)
// instead of O(rows).
func runScan(buf *searchBuf, shards []*shard, q *packedQuery, topK int, minSim float64,
	pool *Pool, rows int, scan func(*shard, *shardScratch, []Result) []Result) []Result {
	p := parallelPool(pool, rows)
	if p == nil {
		merged := buf.merged
		for si, sh := range shards {
			merged = scan(sh, &buf.scratch[si], merged)
		}
		buf.merged = merged
		return merged
	}
	p.Map(len(shards), func(si int) {
		sc := &buf.scratch[si]
		sc.results = scan(shards[si], sc, sc.results[:0])
		if len(sc.results) > topK {
			selectTopK(sc.results, topK)
			sc.results = sc.results[:topK]
		}
	})
	merged := buf.merged
	for si := range shards {
		merged = append(merged, buf.scratch[si].results...)
	}
	buf.merged = merged
	return merged
}

func checkSearchArgs(ix *Index, query *Sketch, topK int) error {
	if topK <= 0 {
		return fmt.Errorf("search: topK must be positive, got %d", topK)
	}
	meta := ix.Metadata()
	if got, want := normScheme(query.Scheme), normScheme(meta.Scheme); got != want {
		return fmt.Errorf("search: query sketch scheme %q incompatible with index %q scheme %q",
			got, meta.Name, want)
	}
	if query.K != meta.K || len(query.Signature) != meta.SignatureSize {
		return fmt.Errorf("search: query sketch (k=%d, size=%d) incompatible with index %q (k=%d, size=%d)",
			query.K, len(query.Signature), meta.Name, meta.K, meta.SignatureSize)
	}
	if b := normSketchBits(query.Bits); b != 64 && b != meta.Bits {
		return fmt.Errorf("search: query sketch holds %d-bit truncated slots but index %q packs at %d bits",
			b, meta.Name, meta.Bits)
	}
	if ix.Tiered() && normSketchBits(query.Bits) != 64 {
		return fmt.Errorf("search: tiered index %q requires a full-width query sketch for rescoring, got %d-bit truncated slots",
			meta.Name, normSketchBits(query.Bits))
	}
	return nil
}

// MergeTopK reduces results (which may alias a pooled or shared
// buffer) to its topK best-ranked entries, sorts them, and copies them
// out so the input backing array never escapes to the caller. The
// bounded-heap selection runs in O(n log k) and sorts only the K
// survivors, so a full-corpus scan never pays an O(n log n) sort for a
// top-10 answer. The ranking is resultBetter's total order (descending
// similarity, ties by query then ref), the same order the per-shard
// heaps use — which is what makes merging concatenated per-shard (or,
// in the cluster coordinator, per-backend) top-Ks exact: the global
// top-K is always contained in the union of bounded local top-Ks.
// Empty inputs and topK <= 0 return nil.
func MergeTopK(results []Result, topK int) []Result {
	if len(results) == 0 || topK <= 0 {
		return nil
	}
	if len(results) > topK {
		selectTopK(results, topK)
		results = results[:topK]
	}
	sortResults(results)
	out := make([]Result, len(results))
	copy(out, results)
	return out
}

// finishResults is the in-process spelling of MergeTopK, kept so the
// search paths read as before.
func finishResults(kept []Result, topK int) []Result {
	return MergeTopK(kept, topK)
}

// resultBetter reports whether a ranks strictly before b: descending
// similarity, ties broken by query then ref name. It is the same total
// order sortResults applies, so heap selection plus a final sort of the
// survivors returns exactly what sorting everything would have.
func resultBetter(a, b Result) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity > b.Similarity
	}
	if a.Query != b.Query {
		return a.Query < b.Query
	}
	return a.Ref < b.Ref
}

// selectTopK partitions rs in place so its first k elements are the k
// best-ranked results (in unspecified order). rs[:k] is kept as a
// min-heap whose root is the worst retained result; every later element
// that beats the root replaces it.
func selectTopK(rs []Result, k int) {
	h := rs[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftWorstDown(h, i)
	}
	for i := k; i < len(rs); i++ {
		if resultBetter(rs[i], h[0]) {
			h[0], rs[i] = rs[i], h[0]
			siftWorstDown(h, 0)
		}
	}
}

// siftWorstDown restores the "parent is no better than its children"
// invariant from index i downward, keeping the worst retained result at
// the root.
func siftWorstDown(h []Result, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		w := l
		if r := l + 1; r < len(h) && resultBetter(h[l], h[r]) {
			w = r
		}
		if !resultBetter(h[i], h[w]) {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}

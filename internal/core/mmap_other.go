//go:build !linux && !darwin

package core

import (
	"errors"
	"os"
)

// mmapAvailable reports whether this build can memory-map segment
// files; on platforms without a wired syscall wrapper every segment
// read goes through the pread fallback instead.
const mmapAvailable = false

var errNoMmap = errors.New("mmap is not supported on this platform")

func mapFile(*os.File, int) ([]byte, error) { return nil, errNoMmap }

func unmapFile([]byte) error { return nil }

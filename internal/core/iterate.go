package core

import (
	"errors"
	"fmt"
	"slices"
)

// ErrCursorGone reports that a pagination cursor names a record that is
// no longer indexed — the caller's cursor went stale across a delete —
// so the walk cannot prove where to resume. Restart from the beginning.
var ErrCursorGone = errors.New("cursor names a record that is no longer indexed")

// DefaultPageSize is the page size Records uses when limit is not
// positive.
const DefaultPageSize = 256

// Records returns up to limit record sketches in insertion order,
// starting after the record named after (empty starts from the
// beginning), plus the cursor for the next page ("" when the walk is
// done). The cursor is the name of the last record the page covered,
// so a paginated walk observes every record that exists for the whole
// walk exactly once even as concurrent adds append behind it. A cursor
// whose record has been deleted fails with ErrCursorGone.
//
// Sketches are reconstructed from the arena outside the index lock, so
// a record deleted between the snapshot and the reconstruction is
// silently skipped — its page may run short, but the next cursor still
// advances past it.
func (ix *Index) Records(after string, limit int) ([]*Sketch, string, error) {
	if limit <= 0 {
		limit = DefaultPageSize
	}
	ix.mu.RLock()
	start := 0
	if after != "" {
		i := slices.Index(ix.order, after)
		if i < 0 {
			ix.mu.RUnlock()
			return nil, "", fmt.Errorf("index %q: %w: %q", ix.meta.Name, ErrCursorGone, after)
		}
		start = i + 1
	}
	end := min(start+limit, len(ix.order))
	names := make([]string, end-start)
	copy(names, ix.order[start:end])
	more := end < len(ix.order)
	ix.mu.RUnlock()

	out := make([]*Sketch, 0, len(names))
	for _, name := range names {
		if s := ix.Get(name); s != nil {
			out = append(out, s)
		}
	}
	next := ""
	if more && len(names) > 0 {
		next = names[len(names)-1]
	}
	return out, next, nil
}

package core

import (
	"bytes"
	"math"
	"testing"
)

func mustSketcher(t *testing.T, k, size int) *Sketcher {
	t.Helper()
	s, err := NewSketcher(k, size)
	if err != nil {
		t.Fatalf("NewSketcher(%d, %d): %v", k, size, err)
	}
	return s
}

func TestNewSketcherValidation(t *testing.T) {
	for _, tc := range []struct{ k, size int }{{0, 128}, {-1, 128}, {8, 0}, {8, -4}} {
		if _, err := NewSketcher(tc.k, tc.size); err == nil {
			t.Errorf("NewSketcher(%d, %d): want error, got nil", tc.k, tc.size)
		}
	}
}

func TestSketchDeterministic(t *testing.T) {
	s := mustSketcher(t, 4, 64)
	data := []byte("the quick brown fox jumps over the lazy dog")
	a := s.Sketch(Record{Name: "a", Data: data})
	b := s.Sketch(Record{Name: "b", Data: data})
	if !equalSig(a.Signature, b.Signature) {
		t.Fatal("same data produced different signatures")
	}
	if a.Shingles != len(data)-4+1 {
		t.Fatalf("shingles = %d, want %d", a.Shingles, len(data)-4+1)
	}
	sim, err := Similarity(a, b)
	if err != nil || sim != 1 {
		t.Fatalf("self similarity = %v, %v; want 1, nil", sim, err)
	}
}

func TestSketchShortRecord(t *testing.T) {
	s := mustSketcher(t, 8, 32)
	sk := s.Sketch(Record{Name: "short", Data: []byte("abc")})
	if sk.Shingles != 0 {
		t.Fatalf("shingles = %d, want 0", sk.Shingles)
	}
	for i, v := range sk.Signature {
		if v != math.MaxUint64 {
			t.Fatalf("slot %d = %d, want MaxUint64", i, v)
		}
	}
	// Two empty sketches must not look identical.
	other := s.Sketch(Record{Name: "short2", Data: []byte("xy")})
	sim, err := Similarity(sk, other)
	if err != nil || sim != 0 {
		t.Fatalf("empty-vs-empty similarity = %v, %v; want 0, nil", sim, err)
	}
}

func TestSimilarityDisjointAndSimilar(t *testing.T) {
	s := mustSketcher(t, 8, 256)
	a := s.Sketch(Record{Name: "a", Data: bytes.Repeat([]byte("abcdefghij"), 50)})
	b := s.Sketch(Record{Name: "b", Data: bytes.Repeat([]byte("0123456789"), 50)})
	sim, err := Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sim > 0.05 {
		t.Fatalf("disjoint similarity = %f, want ~0", sim)
	}
	// Nearly-identical records must be highly similar.
	data := bytes.Repeat([]byte("the quick brown fox "), 40)
	mutated := append([]byte{}, data...)
	mutated[len(mutated)/2] = 'X'
	c := s.Sketch(Record{Name: "c", Data: data})
	d := s.Sketch(Record{Name: "d", Data: mutated})
	sim, err = Similarity(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if sim < 0.5 {
		t.Fatalf("near-identical similarity = %f, want > 0.5", sim)
	}
	dist, err := Distance(c, d)
	if err != nil || math.Abs(dist-(1-sim)) > 1e-12 {
		t.Fatalf("distance = %v, %v; want %f", dist, err, 1-sim)
	}
}

func TestSimilarityIncompatible(t *testing.T) {
	a := mustSketcher(t, 4, 64).Sketch(Record{Name: "a", Data: []byte("abcdefgh")})
	b := mustSketcher(t, 8, 64).Sketch(Record{Name: "b", Data: []byte("abcdefgh")})
	if _, err := Similarity(a, b); err == nil {
		t.Fatal("mismatched k: want error")
	}
	c := mustSketcher(t, 4, 32).Sketch(Record{Name: "c", Data: []byte("abcdefgh")})
	if _, err := Similarity(a, c); err == nil {
		t.Fatal("mismatched signature size: want error")
	}
}

func TestEachShingleHashRolling(t *testing.T) {
	// The rolling hash must agree with a direct recomputation of each window.
	data := []byte("abcdefghijklmnopqrstuvwxyz")
	const k = 5
	var rolled []uint64
	eachShingleHash(data, k, func(h uint64) { rolled = append(rolled, h) })
	if len(rolled) != len(data)-k+1 {
		t.Fatalf("got %d hashes, want %d", len(rolled), len(data)-k+1)
	}
	for i := range rolled {
		var direct uint64
		for _, b := range data[i : i+k] {
			direct = direct*hashBase + uint64(b) + 1
		}
		if rolled[i] != direct {
			t.Fatalf("window %d: rolling %d != direct %d", i, rolled[i], direct)
		}
	}
}

// FuzzEachShingleHash cross-checks the O(n) rolling hash against a
// direct polynomial recomputation of every window, over fuzzer-chosen
// payloads and shingle lengths. Run with `go test -fuzz=FuzzEachShingleHash
// ./internal/core` to explore beyond the seed corpus.
func FuzzEachShingleHash(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), 4)
	f.Add([]byte("aaaaaaaaaaaaaaaa"), 1)
	f.Add([]byte{0x00, 0xff, 0x00, 0xff, 0x7f}, 2)
	f.Add([]byte("ab"), 8) // shorter than k: no windows
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		// Keep k in the meaningful range; pow and the window loop are
		// well-defined for any positive k, but huge k just means zero
		// windows for every input the fuzzer can build.
		if k < 1 || k > 64 {
			t.Skip()
		}
		var rolled []uint64
		eachShingleHash(data, k, func(h uint64) { rolled = append(rolled, h) })
		want := len(data) - k + 1
		if want < 0 {
			want = 0
		}
		if len(rolled) != want {
			t.Fatalf("len(data)=%d k=%d: got %d hashes, want %d", len(data), k, len(rolled), want)
		}
		for i := range rolled {
			var direct uint64
			for _, b := range data[i : i+k] {
				direct = direct*hashBase + uint64(b) + 1
			}
			if rolled[i] != direct {
				t.Fatalf("window %d: rolling %#x != direct %#x", i, rolled[i], direct)
			}
		}
	})
}

func equalSig(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

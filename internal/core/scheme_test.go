package core

import (
	"bytes"
	"math"
	"math/bits"
	"strings"
	"testing"
)

func mustSketcherScheme(t *testing.T, k, size int, scheme Scheme) *Sketcher {
	t.Helper()
	s, err := NewSketcherScheme(k, size, scheme)
	if err != nil {
		t.Fatalf("NewSketcherScheme(%d, %d, %q): %v", k, size, scheme, err)
	}
	return s
}

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in      string
		want    Scheme
		wantErr bool
	}{
		{"", DefaultScheme, false},
		{"oph", SchemeOPH, false},
		{"kmh", SchemeKMH, false},
		{"simhash", "", true},
		{"OPH", "", true}, // schemes are case-sensitive like modes
	}
	for _, tc := range cases {
		got, err := ParseScheme(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseScheme(%q): want error, got %q", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseScheme(%q) = %q, %v; want %q, nil", tc.in, got, err, tc.want)
		}
	}
	if s, err := NewSketcher(4, 32); err != nil || s.Scheme() != DefaultScheme {
		t.Errorf("NewSketcher scheme = %q, %v; want default %q", s.Scheme(), err, DefaultScheme)
	}
}

// TestOPHDensificationFillsSparseSignatures drives the sparse regime:
// a handful of distinct shingles routed into a much larger signature
// leaves most slots empty, and densification must fill every one of
// them deterministically without making unrelated records look alike.
func TestOPHDensificationFillsSparseSignatures(t *testing.T) {
	s := mustSketcherScheme(t, 4, 256, SchemeOPH)
	// Period-10 payload: only 10 distinct 4-byte shingles over 256 slots.
	data := bytes.Repeat([]byte("abcdefghij"), 10)
	a := s.Sketch(Record{Name: "a", Data: data})
	for i, v := range a.Signature {
		if v == emptySlot {
			t.Fatalf("slot %d still empty after densification", i)
		}
	}
	b := s.Sketch(Record{Name: "b", Data: data})
	if !equalSig(a.Signature, b.Signature) {
		t.Fatal("same sparse data produced different densified signatures")
	}
	if sim, err := Similarity(a, b); err != nil || sim != 1 {
		t.Fatalf("densified self similarity = %v, %v; want 1, nil", sim, err)
	}
	// A disjoint sparse record must not inherit similarity through its
	// densified slots.
	other := s.Sketch(Record{Name: "c", Data: bytes.Repeat([]byte("0123456789"), 10)})
	if sim, err := Similarity(a, other); err != nil || sim > 0.2 {
		t.Fatalf("disjoint sparse similarity = %v, %v; want ~0", sim, err)
	}
}

// TestSketchOPHMatchesReference rebuilds OPH signatures through the
// shared eachShingleHash helper — route each whitened hash by its high
// bits, keep per-slot minima, densify — and requires the speed-inlined
// rolling hash inside sketchOPH to produce the identical signature.
// This pins the duplicated hash loop to its reference: a change to one
// copy but not the other fails here deterministically instead of
// drifting past the statistical agreement test.
func TestSketchOPHMatchesReference(t *testing.T) {
	cases := []struct {
		k, size int
		data    []byte
	}{
		{8, 128, benchData(4096, 42)},
		{4, 64, []byte("the quick brown fox jumps over the lazy dog")},
		{3, 32, bytes.Repeat([]byte("abcdef"), 10)}, // sparse: densification active
		{5, 16, benchData(17, 7)},
		{9, 128, []byte("too short")}, // exactly k bytes: one shingle
	}
	for _, tc := range cases {
		s := mustSketcherScheme(t, tc.k, tc.size, SchemeOPH)
		got := s.Sketch(Record{Name: "x", Data: tc.data})
		want := make([]uint64, tc.size)
		for i := range want {
			want[i] = emptySlot
		}
		n := 0
		eachShingleHash(tc.data, tc.k, func(h uint64) {
			n++
			v := mix64(h)
			slot, _ := bits.Mul64(v, uint64(tc.size))
			if v < want[slot] {
				want[slot] = v
			}
		})
		if n > 0 {
			densify(want)
		}
		if got.Shingles != n {
			t.Errorf("k=%d size=%d: shingles = %d, want %d", tc.k, tc.size, got.Shingles, n)
		}
		if !equalSig(got.Signature, want) {
			t.Errorf("k=%d size=%d: inlined OPH signature diverges from eachShingleHash reference",
				tc.k, tc.size)
		}
	}
}

// exactJaccard computes the true Jaccard similarity of the k-shingle
// hash sets of two payloads, as ground truth for the estimator test.
func exactJaccard(a, b []byte, k int) float64 {
	setA := make(map[uint64]struct{})
	eachShingleHash(a, k, func(h uint64) { setA[h] = struct{}{} })
	setB := make(map[uint64]struct{})
	eachShingleHash(b, k, func(h uint64) { setB[h] = struct{}{} })
	if len(setA) == 0 && len(setB) == 0 {
		return 0
	}
	inter := 0
	for h := range setA {
		if _, ok := setB[h]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(setA)+len(setB)-inter)
}

// TestOPHAndKMHAgreeOnPlantedOverlap is the statistical property test
// for the scheme swap: across planted-overlap corpora the two schemes
// must estimate the same Jaccard similarity, and both must track the
// exact set Jaccard. Averaging 16 pairs per overlap level shrinks the
// single-sketch standard error (~1/sqrt(128) ~= 0.09) well below the
// tolerances; everything is deterministic in the seeds.
func TestOPHAndKMHAgreeOnPlantedOverlap(t *testing.T) {
	const (
		k        = 8
		size     = 128
		pairs    = 16
		recBytes = 2048
	)
	oph := mustSketcherScheme(t, k, size, SchemeOPH)
	kmh := mustSketcherScheme(t, k, size, SchemeKMH)
	for _, overlap := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		var ophSum, kmhSum, exactSum float64
		for p := 0; p < pairs; p++ {
			seed := int64(overlap*1000) + int64(p)*7919
			shared := benchData(int(overlap*recBytes), seed)
			tailA := benchData(recBytes-len(shared), seed+500_000)
			tailB := benchData(recBytes-len(shared), seed+900_000)
			dataA := append(append([]byte{}, shared...), tailA...)
			dataB := append(append([]byte{}, shared...), tailB...)

			simOPH, err := Similarity(oph.Sketch(Record{Name: "a", Data: dataA}), oph.Sketch(Record{Name: "b", Data: dataB}))
			if err != nil {
				t.Fatal(err)
			}
			simKMH, err := Similarity(kmh.Sketch(Record{Name: "a", Data: dataA}), kmh.Sketch(Record{Name: "b", Data: dataB}))
			if err != nil {
				t.Fatal(err)
			}
			ophSum += simOPH
			kmhSum += simKMH
			exactSum += exactJaccard(dataA, dataB, k)
		}
		meanOPH, meanKMH, meanExact := ophSum/pairs, kmhSum/pairs, exactSum/pairs
		if d := math.Abs(meanOPH - meanKMH); d > 0.08 {
			t.Errorf("overlap %.1f: schemes disagree: oph=%.3f kmh=%.3f (|diff|=%.3f > 0.08)",
				overlap, meanOPH, meanKMH, d)
		}
		if d := math.Abs(meanOPH - meanExact); d > 0.12 {
			t.Errorf("overlap %.1f: oph estimate %.3f is off exact Jaccard %.3f by %.3f",
				overlap, meanOPH, meanExact, d)
		}
		if d := math.Abs(meanKMH - meanExact); d > 0.12 {
			t.Errorf("overlap %.1f: kmh estimate %.3f is off exact Jaccard %.3f by %.3f",
				overlap, meanKMH, meanExact, d)
		}
	}
}

func TestMixedSchemeComparisonsRejected(t *testing.T) {
	data := []byte("the same payload sketched under both schemes")
	a := mustSketcherScheme(t, 4, 64, SchemeOPH).Sketch(Record{Name: "a", Data: data})
	b := mustSketcherScheme(t, 4, 64, SchemeKMH).Sketch(Record{Name: "b", Data: data})
	if _, err := Similarity(a, b); err == nil || !strings.Contains(err.Error(), "mixed schemes") {
		t.Fatalf("Similarity across schemes: err = %v, want mixed-schemes error", err)
	}
	if _, err := Distance(a, b); err == nil {
		t.Fatal("Distance across schemes: want error")
	}
	if _, err := PairwiseDistances([]*Sketch{a, b}, nil); err == nil {
		t.Fatal("PairwiseDistances across schemes: want error")
	}
	// A sketch with no scheme stamp is legacy KMH and compares fine
	// against an explicit KMH sketch of the same parameters.
	legacy := &Sketch{Name: "legacy", K: b.K, Shingles: b.Shingles, Signature: b.Signature}
	if sim, err := Similarity(legacy, b); err != nil || sim != 1 {
		t.Fatalf("legacy-vs-kmh similarity = %v, %v; want 1, nil", sim, err)
	}
}

// TestSimilarityDegenerateSketchParams is the regression test for the
// zero-length-signature divide: hand-built sketches with empty
// signatures must compare as dissimilar, never NaN.
func TestSimilarityDegenerateSketchParams(t *testing.T) {
	a := &Sketch{Name: "a", K: 4, Shingles: 3, Signature: nil}
	b := &Sketch{Name: "b", K: 4, Shingles: 5, Signature: []uint64{}}
	sim, err := Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 0 || math.IsNaN(sim) {
		t.Fatalf("zero-slot similarity = %v, want 0", sim)
	}
	dist, err := Distance(a, b)
	if err != nil || dist != 1 {
		t.Fatalf("zero-slot distance = %v, %v; want 1, nil", dist, err)
	}
	// The constructors still reject the degenerate parameters outright.
	if _, err := NewSketcherScheme(4, 0, SchemeOPH); err == nil {
		t.Fatal("NewSketcherScheme with sigSize 0: want error")
	}
}

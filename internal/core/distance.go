package core

import (
	"fmt"
	"math/bits"
)

// Result is one query/reference comparison.
type Result struct {
	Query      string  `json:"query"`
	Ref        string  `json:"ref"`
	Similarity float64 `json:"similarity"`
	Distance   float64 `json:"distance"`
}

// Similarity estimates the Jaccard similarity of the sets underlying
// two sketches as the fraction of matching minhash slots. Sketches with
// zero shingles (records shorter than K) are dissimilar to everything,
// as are degenerate zero-slot signatures. Sketches from different
// schemes are incomparable and return an error.
func Similarity(a, b *Sketch) (float64, error) {
	if err := compatible(a, b); err != nil {
		return 0, err
	}
	if len(a.Signature) == 0 || a.Shingles == 0 || b.Shingles == 0 {
		return 0, nil
	}
	return float64(matchingSlots(a.Signature, b.Signature)) / float64(len(a.Signature)), nil
}

// matchingSlots counts equal slots via a 4-wide unrolled comparison:
// four independent accumulators keep the adds off one dependency chain,
// and the slice re-slices hoist the bounds checks out of the body. The
// lengths of a and b must be equal (pre-checked by compatible).
func matchingSlots(a, b []uint64) int {
	var c0, c1, c2, c3 int
	i, n := 0, len(a)
	for ; i+4 <= n; i += 4 {
		x, y := a[i:i+4:i+4], b[i:i+4:i+4]
		c0 += eqSlot(x[0], y[0])
		c1 += eqSlot(x[1], y[1])
		c2 += eqSlot(x[2], y[2])
		c3 += eqSlot(x[3], y[3])
	}
	for ; i < n; i++ {
		c0 += eqSlot(a[i], b[i])
	}
	return c0 + c1 + c2 + c3
}

// eqSlot is a branch-light bool-to-int compare (compiles to SETcc+ADD
// rather than a predicted branch per slot).
func eqSlot(x, y uint64) int {
	if x == y {
		return 1
	}
	return 0
}

// packedMatchingSlots counts equal slots between two packed signature
// rows of `slots` b-bit lanes (see sigArena). Both rows must be the
// same length with zeroed padding lanes; padding lanes XOR to zero on
// every pair and are subtracted back out, so the count is exact. At
// full width it falls through to matchingSlots. One word op compares 4
// (16-bit) or 8 (8-bit) slots with no per-slot branch.
func packedMatchingSlots(a, b []uint64, slots, bits int) int {
	switch bits {
	case 16:
		m := 0
		b = b[:len(a)]
		for i, w := range a {
			m += zeroLanes16(w ^ b[i])
		}
		return m - (len(a)*4 - slots)
	case 8:
		m := 0
		b = b[:len(a)]
		for i, w := range a {
			m += zeroLanes8(w ^ b[i])
		}
		return m - (len(a)*8 - slots)
	default:
		return matchingSlots(a, b)
	}
}

// zeroLanes16 counts the 16-bit lanes of x that are zero, branch-free:
// each lane's bits are OR-folded down to its lowest bit (the cross-lane
// garbage the shifts drag into upper bit positions never reaches bit 0
// of a lane, because every shift distance is smaller than the lane
// width), then the surviving "lane is nonzero" bits are popcounted.
// Unlike the classic (x-lo)&^x&hi borrow trick, the OR fold is exact —
// borrows between lanes cannot miscount.
func zeroLanes16(x uint64) int {
	x |= x >> 8
	x |= x >> 4
	x |= x >> 2
	x |= x >> 1
	return 4 - bits.OnesCount64(x&0x0001000100010001)
}

// zeroLanes8 is zeroLanes16 for 8-bit lanes: 8 slots per word op.
func zeroLanes8(x uint64) int {
	x |= x >> 4
	x |= x >> 2
	x |= x >> 1
	return 8 - bits.OnesCount64(x&0x0101010101010101)
}

// Distance is 1 - Similarity.
func Distance(a, b *Sketch) (float64, error) {
	sim, err := Similarity(a, b)
	if err != nil {
		return 0, err
	}
	return 1 - sim, nil
}

// normSketchBits resolves a sketch's zero Bits to full width: sketches
// emitted by a Sketcher (and everything predating packed indexes)
// carry full 64-bit minhash values.
func normSketchBits(bits int) int {
	if bits == 0 {
		return 64
	}
	return bits
}

func compatible(a, b *Sketch) error {
	if sa, sb := normScheme(a.Scheme), normScheme(b.Scheme); sa != sb {
		return fmt.Errorf("sketch: mixed schemes: %q vs %q (re-sketch one side with a matching -scheme)", sa, sb)
	}
	if ba, bb := normSketchBits(a.Bits), normSketchBits(b.Bits); ba != bb {
		return fmt.Errorf("sketch: mixed slot widths: %d-bit vs %d-bit (a sketch read back from a packed index holds truncated lanes; compare it only against sketches from the same index)", ba, bb)
	}
	if a.K != b.K {
		return fmt.Errorf("sketch: incompatible k: %d vs %d", a.K, b.K)
	}
	if len(a.Signature) != len(b.Signature) {
		return fmt.Errorf("sketch: incompatible signature sizes: %d vs %d",
			len(a.Signature), len(b.Signature))
	}
	return nil
}

package core

import "fmt"

// Result is one query/reference comparison.
type Result struct {
	Query      string  `json:"query"`
	Ref        string  `json:"ref"`
	Similarity float64 `json:"similarity"`
	Distance   float64 `json:"distance"`
}

// Similarity estimates the Jaccard similarity of the sets underlying
// two sketches as the fraction of matching minhash slots. Sketches with
// zero shingles (records shorter than K) are dissimilar to everything.
func Similarity(a, b *Sketch) (float64, error) {
	if err := compatible(a, b); err != nil {
		return 0, err
	}
	if a.Shingles == 0 || b.Shingles == 0 {
		return 0, nil
	}
	match := 0
	for i := range a.Signature {
		if a.Signature[i] == b.Signature[i] {
			match++
		}
	}
	return float64(match) / float64(len(a.Signature)), nil
}

// Distance is 1 - Similarity.
func Distance(a, b *Sketch) (float64, error) {
	sim, err := Similarity(a, b)
	if err != nil {
		return 0, err
	}
	return 1 - sim, nil
}

func compatible(a, b *Sketch) error {
	if a.K != b.K {
		return fmt.Errorf("sketch: incompatible k: %d vs %d", a.K, b.K)
	}
	if len(a.Signature) != len(b.Signature) {
		return fmt.Errorf("sketch: incompatible signature sizes: %d vs %d",
			len(a.Signature), len(b.Signature))
	}
	return nil
}

package core

import (
	"fmt"
	"math"
)

// LSHParams describes how signatures are split for locality-sensitive
// hashing: Bands bands of RowsPerBand rows each, with Bands*RowsPerBand
// equal to the signature size. Two records become search candidates of
// each other when at least one band hashes to the same bucket, which
// happens with probability 1-(1-s^r)^b for Jaccard similarity s.
type LSHParams struct {
	Bands       int `json:"bands"`
	RowsPerBand int `json:"rows_per_band"`
}

// NewLSHParams validates a banding scheme against a signature size.
func NewLSHParams(bands, rows, sigSize int) (LSHParams, error) {
	if bands <= 0 || rows <= 0 {
		return LSHParams{}, fmt.Errorf("lsh: bands and rows must be positive, got bands=%d rows=%d", bands, rows)
	}
	if bands*rows != sigSize {
		return LSHParams{}, fmt.Errorf("lsh: bands*rows = %d*%d = %d does not cover signature size %d",
			bands, rows, bands*rows, sigSize)
	}
	return LSHParams{Bands: bands, RowsPerBand: rows}, nil
}

// DefaultLSHParams picks a banding scheme for sigSize, preferring 4
// rows per band (detection threshold ~0.42 at 128 slots) and falling
// back to smaller rows until one divides the signature evenly.
func DefaultLSHParams(sigSize int) LSHParams {
	for _, r := range []int{4, 3, 2} {
		if sigSize >= r && sigSize%r == 0 {
			return LSHParams{Bands: sigSize / r, RowsPerBand: r}
		}
	}
	return LSHParams{Bands: sigSize, RowsPerBand: 1}
}

// Threshold returns the similarity (1/b)^(1/r) at which a pair has
// roughly 1-1/e probability of sharing at least one band bucket; pairs
// well above it are detected almost surely, pairs well below almost
// never.
func (p LSHParams) Threshold() float64 {
	return math.Pow(1/float64(p.Bands), 1/float64(p.RowsPerBand))
}

// bandKey hashes band `band` of sig into a bucket key, masking every
// slot value to the index's packing width first so queries (which carry
// full-width signatures) and packed index rows agree on their buckets.
// The band index is folded in so identical row values in different
// bands do not collide into one bucket. At full width the mask is all
// ones and keys are identical to the pre-arena format.
func (p LSHParams) bandKey(band int, sig []uint64, mask uint64) uint64 {
	h := mix64(uint64(band)*0x9e3779b97f4a7c15 + 0x8445d61a4e774912)
	for _, v := range sig[band*p.RowsPerBand : (band+1)*p.RowsPerBand] {
		h = mix64(h ^ (v & mask))
	}
	return h
}

// bandIndex is the posting structure of one shard: for every band, a
// map from bucket key to the shard-local record indexes whose signature
// hashed there. Postings are int32 arena row indexes rather than names:
// a quarter the memory of string headers and a direct pointer into the
// shard's arena on the probe side. It is not internally locked; the
// owning shard serializes access.
type bandIndex struct {
	params  LSHParams
	buckets []map[uint64][]int32
}

func newBandIndex(p LSHParams) *bandIndex {
	b := &bandIndex{params: p, buckets: make([]map[uint64][]int32, p.Bands)}
	for i := range b.buckets {
		b.buckets[i] = make(map[uint64][]int32)
	}
	return b
}

// add inserts record index idx into the bucket of every band of sig
// (full-width slot values; mask truncates them to the packing width).
// The probe side lives in shard.probeCandidates, which walks the same
// buckets.
func (bi *bandIndex) add(idx int32, sig []uint64, mask uint64) {
	for band := 0; band < bi.params.Bands; band++ {
		key := bi.params.bandKey(band, sig, mask)
		bi.buckets[band][key] = append(bi.buckets[band][key], idx)
	}
}

package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool for fanning computation out over a
// fixed number of goroutines. It holds no goroutines between calls, so
// a Pool is cheap to create and safe to share.
type Pool struct {
	workers int
}

// NewPool returns a pool bounded to workers goroutines; workers <= 0
// means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Map invokes fn(i) for every i in [0, n), running at most Workers
// goroutines at once, and returns when all invocations have finished.
// Work is distributed by an atomic counter so uneven item costs
// self-balance across workers.
func (p *Pool) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

package core

import (
	"cmp"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"sketchengine/internal/fault"
)

// ManifestFile is the name of the manifest inside a tiered index
// directory (format v5). The manifest is small — metadata, record
// names, and segment references — while the bulk full-width signature
// data lives in immutable files under segments/. See docs/FORMAT.md.
const ManifestFile = "MANIFEST.json"

// manifestSegment references one sealed segment file, with enough
// geometry for LoadDir to verify the file before trusting it.
type manifestSegment struct {
	File  string `json:"file"` // base name under segments/
	Base  int    `json:"base"` // first shard-local row held
	Rows  int    `json:"rows"`
	CRC32 uint32 `json:"crc32"` // IEEE CRC of the payload words
}

// manifestShard is one stripe's row-indexed state: segment references
// in base order (tiling rows [0, sum rows)), plus the names and shingle
// counts for every row. Signatures are NOT here — the packed prefilter
// is rebuilt by streaming the segments once at load. Deleted (format
// v6) lists the tombstoned row indexes; those rows still occupy arena
// and segment space until a compaction drops them, but are invisible
// to every lookup.
type manifestShard struct {
	Segments []manifestSegment `json:"segments"`
	Names    []string          `json:"names"`
	Shingles []int32           `json:"shingles"`
	Deleted  []int32           `json:"deleted,omitempty"`
}

// manifestTier carries the tier configuration a reopened index resumes
// with.
type manifestTier struct {
	SegmentRows int `json:"segment_rows"`
}

// manifest is the JSON layout of MANIFEST.json, the commit point of
// every SaveDir: segments are written and renamed into place first, and
// only the atomic manifest rename makes them reachable.
type manifest struct {
	Meta   Metadata        `json:"meta"`
	Tier   manifestTier    `json:"tier"`
	Order  []string        `json:"order"`
	Shards []manifestShard `json:"shards"`
}

// IsTieredDir reports whether path looks like a tiered index directory:
// a directory containing a manifest.
//
// Deprecated: use Open, which performs this detection itself.
func IsTieredDir(path string) bool { return isTieredDir(path) }

func isTieredDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestFile))
	return err == nil
}

// EnableTiered converts the index to tiered storage rooted at dataDir:
// the in-RAM arena becomes the packed prefilter at the given width
// (bits 0 keeps the current width; populated indexes re-truncate
// losslessly from their full-width slots) and full-width signatures
// move to the on-disk tier, sealed into immutable segment files of
// segmentRows rows (0 means DefaultSegmentRows) as they accumulate.
// Existing records are migrated immediately, so enabling on a loaded v4
// index is the upgrade path to format v6 — but only full-width (64-bit)
// indexes can migrate: a populated 8- or 16-bit index discarded its
// full-width slots at add time and is rejected. Adds and deletes are
// blocked for the duration; queries must not overlap (the arena is
// swapped wholesale). The write-ahead log is attached by the first
// SaveDir: durability frames only make sense once there is a committed
// manifest to replay them over.
func (ix *Index) EnableTiered(dataDir string, segmentRows, bits int) error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.tier != nil {
		return fmt.Errorf("index %q: tiered storage is already enabled (data dir %s)", ix.meta.Name, ix.tier.dataDir)
	}
	if dataDir == "" {
		return fmt.Errorf("index %q: tiered storage needs a data directory", ix.meta.Name)
	}
	if segmentRows <= 0 {
		segmentRows = DefaultSegmentRows
	}
	if bits == 0 {
		bits = ix.bits
	}
	bits, err := validBits(bits)
	if err != nil {
		return fmt.Errorf("index %q: %w", ix.meta.Name, err)
	}
	if len(ix.order) > 0 && ix.bits != 64 {
		return fmt.Errorf("index %q: cannot enable tiered storage on a populated %d-bit index: the full-width signatures were discarded at add time; rebuild from source data",
			ix.meta.Name, ix.bits)
	}
	tier := &tierState{dataDir: dataDir, segmentRows: segmentRows}
	if err := os.MkdirAll(tier.segmentsDir(), 0o755); err != nil {
		return fmt.Errorf("index %q: enable tiered: %w", ix.meta.Name, err)
	}
	fresh := newShards(len(ix.shards), ix.lsh, ix.meta.SignatureSize, bits)
	for i := range fresh {
		fresh[i].full = newFullStore(ix.meta.SignatureSize, i, tier)
	}
	sig := make([]uint64, 0, ix.meta.SignatureSize)
	for si, old := range ix.shards {
		// Same shard count, so every live record stays on stripe si;
		// walking the arena in row order preserves the relative order.
		// Tombstoned rows are dropped — the migration is a compaction.
		for i, name := range old.names {
			if old.rowDead(int32(i)) {
				continue
			}
			sig = old.arena.appendUnpacked(sig[:0], i)
			if _, err := fresh[si].add(&Sketch{
				Name:      name,
				K:         ix.meta.K,
				Shingles:  int(old.shingles[i]),
				Scheme:    ix.meta.Scheme,
				Bits:      DefaultBits,
				Signature: sig,
			}); err != nil {
				for _, sh := range fresh {
					sh.full.close()
				}
				return fmt.Errorf("index %q: enable tiered: %w", ix.meta.Name, err)
			}
		}
	}
	ix.shards = fresh
	ix.bits = bits
	ix.meta.Bits = bits
	ix.meta.Format = FormatV6
	ix.tier = tier
	return nil
}

// SaveDir persists a tiered index into its data directory: stripes
// whose tombstone ratio reached DefaultCompactThreshold are compacted,
// every shard's mutable head is sealed into a new immutable segment,
// then the manifest is atomically replaced — the commit point. Because
// sealed segments never change, a snapshot's cost is the unsealed rows
// plus the (small) manifest — not the whole index. After the commit the
// per-shard write-ahead logs restart empty (attaching them on the first
// SaveDir): every mutation they logged is now in the manifest, and the
// lock order guarantees none landed in between. Segment files a crash,
// a compaction, or a dropped head left unreferenced are cleaned up
// after the commit.
func (ix *Index) SaveDir() (err error) {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.tier == nil {
		return fmt.Errorf("index %q: not a tiered index; call EnableTiered first or use SaveFile", ix.meta.Name)
	}
	// Hold every shard lock across compact + seal + manifest + WAL
	// truncation + cleanup so no concurrent mutation can slip between
	// the snapshot and the log reset (which would lose it), and no
	// concurrent seal can produce a segment the orphan sweep would
	// delete as unreferenced.
	for _, sh := range ix.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range ix.shards {
			sh.mu.Unlock()
		}
	}()

	man := manifest{
		Meta:  ix.meta,
		Tier:  manifestTier{SegmentRows: ix.tier.segmentRows},
		Order: slices.Clone(ix.order),
	}
	man.Meta.Format = FormatV6
	man.Meta.Bits = ix.bits
	man.Meta.RecordCount = len(ix.order)
	for _, sh := range ix.shards {
		if n := len(sh.names); n > 0 && float64(sh.deadRows)/float64(n) >= DefaultCompactThreshold {
			dropped, cerr := sh.compactLocked(ix.lsh, ix.meta.SignatureSize, ix.bits)
			if cerr != nil {
				return fmt.Errorf("index %q: save dir: compact: %w", ix.meta.Name, cerr)
			}
			if dropped > 0 {
				ix.compactions.Add(1)
				ix.compactedRows.Add(uint64(dropped))
			}
		}
		if err := sh.full.sealHead(); err != nil {
			return fmt.Errorf("index %q: save dir: %w", ix.meta.Name, err)
		}
		ms := manifestShard{
			Segments: make([]manifestSegment, 0, len(sh.full.segs)),
			Names:    slices.Clone(sh.names),
			Shingles: slices.Clone(sh.shingles),
			Deleted:  sh.deadRowsLocked(),
		}
		for _, sg := range sh.full.segs {
			ms.Segments = append(ms.Segments, manifestSegment{
				File: filepath.Base(sg.path), Base: sg.base, Rows: sg.rows, CRC32: sg.crc,
			})
		}
		man.Shards = append(man.Shards, ms)
	}

	if err := fault.Check("manifest.commit"); err != nil {
		return fmt.Errorf("index %q: save dir: %w", ix.meta.Name, err)
	}
	if err := writeManifest(filepath.Join(ix.tier.dataDir, ManifestFile), &man); err != nil {
		return fmt.Errorf("index %q: save dir: %w", ix.meta.Name, err)
	}
	// The manifest now contains every logged mutation; truncate the
	// logs (attaching them if this was the directory's first commit). A
	// crash before a truncation is harmless: replay over a snapshot
	// that already contains the frames' effects converges (adds of
	// present names skip, deletes of absent names no-op).
	if err := ix.attachWALsLocked(); err != nil {
		return fmt.Errorf("index %q: save dir: %w", ix.meta.Name, err)
	}
	cleanOrphanSegments(ix.tier.segmentsDir(), &man)
	return nil
}

// deadRowsLocked lists the stripe's tombstoned row indexes in row
// order. Callers hold sh.mu.
func (sh *shard) deadRowsLocked() []int32 {
	if sh.deadRows == 0 {
		return nil
	}
	out := make([]int32, 0, sh.deadRows)
	for i := range sh.names {
		if sh.rowDead(int32(i)) {
			out = append(out, int32(i))
		}
	}
	return out
}

// attachWALsLocked brings every shard's write-ahead log to the
// empty-at-current-snapshot state: already-attached logs are truncated
// back to a bare header, missing ones are created and attached. Callers
// hold ix.mu and every shard lock, and must have committed the manifest
// first — the WAL-active invariant is "a WAL exists if and only if
// there is a manifest to replay it over".
func (ix *Index) attachWALsLocked() error {
	for si, sh := range ix.shards {
		if w := sh.wal.Load(); w != nil {
			if err := w.reset(); err != nil {
				return err
			}
			continue
		}
		w, err := openShardWAL(walPath(ix.tier.dataDir, si), si, ix.tier, 0, 0)
		if err != nil {
			return err
		}
		sh.wal.Store(w)
	}
	return nil
}

// writeManifest writes the manifest with the same temp+fsync+rename
// dance as SaveFile; the rename is the snapshot's commit point.
func writeManifest(path string, man *manifest) (err error) {
	f, err := os.CreateTemp(filepath.Dir(path), ".manifest-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = json.NewEncoder(f).Encode(man); err != nil {
		return err
	}
	if err = f.Chmod(0o644); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// cleanOrphanSegments removes segment and temp files the committed
// manifest does not reference — leftovers of crashed seals or saves
// that lost the race to a newer snapshot. Best-effort: failures leave
// harmless garbage, never break the index.
func cleanOrphanSegments(segDir string, man *manifest) {
	refs := make(map[string]bool)
	for _, ms := range man.Shards {
		for _, sg := range ms.Segments {
			refs[sg.File] = true
		}
	}
	entries, err := os.ReadDir(segDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if refs[name] {
			continue
		}
		if strings.HasSuffix(name, ".seg") || strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(segDir, name))
		}
	}
}

// LoadDir opens a tiered index directory written by SaveDir.
//
// Deprecated: use Open, which detects the on-disk layout (JSON file or
// tiered directory) and dispatches accordingly.
func LoadDir(dir string) (*Index, error) { return loadDir(dir) }

// loadDir opens a tiered index directory written by SaveDir: it reads
// the manifest, opens and checksum-verifies every referenced segment,
// and rebuilds the packed prefilter and LSH band postings by streaming
// the segment rows once; manifest v6 tombstones are restored, and the
// per-shard write-ahead logs are replayed over the snapshot (torn tails
// truncated) so every mutation acknowledged before a crash is present.
// The full-width data itself stays on disk (mmap'd where available), so
// a loaded index's heap holds only the prefilter, postings, and names.
func loadDir(dir string) (ix *Index, err error) {
	f, err := os.Open(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	var m manifest
	derr := json.NewDecoder(f).Decode(&m)
	f.Close()
	if derr != nil {
		return nil, fmt.Errorf("index: manifest: %w", derr)
	}
	switch {
	case m.Meta.Format < FormatV5:
		return nil, fmt.Errorf("index: manifest format %d is not the tiered directory format (%d or %d)", m.Meta.Format, FormatV5, FormatV6)
	case m.Meta.Format > FormatV6:
		return nil, fmt.Errorf("index: manifest format %d is newer than this engine supports (max %d)", m.Meta.Format, FormatV6)
	}
	if m.Meta.K <= 0 || m.Meta.SignatureSize <= 0 {
		return nil, fmt.Errorf("index: invalid manifest metadata: k=%d signature_size=%d", m.Meta.K, m.Meta.SignatureSize)
	}
	lsh, err := NewLSHParams(m.Meta.Bands, m.Meta.RowsPerBand, m.Meta.SignatureSize)
	if err != nil {
		return nil, fmt.Errorf("index: invalid manifest metadata: %w", err)
	}
	shards := m.Meta.Shards
	if shards <= 0 || len(m.Shards) != shards {
		return nil, fmt.Errorf("index: invalid manifest metadata: shards=%d but manifest lists %d shard entries", shards, len(m.Shards))
	}
	scheme := normScheme(m.Meta.Scheme)
	if scheme != SchemeOPH && scheme != SchemeKMH {
		return nil, fmt.Errorf("index: invalid manifest metadata: unknown scheme %q", m.Meta.Scheme)
	}
	bits, err := validBits(m.Meta.Bits)
	if err != nil {
		return nil, fmt.Errorf("index: invalid manifest metadata: %w", err)
	}
	segRows := m.Tier.SegmentRows
	if segRows <= 0 {
		segRows = DefaultSegmentRows
	}

	meta := m.Meta
	meta.Format = FormatV6
	meta.Scheme = scheme
	meta.Bits = bits
	tier := &tierState{dataDir: dir, segmentRows: segRows}
	ix = &Index{
		meta:   meta,
		shards: newShards(shards, lsh, meta.SignatureSize, bits),
		lsh:    lsh,
		bits:   bits,
		tier:   tier,
	}
	// Close whatever was opened before any failed return below. The
	// failed returns set the named ix to nil, so the built index is
	// captured separately.
	built := ix
	defer func() {
		if err != nil {
			built.Close()
			ix = nil
		}
	}()

	slots := meta.SignatureSize
	for si, ms := range m.Shards {
		sh := ix.shards[si]
		sh.full = newFullStore(slots, si, tier)
		if len(ms.Shingles) != len(ms.Names) {
			return nil, fmt.Errorf("index: manifest shard %d: %d names but %d shingle counts", si, len(ms.Names), len(ms.Shingles))
		}
		rows := 0
		for _, sref := range ms.Segments {
			if sref.File != filepath.Base(sref.File) || sref.File == "" {
				return nil, fmt.Errorf("index: manifest shard %d references invalid segment file name %q", si, sref.File)
			}
			if sref.Base != rows || sref.Rows <= 0 {
				return nil, fmt.Errorf("index: manifest shard %d: segment %s covers rows [%d,%d), want base %d",
					si, sref.File, sref.Base, sref.Base+sref.Rows, rows)
			}
			sg, serr := openSegment(filepath.Join(tier.segmentsDir(), sref.File), sref.Base, slots, sref.Rows, sref.CRC32)
			if serr != nil {
				return nil, fmt.Errorf("index: %w", serr)
			}
			sh.full.segs = append(sh.full.segs, sg)
			rows += sref.Rows
		}
		sh.full.headBase = rows
		if len(ms.Names) != rows {
			return nil, fmt.Errorf("index: manifest shard %d: %d names but segments hold %d rows", si, len(ms.Names), rows)
		}
		sh.names = ms.Names
		sh.shingles = ms.Shingles
		// Tombstones first: a dead row keeps its arena slot (row indexes
		// must match the segment layout) but never enters the id map or
		// the band postings.
		for _, di := range ms.Deleted {
			if di < 0 || int(di) >= rows {
				return nil, fmt.Errorf("index: manifest shard %d: deleted row %d out of range [0,%d)", si, di, rows)
			}
			if sh.rowDead(di) {
				return nil, fmt.Errorf("index: manifest shard %d: row %d deleted twice", si, di)
			}
			w := int(di) >> 6
			for len(sh.dead) <= w {
				sh.dead = append(sh.dead, 0)
			}
			sh.dead[w] |= 1 << uint(di&63)
			sh.deadRows++
		}
		for i, name := range ms.Names {
			if name == "" {
				return nil, fmt.Errorf("index: manifest shard %d row %d has an empty name", si, i)
			}
			if shardFor(name, shards) != si {
				return nil, fmt.Errorf("index: manifest shard %d row %d: record %q belongs on shard %d", si, i, name, shardFor(name, shards))
			}
			if sh.rowDead(int32(i)) {
				// A dead row may legally share its name with a live one
				// (delete + re-add), so it skips the duplicate check too.
				continue
			}
			if _, dup := sh.ids[name]; dup {
				return nil, fmt.Errorf("index: duplicate record name %q", name)
			}
			sh.ids[name] = int32(i)
		}
		// One streaming pass over the full-width rows rebuilds the
		// derived in-RAM state: packed prefilter rows and band postings
		// (dead rows fill their arena slot but get no postings).
		for _, sg := range sh.full.segs {
			serr := sg.forEachRow(func(local int, sig []uint64) error {
				idx := int32(sh.arena.appendSig(sig))
				if !sh.rowDead(idx) {
					sh.bands.add(idx, sig, sh.mask)
				}
				return nil
			})
			if serr != nil {
				return nil, fmt.Errorf("index: %w", serr)
			}
		}
	}
	total := 0
	for _, sh := range ix.shards {
		total += len(sh.ids)
	}
	if len(m.Order) != total {
		return nil, fmt.Errorf("index: manifest order lists %d records but shards hold %d live", len(m.Order), total)
	}
	for _, name := range m.Order {
		if !ix.shards[shardFor(name, shards)].has(name) {
			return nil, fmt.Errorf("index: manifest order references unknown record %q", name)
		}
	}
	ix.order = m.Order
	ix.meta.RecordCount = total
	// Replay whatever the write-ahead logs hold past this snapshot —
	// everything acknowledged since the manifest was committed — then
	// attach the logs for new mutations. A snapshot that already
	// contains some frames' effects (crash between manifest commit and
	// log truncation) replays idempotently.
	if err = ix.replayWAL(); err != nil {
		return nil, err
	}
	return ix, nil
}

// replayWAL scans every shard's write-ahead log, applies the decodable
// frames in global sequence order through the normal Add/Delete paths,
// and attaches each log at the end of its valid prefix (truncating torn
// tails). The logs are not attached until after the replay, so replayed
// mutations are not re-logged. Called by loadDir on the fully-built
// index, before it is visible to anyone else.
func (ix *Index) replayWAL() error {
	type walScan struct {
		validEnd int64
		frames   int64
	}
	scans := make([]walScan, len(ix.shards))
	var all []walOp
	var torn uint64
	for si := range ix.shards {
		path := walPath(ix.tier.dataDir, si)
		ops, validEnd, err := scanShardWAL(path, si)
		if err != nil {
			return fmt.Errorf("index: %w", err)
		}
		if fi, serr := os.Stat(path); serr == nil && fi.Size() > validEnd {
			torn += uint64(fi.Size() - validEnd)
		}
		scans[si] = walScan{validEnd: validEnd, frames: int64(len(ops))}
		all = append(all, ops...)
	}
	slices.SortFunc(all, func(a, b walOp) int { return cmp.Compare(a.seq, b.seq) })
	slots := ix.meta.SignatureSize
	var maxSeq uint64
	for _, op := range all {
		maxSeq = max(maxSeq, op.seq)
		switch op.op {
		case walOpAdd:
			if len(op.sig) != slots {
				return fmt.Errorf("index: wal: add frame for %q carries %d slots, index wants %d", op.name, len(op.sig), slots)
			}
			if _, err := ix.Add(&Sketch{
				Name:      op.name,
				K:         ix.meta.K,
				Shingles:  int(op.shingles),
				Scheme:    ix.meta.Scheme,
				Bits:      DefaultBits,
				Signature: op.sig,
			}); err != nil {
				return fmt.Errorf("index: wal replay: %w", err)
			}
		case walOpDelete:
			if _, err := ix.Delete(op.name); err != nil {
				return fmt.Errorf("index: wal replay: %w", err)
			}
		}
	}
	if ix.tier.walSeq.Load() < maxSeq {
		ix.tier.walSeq.Store(maxSeq)
	}
	ix.tier.walReplayed.Store(uint64(len(all)))
	ix.tier.walTornBytes.Store(torn)
	for si, sh := range ix.shards {
		w, err := openShardWAL(walPath(ix.tier.dataDir, si), si, ix.tier, scans[si].validEnd, scans[si].frames)
		if err != nil {
			return fmt.Errorf("index: %w", err)
		}
		sh.wal.Store(w)
	}
	return nil
}

// Tiered reports whether the index has an on-disk full-width tier.
func (ix *Index) Tiered() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tier != nil
}

// DataDir returns the tiered data directory, or "" for non-tiered
// indexes.
func (ix *Index) DataDir() string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.tier == nil {
		return ""
	}
	return ix.tier.dataDir
}

// SetBudget caps how many full-width rescores one query spends per
// shard (0 = unbounded, the default — results then match the
// non-tiered path exactly; a positive budget trades recall under
// adversarially flat score distributions for a hard I/O bound).
// Safe to adjust on a live index.
func (ix *Index) SetBudget(n int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.tier != nil {
		ix.tier.budget.Store(int64(n))
	}
}

// Budget returns the per-shard rescore budget (0 = unbounded or
// non-tiered).
func (ix *Index) Budget() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.tier == nil {
		return 0
	}
	return int(ix.tier.budget.Load())
}

// Tier returns a snapshot of tiered-storage state, or nil for
// non-tiered indexes (so it serializes as an absent field in Stats).
func (ix *Index) Tier() *TierStats {
	ix.mu.RLock()
	shards := ix.shards
	tier := ix.tier
	bits := ix.bits
	ix.mu.RUnlock()
	if tier == nil {
		return nil
	}
	st := &TierStats{
		PrefilterBits:     bits,
		Budget:            int(tier.budget.Load()),
		SegmentRows:       tier.segmentRows,
		PrefilterScanned:  tier.scanned.Load(),
		PrefilterSurvived: tier.survived.Load(),
		Rescored:          tier.rescored.Load(),
		ReadErrors:        tier.readErrors.Load(),
	}
	for _, sh := range shards {
		segs, mapped, head, arenaUsed := sh.tierBytes()
		st.Segments += segs
		st.MappedBytes += mapped
		st.HeadBytes += head
		st.ResidentBytes += arenaUsed + head
	}
	if st.PrefilterScanned > 0 {
		st.SurvivalRate = float64(st.PrefilterSurvived) / float64(st.PrefilterScanned)
	}
	return st
}

// Close releases the on-disk tier's mappings and file handles,
// including the write-ahead logs (buffered-but-unsynced frames are
// dropped — callers that need them durable call SyncWAL first, and the
// ack path already has). It is a no-op on non-tiered indexes; the index
// must not be used afterwards.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var first error
	for _, sh := range ix.shards {
		sh.mu.Lock()
		if sh.full != nil {
			if err := sh.full.close(); err != nil && first == nil {
				first = err
			}
		}
		if w := sh.wal.Load(); w != nil {
			if err := w.close(); err != nil && first == nil {
				first = err
			}
			sh.wal.Store(nil)
		}
		sh.mu.Unlock()
	}
	return first
}

package core

import "fmt"

// Packing widths for the signature arena. At 64 bits every slot keeps
// its full minhash value and behavior is byte-identical to the
// per-record signature store this arena replaced. At 16 and 8 bits only
// the low b bits of every slot are kept (b-bit minwise hashing), so 4
// or 8 slots pack into each uint64 word: an 8x smaller working set and
// a word-parallel comparator, at the cost of a small, quantifiable
// extra-collision rate (two genuinely different slots agree on their
// low b bits with probability 2^-b).
const (
	// DefaultBits keeps full-width slots; the default.
	DefaultBits = 64
)

// validBits normalizes and validates a packing width: 0 means
// DefaultBits; otherwise it must be one of 64, 16, or 8.
func validBits(bits int) (int, error) {
	switch bits {
	case 0:
		return DefaultBits, nil
	case 64, 16, 8:
		return bits, nil
	default:
		return 0, fmt.Errorf("bits: unsupported packing width %d (want 64, 16, or 8)", bits)
	}
}

// laneMask returns the per-slot value mask for a packing width: the low
// `bits` bits, or all ones at full width.
func laneMask(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}

// sigWords returns how many uint64 words one packed signature of
// `slots` b-bit lanes occupies. The last word may be partially used;
// its padding lanes are always zero on every row, so they cancel in
// comparisons (see packedMatchingSlots).
func sigWords(slots, bits int) int {
	if slots <= 0 {
		return 0
	}
	return (slots*bits + 63) / 64
}

// sigArena is a contiguous packed signature store: every record's
// signature occupies the same number of words, back to back in one
// []uint64 buffer, addressed by record index. Exact scans walk the
// buffer cache-linearly instead of pointer-chasing per-record slices.
// The arena is not internally locked; the owning shard serializes
// access.
type sigArena struct {
	bits  int
	slots int
	words int // words per signature
	buf   []uint64
}

func newSigArena(slots, bits int) *sigArena {
	return &sigArena{bits: bits, slots: slots, words: sigWords(slots, bits)}
}

// appendSig packs the full-width slot values of sig onto the end of the
// arena, truncating each slot to the arena's packing width, and returns
// the new record's index.
func (a *sigArena) appendSig(sig []uint64) int {
	idx := a.len()
	a.buf = packSignatureAppend(a.buf, sig, a.bits)
	return idx
}

// len returns the number of signatures stored.
func (a *sigArena) len() int {
	if a.words == 0 {
		return 0
	}
	return len(a.buf) / a.words
}

// row returns the packed words of signature i, aliasing the arena
// buffer. The slice is only valid until the next appendSig (growth may
// reallocate); callers hold the shard lock across use.
func (a *sigArena) row(i int) []uint64 {
	off := i * a.words
	return a.buf[off : off+a.words : off+a.words]
}

// appendUnpacked appends signature i's slot values to dst, truncated to
// the arena's packing width. At 64 bits the values are the originals.
func (a *sigArena) appendUnpacked(dst []uint64, i int) []uint64 {
	return unpackSignatureAppend(dst, a.row(i), a.slots, a.bits)
}

// usedBytes returns the bytes holding live signatures; capBytes the
// bytes allocated (append growth keeps headroom).
func (a *sigArena) usedBytes() int64 { return int64(len(a.buf)) * 8 }
func (a *sigArena) capBytes() int64  { return int64(cap(a.buf)) * 8 }

// packSignatureAppend packs full-width slot values into b-bit lanes,
// little-endian within each word (slot j of a word occupies bits
// [j*b, (j+1)*b)), and appends the packed words to dst. Padding lanes
// in a final partial word are zero.
func packSignatureAppend(dst []uint64, sig []uint64, bits int) []uint64 {
	if bits == 64 {
		return append(dst, sig...)
	}
	mask := laneMask(bits)
	var w uint64
	shift := 0
	for _, v := range sig {
		w |= (v & mask) << uint(shift)
		shift += bits
		if shift == 64 {
			dst = append(dst, w)
			w, shift = 0, 0
		}
	}
	if shift != 0 {
		dst = append(dst, w)
	}
	return dst
}

// unpackSignatureAppend is the inverse of packSignatureAppend: it
// appends `slots` lane values from the packed words to dst.
func unpackSignatureAppend(dst []uint64, packed []uint64, slots, bits int) []uint64 {
	if bits == 64 {
		return append(dst, packed[:slots]...)
	}
	mask := laneMask(bits)
	perWord := 64 / bits
	for i := 0; i < slots; i++ {
		w := packed[i/perWord]
		dst = append(dst, (w>>uint((i%perWord)*bits))&mask)
	}
	return dst
}

package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// plantedCorpus builds an index of n records through Engine.AddBatch,
// `planted` of which are near-duplicates of the returned query sketch
// (named "near-<i>"); the rest is random filler. Everything is
// deterministic in seed.
func plantedCorpus(tb testing.TB, n, planted int, seed int64) (*Index, *Sketch) {
	tb.Helper()
	const recBytes = 256
	eng, err := NewEngine(Options{IndexName: "planted"})
	if err != nil {
		tb.Fatal(err)
	}
	base := benchData(recBytes, seed)
	recs := make([]Record, 0, n)
	for i := 0; i < planted; i++ {
		data := make([]byte, len(base))
		copy(data, base)
		rng := rand.New(rand.NewSource(seed + int64(i) + 1))
		for j := 0; j < 5; j++ {
			data[rng.Intn(len(data))] = byte('a' + rng.Intn(26))
		}
		recs = append(recs, Record{Name: fmt.Sprintf("near-%d", i), Data: data})
	}
	for i := planted; i < n; i++ {
		recs = append(recs, Record{Name: fmt.Sprintf("rand-%d", i), Data: benchData(recBytes, seed+int64(i)+1000)})
	}
	added, err := eng.AddBatch(recs)
	if err != nil {
		tb.Fatal(err)
	}
	if added != n {
		tb.Fatalf("AddBatch added %d, want %d", added, n)
	}
	return eng.Index(), eng.Sketcher().Sketch(Record{Name: "query", Data: base})
}

func TestShardFor(t *testing.T) {
	const shards = 16
	hit := make([]int, shards)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("record-%d", i)
		s := shardFor(name, shards)
		if s < 0 || s >= shards {
			t.Fatalf("shardFor(%q, %d) = %d, out of range", name, shards, s)
		}
		if s != shardFor(name, shards) {
			t.Fatalf("shardFor(%q) is not deterministic", name)
		}
		hit[s]++
	}
	for i, n := range hit {
		if n == 0 {
			t.Errorf("shard %d received no records out of 1000; striping is degenerate", i)
		}
	}
}

// TestShardedConcurrentAddBatchSearch hammers a sharded index with
// concurrent AddBatch writers and LSH/exact readers; it exists to run
// under -race.
func TestShardedConcurrentAddBatchSearch(t *testing.T) {
	eng, err := NewEngine(Options{Threads: 4, Shards: 8, IndexName: "conc"})
	if err != nil {
		t.Fatal(err)
	}
	query := Record{Name: "query", Data: []byte("the query payload shared by all concurrent readers here")}

	const writers, readers, perBatch, batches = 4, 4, 25, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				recs := make([]Record, perBatch)
				for i := range recs {
					recs[i] = Record{
						Name: fmt.Sprintf("w%d-b%d-rec%d", w, b, i),
						Data: []byte(fmt.Sprintf("record payload %d/%d from writer %d with extra text", b, i, w)),
					}
				}
				if _, err := eng.AddBatch(recs); err != nil {
					t.Errorf("AddBatch: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := eng.Search(query, 3, 0); err != nil {
					t.Errorf("lsh search: %v", err)
					return
				}
				q := eng.Sketcher().Sketch(query)
				if _, err := SearchTopK(eng.Index(), q, 3, 0, eng.Pool()); err != nil {
					t.Errorf("exact search: %v", err)
					return
				}
				eng.Index().Len()
				eng.Index().Metadata()
				eng.Index().Names()
			}
		}(r)
	}
	wg.Wait()
	if got, want := eng.Index().Len(), writers*batches*perBatch; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got := eng.Index().Metadata().RecordCount; got != writers*batches*perBatch {
		t.Fatalf("RecordCount = %d, want %d", got, writers*batches*perBatch)
	}
}

func TestEngineAddBatch(t *testing.T) {
	eng, err := NewEngine(Options{K: 4, SignatureSize: 32, IndexName: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := eng.AddBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty AddBatch = %d, %v; want 0, nil", n, err)
	}
	recs := []Record{
		{Name: "a", Data: []byte("first record payload with enough bytes")},
		{Name: "b", Data: []byte("second record payload, different text")},
		{Name: "c", Data: []byte("third record payload, different again")},
	}
	if n, err := eng.AddBatch(recs); n != 3 || err != nil {
		t.Fatalf("AddBatch = %d, %v; want 3, nil", n, err)
	}
	// Re-adding the same batch plus one new record adds only the new one.
	recs = append(recs, Record{Name: "d", Data: []byte("a fourth, fresh record payload here")})
	if n, err := eng.AddBatch(recs); n != 1 || err != nil {
		t.Fatalf("duplicate AddBatch = %d, %v; want 1, nil", n, err)
	}
	if eng.Index().Len() != 4 {
		t.Fatalf("Len = %d, want 4", eng.Index().Len())
	}
	// A record with an empty name surfaces the index's validation error.
	if _, err := eng.AddBatch([]Record{{Name: "", Data: []byte("nameless")}}); err == nil {
		t.Fatal("AddBatch with empty name: want error")
	}
	// In-batch repeats: the first occurrence wins deterministically.
	dup := []Record{
		{Name: "e", Data: []byte("the first occurrence of record e wins")},
		{Name: "e", Data: []byte("the second occurrence must be dropped")},
	}
	if n, err := eng.AddBatch(dup); n != 1 || err != nil {
		t.Fatalf("in-batch duplicate AddBatch = %d, %v; want 1, nil", n, err)
	}
	want := eng.Sketcher().Sketch(dup[0])
	if got := eng.Index().Get("e"); !equalSig(got.Signature, want.Signature) {
		t.Fatal("in-batch duplicate: second occurrence overwrote the first")
	}
}

func TestRebucket(t *testing.T) {
	ix, q := plantedCorpus(t, 200, 20, 3)
	pool := NewPool(0)
	before, err := SearchTopKLSH(ix, q, 10, 0, pool)
	if err != nil {
		t.Fatal(err)
	}
	// Retune to a coarser scheme and a different stripe count; planted
	// near-duplicates sit far above both thresholds, so the top-K list
	// must be unchanged.
	if err := ix.Rebucket(LSHParams{Bands: 16, RowsPerBand: 8}, 4); err != nil {
		t.Fatal(err)
	}
	meta := ix.Metadata()
	if meta.Bands != 16 || meta.RowsPerBand != 8 || meta.Shards != 4 {
		t.Fatalf("metadata after Rebucket = %+v", meta)
	}
	if ix.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", ix.ShardCount())
	}
	after, err := SearchTopKLSH(ix, q, 10, 0, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("result count changed across Rebucket: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("result %d changed across Rebucket: %+v vs %+v", i, before[i], after[i])
		}
	}
	// Invalid schemes are rejected and leave the index untouched.
	if err := ix.Rebucket(LSHParams{Bands: 5, RowsPerBand: 5}, 4); err == nil {
		t.Fatal("Rebucket with non-covering scheme: want error")
	}
	if err := ix.Rebucket(LSHParams{Bands: 16, RowsPerBand: 8}, 0); err == nil {
		t.Fatal("Rebucket with zero shards: want error")
	}
	if ix.ShardCount() != 4 {
		t.Fatalf("failed Rebucket mutated the index: ShardCount = %d", ix.ShardCount())
	}
}

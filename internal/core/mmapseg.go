package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"unsafe"
)

// Sealed segment files hold one immutable extent of a shard's
// full-width signature tier: a fixed little-endian header followed by
// rows*slots uint64 payload words. The layout is normative in
// docs/FORMAT.md; the constants here must match it.
const (
	segMagic      = "SKSG"
	segVersion    = 1
	segHeaderSize = 40 // 8-byte aligned so the mmap'd payload view is too
)

// mmapForceFallback routes openSegment onto the pread path even where
// mmap is available. Tests flip it to exercise the fallback; operators
// set SKETCHENGINE_NO_MMAP=1 to the same effect (e.g. on filesystems
// where mapped page faults misbehave).
var mmapForceFallback = os.Getenv("SKETCHENGINE_NO_MMAP") != ""

// hostLittleEndian guards the zero-copy reinterpretation of mapped
// segment bytes as []uint64: payload words are little-endian on disk,
// so a big-endian host must take the decoding pread path instead.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// segment is one sealed extent of a shard's full-width tier, covering
// shard-local rows [base, base+rows). Sealed segments are immutable:
// the checksum is computed at seal time and verified on every open.
// Reads go through the mmap'd view when available (data != nil) and
// fall back to pread on the kept-open file otherwise.
type segment struct {
	path   string
	base   int // first shard-local row index held
	rows   int
	slots  int
	crc    uint32
	data   []uint64 // payload view over the mapping; nil on the pread path
	mapped []byte   // raw mapping, released by close
	f      *os.File
}

// rowScratch is the per-caller decode buffer for pread-path row reads;
// the mmap path never touches it.
type rowScratch struct {
	b []byte
	w []uint64
}

// writeSegment seals rows full-width signatures (rows*slots words,
// row-major) into a new segment file at path, written to a temp file in
// the same directory and renamed into place so a crash mid-seal never
// leaves a half-written segment under its final name. It returns the
// payload CRC32 recorded in the header.
func writeSegment(path string, base, slots, rows int, words []uint64) (crc uint32, err error) {
	if len(words) != rows*slots {
		return 0, fmt.Errorf("segment: %d payload words do not cover %d rows x %d slots", len(words), rows, slots)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".seg-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("segment: seal: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	hdr := make([]byte, segHeaderSize)
	copy(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(slots))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(rows))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(base))
	// hdr[32:36] (CRC) is back-filled after the payload pass.
	if _, err = f.Write(hdr); err != nil {
		return 0, fmt.Errorf("segment: seal: %w", err)
	}

	h := crc32.NewIEEE()
	buf := make([]byte, 0, 1<<16)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		h.Write(buf) // never fails
		_, werr := f.Write(buf)
		buf = buf[:0]
		return werr
	}
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
		if len(buf) == cap(buf) {
			if err = flush(); err != nil {
				return 0, fmt.Errorf("segment: seal: %w", err)
			}
		}
	}
	if err = flush(); err != nil {
		return 0, fmt.Errorf("segment: seal: %w", err)
	}
	crc = h.Sum32()
	var crcBytes [4]byte
	binary.LittleEndian.PutUint32(crcBytes[:], crc)
	if _, err = f.WriteAt(crcBytes[:], 32); err != nil {
		return 0, fmt.Errorf("segment: seal: %w", err)
	}
	// CreateTemp makes 0600 files; match SaveFile's world-readable 0644.
	if err = f.Chmod(0o644); err != nil {
		return 0, fmt.Errorf("segment: seal: %w", err)
	}
	if err = f.Sync(); err != nil {
		return 0, fmt.Errorf("segment: seal: %w", err)
	}
	if err = f.Close(); err != nil {
		return 0, fmt.Errorf("segment: seal: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("segment: seal: %w", err)
	}
	return crc, nil
}

// openSegment opens and verifies a sealed segment: the size, magic,
// version, geometry, and base must match what the manifest promised,
// and the payload must hash to the recorded CRC32 (checked over the
// mapped bytes, or in one streaming pass on the pread path). A mismatch
// anywhere is a corrupt or truncated file and is rejected with an error
// naming the file and the failing check.
func openSegment(path string, base, slots, rows int, wantCRC uint32) (sg *segment, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("segment %s: %w", path, err)
	}
	payload := int64(rows) * int64(slots) * 8
	if want := int64(segHeaderSize) + payload; fi.Size() != want {
		return nil, fmt.Errorf("segment %s: truncated or oversized: %d bytes on disk, want %d (%d rows x %d slots)",
			path, fi.Size(), want, rows, slots)
	}
	hdr := make([]byte, segHeaderSize)
	if _, err = io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("segment %s: header: %w", path, err)
	}
	if string(hdr[0:4]) != segMagic {
		return nil, fmt.Errorf("segment %s: bad magic %q (not a segment file)", path, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != segVersion {
		return nil, fmt.Errorf("segment %s: version %d is newer than this engine supports (max %d)", path, v, segVersion)
	}
	if got := int(binary.LittleEndian.Uint32(hdr[8:12])); got != slots {
		return nil, fmt.Errorf("segment %s: holds %d-slot signatures, manifest expects %d", path, got, slots)
	}
	if got := int(binary.LittleEndian.Uint64(hdr[16:24])); got != rows {
		return nil, fmt.Errorf("segment %s: holds %d rows, manifest expects %d", path, got, rows)
	}
	if got := int(binary.LittleEndian.Uint64(hdr[24:32])); got != base {
		return nil, fmt.Errorf("segment %s: base row %d, manifest expects %d", path, got, base)
	}
	crc := binary.LittleEndian.Uint32(hdr[32:36])
	if crc != wantCRC {
		return nil, fmt.Errorf("segment %s: header checksum %08x does not match manifest %08x", path, crc, wantCRC)
	}

	sg = &segment{path: path, base: base, rows: rows, slots: slots, crc: crc, f: f}
	if mmapAvailable && hostLittleEndian && !mmapForceFallback {
		mapped, merr := mapFile(f, int(int64(segHeaderSize)+payload))
		if merr == nil {
			sg.mapped = mapped
			if payload > 0 {
				sg.data = unsafe.Slice((*uint64)(unsafe.Pointer(&mapped[segHeaderSize])), rows*slots)
			}
			if got := crc32.ChecksumIEEE(mapped[segHeaderSize:]); got != crc {
				sg.close()
				return nil, fmt.Errorf("segment %s: payload checksum %08x does not match header %08x (file corrupt)", path, got, crc)
			}
			return sg, nil
		}
		// Mapping failed (exotic filesystem, resource limits): fall
		// through to pread rather than refusing to serve.
	}
	h := crc32.NewIEEE()
	if _, err = io.CopyN(h, f, payload); err != nil {
		return nil, fmt.Errorf("segment %s: payload: %w", path, err)
	}
	if got := h.Sum32(); got != crc {
		return nil, fmt.Errorf("segment %s: payload checksum %08x does not match header %08x (file corrupt)", path, got, crc)
	}
	return sg, nil
}

// rowWords returns the slots words of shard-local row base+local. On
// the mmap path the slice aliases the mapping (valid for the segment's
// lifetime); on the pread path it aliases sc, overwritten by the next
// read through the same scratch.
func (sg *segment) rowWords(local int, sc *rowScratch) ([]uint64, error) {
	off := local * sg.slots
	if sg.data != nil {
		return sg.data[off : off+sg.slots : off+sg.slots], nil
	}
	need := sg.slots * 8
	if cap(sc.b) < need {
		sc.b = make([]byte, need)
	} else {
		sc.b = sc.b[:need]
	}
	if _, err := sg.f.ReadAt(sc.b, int64(segHeaderSize)+int64(off)*8); err != nil {
		return nil, fmt.Errorf("segment %s: row %d: %w", sg.path, local, err)
	}
	if cap(sc.w) < sg.slots {
		sc.w = make([]uint64, sg.slots)
	} else {
		sc.w = sc.w[:sg.slots]
	}
	for i := range sc.w {
		sc.w[i] = binary.LittleEndian.Uint64(sc.b[i*8:])
	}
	return sc.w, nil
}

// forEachRow streams every row to fn in order — the sequential bulk
// path LoadDir uses to rebuild the prefilter. The sig slice is only
// valid within the callback.
func (sg *segment) forEachRow(fn func(local int, sig []uint64) error) error {
	if sg.data != nil {
		for r := 0; r < sg.rows; r++ {
			if err := fn(r, sg.data[r*sg.slots:(r+1)*sg.slots]); err != nil {
				return err
			}
		}
		return nil
	}
	sr := io.NewSectionReader(sg.f, segHeaderSize, int64(sg.rows)*int64(sg.slots)*8)
	br := bufio.NewReaderSize(sr, 1<<16)
	rowBytes := make([]byte, sg.slots*8)
	sig := make([]uint64, sg.slots)
	for r := 0; r < sg.rows; r++ {
		if _, err := io.ReadFull(br, rowBytes); err != nil {
			return fmt.Errorf("segment %s: row %d: %w", sg.path, r, err)
		}
		for i := range sig {
			sig[i] = binary.LittleEndian.Uint64(rowBytes[i*8:])
		}
		if err := fn(r, sig); err != nil {
			return err
		}
	}
	return nil
}

// mappedBytes is the payload footprint served from the page cache via
// the mapping (0 on the pread path — those reads are unmapped I/O).
func (sg *segment) mappedBytes() int64 {
	if sg.mapped == nil {
		return 0
	}
	return int64(sg.rows) * int64(sg.slots) * 8
}

func (sg *segment) close() error {
	var err error
	if sg.mapped != nil {
		err = unmapFile(sg.mapped)
		sg.mapped, sg.data = nil, nil
	}
	if sg.f != nil {
		if cerr := sg.f.Close(); err == nil {
			err = cerr
		}
		sg.f = nil
	}
	return err
}

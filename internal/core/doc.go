// Package core implements the sketch/index/query engine at the heart of
// sketchengine.
//
// The pipeline has three stages:
//
//  1. Sketching: input records are shingled with a rolling hash and
//     compressed into compact fixed-size minhash signatures (see Sketcher).
//  2. Indexing: signatures live in a sharded in-memory Index — N
//     lock-striped shards keyed by record-name hash, each owning a
//     contiguous packed signature arena (optionally truncated to b-bit
//     slots) and LSH band postings — alongside JSON metadata with
//     incremental add / skip-existing semantics.
//  3. Querying: pairwise-distance and top-K similarity queries fan out
//     over a bounded worker pool sized to GOMAXPROCS (see Pool), one
//     goroutine per shard, each sweeping its arena cache-linearly.
//     Top-K search runs in LSH mode by default, probing band buckets
//     for candidates instead of scanning the whole corpus (see
//     SearchTopKLSH).
//
// # Tiered storage
//
// An index can optionally scale past RAM (EnableTiered, LoadDir): the
// in-memory arena becomes a b-bit packed prefilter and the full-width
// signatures move to immutable on-disk segment files, mmap'd read-only
// where the platform allows and served by pread elsewhere. Queries then
// run in two phases — a word-parallel scan of the resident prefilter
// followed by full-width rescoring of the survivors, ranked by packed
// score so a top-K heap can stop reading as soon as no remaining
// candidate's upper bound can beat the current worst result. See
// docs/ARCHITECTURE.md for the data flow and docs/FORMAT.md for the
// on-disk layout.
//
// # Invariants
//
// The package leans on a small set of invariants; code that changes
// them must change the places that assume them:
//
//   - Truncation is monotone: a b-bit packed slot comparison matches
//     whenever the full-width slots match, so the packed similarity is
//     an upper bound on the full-width similarity. This is what makes
//     the tiered prefilter cut and the rescore early-exit exact rather
//     than approximate (shard.tieredRescore), and what bounds b-bit
//     over-reporting by the 2^-b collision rate (see the collision-bound
//     test).
//   - Band keys are masked to the packed width on both the index and
//     query side, so a full-width query probes a truncated index's
//     buckets correctly (LSHParams.bandKey).
//   - Shard-local row order is append order, shared by the arena, the
//     names/shingles columns, and the tiered full store: row i of a
//     shard means the same record in all of them. Tiered segments tile
//     [0, headBase) contiguously and the mutable head holds rows from
//     headBase up.
//   - Format v1–v4 JSON files load byte-compatibly and re-save in the
//     current JSON format; tiered (v5) indexes persist only through
//     SaveDir, whose manifest rename is the commit point. Sealed
//     segment files are immutable — snapshots only add files.
//   - Sketch signatures, scores, and result ordering are deterministic
//     for a given corpus and parameters, independent of thread count,
//     so goldens can pin outputs byte-for-byte.
package core

package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Version identifies the engine build. It is reported by the CLI and
// stamped into saved index metadata.
const Version = "0.9.0"

// Options configures an Engine. Zero values fall back to the package
// defaults (DefaultK, DefaultSignatureSize, DefaultScheme sketching,
// GOMAXPROCS workers, DefaultLSHParams banding, DefaultShards stripes,
// LSH search mode).
type Options struct {
	// K is the shingle (k-mer) length used when sketching records.
	K int
	// SignatureSize is the number of minhash slots per signature.
	SignatureSize int
	// Scheme selects the sketching scheme; empty means DefaultScheme
	// (OPH). Use SchemeKMH for compatibility with pre-v3 indexes.
	Scheme Scheme
	// Threads bounds the worker pool; <= 0 means GOMAXPROCS.
	Threads int
	// IndexName names the index created by the engine.
	IndexName string
	// Bands and RowsPerBand set the LSH banding scheme; both zero means
	// DefaultLSHParams(SignatureSize). When set, Bands*RowsPerBand must
	// equal SignatureSize.
	Bands       int
	RowsPerBand int
	// Shards is the number of lock stripes in the index; <= 0 means
	// DefaultShards.
	Shards int
	// Bits is the signature packing width: 64 (full minhash values,
	// byte-identical to pre-arena behavior), 16, or 8 (b-bit minwise
	// hashing: only the low b bits of every slot are stored, shrinking
	// the working set 4x/8x and comparing 4/8 slots per word op, at a
	// 2^-b per-slot extra-collision cost). 0 means DefaultBits (64).
	Bits int
	// Mode selects how Search scans the index; empty means ModeLSH.
	Mode SearchMode
	// Tiered splits storage into the RAM-resident packed prefilter (at
	// Bits width) plus full-width signatures in mmap'd on-disk segments
	// under DataDir; see Index.EnableTiered and docs/ARCHITECTURE.md.
	Tiered bool
	// DataDir roots the tiered index directory. Required when Tiered.
	DataDir string
	// SegmentRows is how many records accumulate in a shard's mutable
	// head before it is sealed into an immutable segment file; <= 0
	// means DefaultSegmentRows. Tiered only.
	SegmentRows int
	// Budget caps full-width rescores per shard per query; 0 means
	// unbounded (tiered results then match non-tiered exactly). Tiered
	// only.
	Budget int
}

// Engine ties the three pipeline stages together behind one entry point.
// It is safe for concurrent use: the index is internally locked and the
// sketcher and pool are stateless after construction.
type Engine struct {
	sketcher *Sketcher
	index    *Index
	pool     *Pool
	mode     SearchMode
	// queries recycles query sketches (name cleared, signature buffer
	// kept) so steady-state searches never allocate the ~1KB signature
	// per request; see SearchMode.
	queries sync.Pool
}

// NewEngine builds an Engine from opts, applying defaults for zero fields.
func NewEngine(opts Options) (*Engine, error) {
	if opts.K == 0 {
		opts.K = DefaultK
	}
	if opts.SignatureSize == 0 {
		opts.SignatureSize = DefaultSignatureSize
	}
	scheme, err := ParseScheme(string(opts.Scheme)) // empty selects DefaultScheme
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if opts.IndexName == "" {
		opts.IndexName = "default"
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	lsh := DefaultLSHParams(opts.SignatureSize)
	if opts.Bands != 0 || opts.RowsPerBand != 0 {
		if lsh, err = NewLSHParams(opts.Bands, opts.RowsPerBand, opts.SignatureSize); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	mode, err := ParseSearchMode(string(opts.Mode))
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	sk, err := NewSketcherScheme(opts.K, opts.SignatureSize, scheme)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	ix, err := NewIndexWith(opts.IndexName, opts.K, opts.SignatureSize, scheme, lsh, opts.Shards, opts.Bits)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if opts.Tiered {
		if err := ix.EnableTiered(opts.DataDir, opts.SegmentRows, 0); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		ix.SetBudget(opts.Budget)
	}
	return &Engine{
		sketcher: sk,
		index:    ix,
		pool:     NewPool(opts.Threads),
		mode:     mode,
	}, nil
}

// NewEngineWithIndex wraps an existing index (e.g. one returned by
// LoadIndex), deriving the sketcher parameters — including the sketch
// scheme — from the index metadata so queries are always sketched
// compatibly. The engine starts in LSH search mode; use SetMode to
// change it.
func NewEngineWithIndex(ix *Index, threads int) (*Engine, error) {
	meta := ix.Metadata()
	sk, err := NewSketcherScheme(meta.K, meta.SignatureSize, meta.Scheme)
	if err != nil {
		return nil, fmt.Errorf("engine: index %q: %w", meta.Name, err)
	}
	return &Engine{sketcher: sk, index: ix, pool: NewPool(threads), mode: ModeLSH}, nil
}

// Sketcher returns the engine's sketcher.
func (e *Engine) Sketcher() *Sketcher { return e.sketcher }

// Index returns the engine's index.
func (e *Engine) Index() *Index { return e.index }

// Pool returns the engine's worker pool.
func (e *Engine) Pool() *Pool { return e.pool }

// Mode returns the engine's search mode.
func (e *Engine) Mode() SearchMode { return e.mode }

// SetMode switches the search mode. It is not synchronized with
// in-flight Search calls; set the mode before serving queries.
func (e *Engine) SetMode(m SearchMode) { e.mode = m }

// Add sketches rec and adds it to the index. It reports whether the
// record was added (false means a record with the same name already
// existed and was skipped). On a WAL-attached tiered index a true
// return is durable: the logged frame has been fsynced before Add
// returns. A sync failure returns the error with added=true — the
// record is in memory but not yet on disk (the next snapshot covers
// it).
func (e *Engine) Add(rec Record) (bool, error) {
	added, err := e.index.Add(e.sketcher.Sketch(rec))
	if err != nil || !added {
		return added, err
	}
	return true, e.index.SyncWAL()
}

// Delete removes the record named name from the index, reporting
// whether it was present. Like Add, a true return on a WAL-attached
// tiered index is durable before Delete returns.
func (e *Engine) Delete(name string) (bool, error) {
	deleted, err := e.index.Delete(name)
	if err != nil || !deleted {
		return deleted, err
	}
	return true, e.index.SyncWAL()
}

// AddBatch sketches and inserts recs through the worker pool: sketching
// fans out over the pool, and the inserts land on the index's lock
// stripes concurrently. It returns the number of records actually added
// (duplicates are skipped, as in Add) and the first error encountered.
// When the batch itself repeats a name, the first occurrence wins, as
// it would under sequential Adds.
func (e *Engine) AddBatch(recs []Record) (int, error) {
	oks, err := e.AddBatchResults(recs)
	added := 0
	for _, ok := range oks {
		if ok {
			added++
		}
	}
	return added, err
}

// AddBatchResults is AddBatch with per-record outcomes: oks[i] reports
// whether recs[i] was added (false means its name was already indexed,
// or repeated earlier in the batch). Callers that coalesce several
// independent requests into one batch — like the HTTP ingest queue —
// use the flags to split the combined result back per request. On
// error, the flags for records processed before the failure are still
// meaningful.
func (e *Engine) AddBatchResults(recs []Record) ([]bool, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	// Drop in-batch repeats before the concurrent inserts so which
	// record wins never depends on goroutine scheduling.
	seen := make(map[string]struct{}, len(recs))
	unique := make([]int, 0, len(recs))
	for i, rec := range recs {
		if _, dup := seen[rec.Name]; dup {
			continue
		}
		seen[rec.Name] = struct{}{}
		unique = append(unique, i)
	}
	sketches := make([]*Sketch, len(unique))
	e.pool.Map(len(unique), func(j int) {
		sketches[j] = e.sketcher.Sketch(recs[unique[j]])
	})
	oks := make([]bool, len(unique))
	errs := make([]error, len(unique))
	e.pool.Map(len(unique), func(j int) {
		oks[j], errs[j] = e.index.Add(sketches[j])
	})
	added := make([]bool, len(recs))
	for j, i := range unique {
		if errs[j] != nil {
			return added, errs[j]
		}
		added[i] = oks[j]
	}
	// One durability barrier for the whole batch: every inserted
	// record's WAL frame is fsynced before the batch is acknowledged —
	// the group commit that makes batched ingest cheap.
	return added, e.index.SyncWAL()
}

// AddSketches inserts pre-built sketches without re-sketching — the
// replication path, where another node already computed the signatures
// and ships them over the wire. oks[i] reports whether sketches[i] was
// newly added (false means the name was already indexed, making
// replication idempotent). Like AddBatchResults, one WAL group-commit
// covers the whole batch; on a validation error the flags for sketches
// inserted before the failure are still meaningful.
func (e *Engine) AddSketches(sketches []*Sketch) ([]bool, error) {
	oks := make([]bool, len(sketches))
	for i, s := range sketches {
		ok, err := e.index.Add(s)
		if err != nil {
			return oks, err
		}
		oks[i] = ok
	}
	return oks, e.index.SyncWAL()
}

// Stats is a point-in-time snapshot of engine and index state, exposed
// for observability surfaces (the HTTP /stats endpoint, dashboards).
// ShardOccupancy has one entry per lock stripe; heavy skew means one
// stripe's lock carries most of the write traffic.
type Stats struct {
	IndexName      string     `json:"index_name"`
	Records        int        `json:"records"`
	K              int        `json:"k"`
	SignatureSize  int        `json:"signature_size"`
	Scheme         Scheme     `json:"scheme"`
	Bits           int        `json:"bits"`
	SignatureBytes int64      `json:"signature_bytes"`
	BytesPerRecord float64    `json:"bytes_per_record"`
	ArenaUtilized  float64    `json:"arena_utilization"`
	Bands          int        `json:"bands"`
	RowsPerBand    int        `json:"rows_per_band"`
	LSHThreshold   float64    `json:"lsh_threshold"`
	Shards         int        `json:"shards"`
	ShardOccupancy []int      `json:"shard_occupancy"`
	Mode           SearchMode `json:"mode"`
	Generation     uint64     `json:"generation"`
	CreatedAt      time.Time  `json:"created_at"`
	UpdatedAt      time.Time  `json:"updated_at"`
	// DeadRows counts tombstoned (deleted, not yet compacted) arena
	// rows; TombstoneRatio is DeadRows over total arena rows.
	// Compactions and CompactedRows count compaction passes and the
	// rows they reclaimed.
	DeadRows       int     `json:"dead_rows,omitempty"`
	TombstoneRatio float64 `json:"tombstone_ratio,omitempty"`
	Compactions    uint64  `json:"compactions,omitempty"`
	CompactedRows  uint64  `json:"compacted_rows,omitempty"`
	// Tier and WAL are present only on tiered indexes, so non-tiered
	// /stats output is byte-identical to previous releases.
	Tier *TierStats `json:"tier,omitempty"`
	WAL  *WALStats  `json:"wal,omitempty"`
}

// Stats returns a consistent-enough snapshot of the engine for
// monitoring: each field is read atomically, but concurrent adds may
// land between reads, so Records and ShardOccupancy can differ by
// in-flight records.
func (e *Engine) Stats() Stats {
	meta := e.index.Metadata()
	lsh := e.index.LSHParams()
	arena := e.index.Arena()
	dead, rows := e.index.Tombstones()
	var tombRatio float64
	if rows > 0 {
		tombRatio = float64(dead) / float64(rows)
	}
	return Stats{
		IndexName:      meta.Name,
		Records:        meta.RecordCount,
		K:              meta.K,
		SignatureSize:  meta.SignatureSize,
		Scheme:         normScheme(meta.Scheme),
		Bits:           arena.Bits,
		SignatureBytes: arena.SignatureBytes,
		BytesPerRecord: arena.BytesPerRecord,
		ArenaUtilized:  arena.Utilization,
		Bands:          lsh.Bands,
		RowsPerBand:    lsh.RowsPerBand,
		LSHThreshold:   lsh.Threshold(),
		Shards:         e.index.ShardCount(),
		ShardOccupancy: e.index.Occupancy(),
		Mode:           e.mode,
		Generation:     e.index.Generation(),
		CreatedAt:      meta.CreatedAt,
		UpdatedAt:      meta.UpdatedAt,
		DeadRows:       dead,
		TombstoneRatio: tombRatio,
		Compactions:    e.index.compactions.Load(),
		CompactedRows:  e.index.compactedRows.Load(),
		Tier:           e.index.Tier(),
		WAL:            e.index.WAL(),
	}
}

// Search sketches rec and returns its top-K nearest index entries,
// scanning per the engine's search mode.
func (e *Engine) Search(rec Record, topK int, minSim float64) ([]Result, error) {
	return e.SearchMode(rec, e.mode, topK, minSim)
}

// SearchMode is Search with an explicit scan mode overriding the
// engine default for this query only — the single dispatch site shared
// by the CLI (engine-wide mode) and the HTTP serving layer
// (per-request mode overrides). The query sketch comes from a pool and
// is emitted with SketchInto, so a steady-state search sketches into a
// warm buffer instead of allocating a signature per request.
func (e *Engine) SearchMode(rec Record, mode SearchMode, topK int, minSim float64) ([]Result, error) {
	return e.SearchModeCtx(context.Background(), rec, mode, topK, minSim)
}

// SearchModeCtx is SearchMode under a context: the scoring loops poll
// ctx every few hundred records and the query returns ctx's error
// instead of partial results when it fires — how a serving layer aborts
// in-flight scoring once the caller's deadline passes or the client
// disconnects. A background context adds no overhead.
func (e *Engine) SearchModeCtx(ctx context.Context, rec Record, mode SearchMode, topK int, minSim float64) ([]Result, error) {
	q, _ := e.queries.Get().(*Sketch)
	if q == nil || len(q.Signature) != e.sketcher.SignatureSize() {
		q = &Sketch{Signature: make([]uint64, e.sketcher.SignatureSize())}
	}
	q.Name = rec.Name
	q.K = e.sketcher.K()
	q.Scheme = e.sketcher.Scheme()
	q.Shingles = e.sketcher.SketchInto(q.Signature, rec)
	var res []Result
	var err error
	if mode == ModeExact {
		res, err = SearchTopKCtx(ctx, e.index, q, topK, minSim, e.pool)
	} else {
		res, err = SearchTopKLSHCtx(ctx, e.index, q, topK, minSim, e.pool)
	}
	// Results carry only the name string; the signature buffer never
	// escapes the search, so the sketch can be recycled.
	q.Name = ""
	e.queries.Put(q)
	return res, err
}

// Package core implements the sketch/index/query engine at the heart of
// sketchengine.
//
// The pipeline has three stages:
//
//  1. Sketching: input records are shingled with a rolling hash and
//     compressed into compact fixed-size minhash signatures (see Sketcher).
//  2. Indexing: signatures live in an in-memory Index alongside JSON
//     metadata (name, created/updated timestamps, record count) with
//     incremental add / skip-existing semantics.
//  3. Querying: pairwise-distance and top-K similarity queries fan out
//     over a bounded worker pool sized to GOMAXPROCS (see Pool).
package core

import "fmt"

// Version identifies the engine build. It is reported by the CLI and
// stamped into saved index metadata.
const Version = "0.1.0"

// Options configures an Engine. Zero values fall back to the package
// defaults (DefaultK, DefaultSignatureSize, GOMAXPROCS workers).
type Options struct {
	// K is the shingle (k-mer) length used when sketching records.
	K int
	// SignatureSize is the number of minhash slots per signature.
	SignatureSize int
	// Threads bounds the worker pool; <= 0 means GOMAXPROCS.
	Threads int
	// IndexName names the index created by the engine.
	IndexName string
}

// Engine ties the three pipeline stages together behind one entry point.
// It is safe for concurrent use: the index is internally locked and the
// sketcher and pool are stateless after construction.
type Engine struct {
	sketcher *Sketcher
	index    *Index
	pool     *Pool
}

// NewEngine builds an Engine from opts, applying defaults for zero fields.
func NewEngine(opts Options) (*Engine, error) {
	if opts.K == 0 {
		opts.K = DefaultK
	}
	if opts.SignatureSize == 0 {
		opts.SignatureSize = DefaultSignatureSize
	}
	if opts.IndexName == "" {
		opts.IndexName = "default"
	}
	sk, err := NewSketcher(opts.K, opts.SignatureSize)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return &Engine{
		sketcher: sk,
		index:    NewIndex(opts.IndexName, opts.K, opts.SignatureSize),
		pool:     NewPool(opts.Threads),
	}, nil
}

// NewEngineWithIndex wraps an existing index (e.g. one returned by
// LoadIndex), deriving the sketcher parameters from the index metadata
// so queries are always sketched compatibly.
func NewEngineWithIndex(ix *Index, threads int) (*Engine, error) {
	meta := ix.Metadata()
	sk, err := NewSketcher(meta.K, meta.SignatureSize)
	if err != nil {
		return nil, fmt.Errorf("engine: index %q: %w", meta.Name, err)
	}
	return &Engine{sketcher: sk, index: ix, pool: NewPool(threads)}, nil
}

// Sketcher returns the engine's sketcher.
func (e *Engine) Sketcher() *Sketcher { return e.sketcher }

// Index returns the engine's index.
func (e *Engine) Index() *Index { return e.index }

// Pool returns the engine's worker pool.
func (e *Engine) Pool() *Pool { return e.pool }

// Add sketches rec and adds it to the index. It reports whether the
// record was added (false means a record with the same name already
// existed and was skipped).
func (e *Engine) Add(rec Record) (bool, error) {
	return e.index.Add(e.sketcher.Sketch(rec))
}

// Search sketches rec and returns its top-K nearest index entries.
func (e *Engine) Search(rec Record, topK int, minSim float64) ([]Result, error) {
	return SearchTopK(e.index, e.sketcher.Sketch(rec), topK, minSim, e.pool)
}

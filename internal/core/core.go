package core

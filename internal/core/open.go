package core

import (
	"fmt"
	"os"
	"path/filepath"
)

// Open opens an index at path, whatever its on-disk layout: a
// single-file JSON index (formats v1–v4, written by SaveFile) loads
// directly; a tiered directory (formats v5–v6, written by SaveDir)
// loads through the manifest, restores tombstones, and replays the
// write-ahead log, so every mutation acknowledged before a crash is
// present. It replaces the LoadIndexFile/LoadDir/IsTieredDir sniffing
// trio: callers hand Open a path and get the right loader.
func Open(path string) (*Index, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	if fi.IsDir() {
		if _, err := os.Stat(filepath.Join(path, ManifestFile)); err != nil {
			return nil, fmt.Errorf("index: %s is a directory without a %s; not an index (a tiered index materializes its manifest on the first SaveDir)", path, ManifestFile)
		}
		return loadDir(path)
	}
	return loadIndexFile(path)
}

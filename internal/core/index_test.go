package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex("empty", DefaultK, DefaultSignatureSize)
	if ix.Len() != 0 {
		t.Fatalf("Len = %d, want 0", ix.Len())
	}
	if got := ix.Names(); len(got) != 0 {
		t.Fatalf("Names = %v, want empty", got)
	}
	if ix.Get("missing") != nil {
		t.Fatal("Get on empty index: want nil")
	}
	s := mustSketcher(t, DefaultK, DefaultSignatureSize)
	q := s.Sketch(Record{Name: "q", Data: []byte("some query data here")})
	results, err := SearchTopK(ix, q, 5, 0, nil)
	if err != nil {
		t.Fatalf("SearchTopK on empty index: %v", err)
	}
	if len(results) != 0 {
		t.Fatalf("results = %v, want none", results)
	}
	meta := ix.Metadata()
	if meta.RecordCount != 0 || meta.Name != "empty" || meta.Version != Version {
		t.Fatalf("metadata = %+v", meta)
	}
}

func TestDuplicateAddsSkipped(t *testing.T) {
	ix := NewIndex("dup", 4, 32)
	s := mustSketcher(t, 4, 32)
	sk := s.Sketch(Record{Name: "rec", Data: []byte("hello world hello world")})

	added, err := ix.Add(sk)
	if err != nil || !added {
		t.Fatalf("first add = %v, %v; want true, nil", added, err)
	}
	// Second add with the same name must be skipped, not overwrite.
	other := s.Sketch(Record{Name: "rec", Data: []byte("totally different payload")})
	added, err = ix.Add(other)
	if err != nil {
		t.Fatalf("duplicate add: %v", err)
	}
	if added {
		t.Fatal("duplicate add reported added=true")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	if got := ix.Get("rec"); !equalSig(got.Signature, sk.Signature) {
		t.Fatal("duplicate add overwrote the original sketch")
	}
	if ix.Metadata().RecordCount != 1 {
		t.Fatalf("RecordCount = %d, want 1", ix.Metadata().RecordCount)
	}
}

func TestAddValidation(t *testing.T) {
	ix := NewIndex("v", 8, 64)
	if _, err := ix.Add(&Sketch{Name: "", K: 8, Signature: make([]uint64, 64)}); err == nil {
		t.Fatal("empty name: want error")
	}
	if _, err := ix.Add(&Sketch{Name: "x", K: 4, Signature: make([]uint64, 64)}); err == nil {
		t.Fatal("mismatched k: want error")
	}
	if _, err := ix.Add(&Sketch{Name: "x", K: 8, Signature: make([]uint64, 32)}); err == nil {
		t.Fatal("mismatched signature size: want error")
	}
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ix := NewIndex("round", 4, 32)
	s := mustSketcher(t, 4, 32)
	for i := 0; i < 5; i++ {
		rec := Record{Name: fmt.Sprintf("rec-%d", i), Data: bytes.Repeat([]byte{byte('a' + i)}, 20)}
		if _, err := ix.Add(s.Sketch(rec)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ix.Len() {
		t.Fatalf("loaded Len = %d, want %d", got.Len(), ix.Len())
	}
	wantMeta, gotMeta := ix.Metadata(), got.Metadata()
	if gotMeta.Name != wantMeta.Name || gotMeta.K != wantMeta.K ||
		gotMeta.SignatureSize != wantMeta.SignatureSize ||
		gotMeta.RecordCount != wantMeta.RecordCount ||
		!gotMeta.CreatedAt.Equal(wantMeta.CreatedAt) {
		t.Fatalf("metadata round trip: got %+v, want %+v", gotMeta, wantMeta)
	}
	for _, name := range ix.Names() {
		if !equalSig(got.Get(name).Signature, ix.Get(name).Signature) {
			t.Fatalf("sketch %q changed across round trip", name)
		}
	}
}

// TestLoadV1IndexRoundTrip loads a format-v1 file (written before the
// format field, LSH parameters, sharding, and sketch schemes existed),
// checks that defaults are applied — including the legacy KMH scheme —
// and round-trips it through Save into a current-format file.
func TestLoadV1IndexRoundTrip(t *testing.T) {
	const v1 = `{"meta":{"name":"legacy","version":"0.1.0","created_at":"2026-01-02T03:04:05Z","updated_at":"2026-01-02T03:04:05Z","record_count":2,"k":4,"signature_size":8},"sketches":[{"name":"a","k":4,"shingles":3,"signature":[1,2,3,4,5,6,7,8]},{"name":"b","k":4,"shingles":3,"signature":[1,2,3,4,9,9,9,9]}]}`
	ix, err := LoadIndex(bytes.NewReader([]byte(v1)))
	if err != nil {
		t.Fatalf("load v1: %v", err)
	}
	meta := ix.Metadata()
	def := DefaultLSHParams(8)
	if meta.Format != CurrentFormat {
		t.Fatalf("Format = %d, want %d", meta.Format, CurrentFormat)
	}
	if meta.Bands != def.Bands || meta.RowsPerBand != def.RowsPerBand || meta.Shards != DefaultShards {
		t.Fatalf("v1 defaults not applied: %+v", meta)
	}
	if meta.Scheme != SchemeKMH {
		t.Fatalf("v1 scheme = %q, want %q", meta.Scheme, SchemeKMH)
	}
	if ix.Len() != 2 || ix.Get("a") == nil || ix.Get("b") == nil {
		t.Fatalf("v1 records not loaded: len=%d", ix.Len())
	}
	if ix.Get("a").Scheme != SchemeKMH {
		t.Fatalf("loaded sketch scheme = %q, want %q stamped from metadata", ix.Get("a").Scheme, SchemeKMH)
	}
	// LSH structures must be live after a v1 load: "a" and "b" share
	// their first band (rows 1,2,3,4), so each is a candidate of the
	// other's signature.
	if res, err := SearchTopKLSH(ix, ix.Get("a"), 1, 0, nil); err != nil || len(res) != 1 || res[0].Ref != "b" {
		t.Fatalf("v1 LSH search = %v, %v; want b", res, err)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"format":4`)) ||
		!bytes.Contains(buf.Bytes(), []byte(`"scheme":"kmh"`)) ||
		!bytes.Contains(buf.Bytes(), []byte(`"bits":64`)) {
		t.Fatalf("re-saved v1 index is not format 4 with an explicit scheme and packing width: %s", buf.String())
	}
	got, err := LoadIndex(&buf)
	if err != nil {
		t.Fatalf("reload v4: %v", err)
	}
	gotMeta := got.Metadata()
	if gotMeta.Format != CurrentFormat || gotMeta.Scheme != SchemeKMH || gotMeta.Bits != 64 ||
		gotMeta.Bands != def.Bands || gotMeta.RowsPerBand != def.RowsPerBand || gotMeta.Shards != DefaultShards {
		t.Fatalf("v4 round trip metadata = %+v", gotMeta)
	}
	if !gotMeta.CreatedAt.Equal(meta.CreatedAt) || got.Len() != 2 {
		t.Fatalf("v4 round trip lost data: %+v len=%d", gotMeta, got.Len())
	}
}

// TestLoadV2IndexAsKMH: v2 files predate schemes and were always
// k-minhash; they must load with the KMH scheme so an engine wrapped
// around them keeps sketching queries compatibly, and reject sketches
// from the new default scheme.
func TestLoadV2IndexAsKMH(t *testing.T) {
	const v2 = `{"meta":{"name":"v2db","version":"0.2.0","format":2,"created_at":"2026-01-02T03:04:05Z","updated_at":"2026-01-02T03:04:05Z","record_count":1,"k":4,"signature_size":8,"bands":2,"rows_per_band":4,"shards":4},"sketches":[{"name":"a","k":4,"shingles":3,"signature":[1,2,3,4,5,6,7,8]}]}`
	ix, err := LoadIndex(bytes.NewReader([]byte(v2)))
	if err != nil {
		t.Fatalf("load v2: %v", err)
	}
	if got := ix.Metadata().Scheme; got != SchemeKMH {
		t.Fatalf("v2 scheme = %q, want %q", got, SchemeKMH)
	}
	// An engine wrapping the loaded index must sketch queries as KMH.
	eng, err := NewEngineWithIndex(ix, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Sketcher().Scheme(); got != SchemeKMH {
		t.Fatalf("derived sketcher scheme = %q, want %q", got, SchemeKMH)
	}
	if _, err := eng.Search(Record{Name: "q", Data: []byte("some query payload")}, 3, 0); err != nil {
		t.Fatalf("search on loaded v2 index: %v", err)
	}
	// A default-scheme (OPH) sketch must be rejected, not silently mixed.
	oph := mustSketcher(t, 4, 8).Sketch(Record{Name: "new", Data: []byte("fresh record payload")})
	if _, err := ix.Add(oph); err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("adding an OPH sketch to a KMH index: err = %v, want scheme mismatch", err)
	}
	if _, err := SearchTopK(ix, oph, 3, 0, nil); err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("searching a KMH index with an OPH query: err = %v, want scheme mismatch", err)
	}
}

// TestSaveLoadRoundTripPackedWidths round-trips a populated index
// through Save/Load at every packing width: metadata (including bits),
// reconstructed signatures, and search results must all survive.
func TestSaveLoadRoundTripPackedWidths(t *testing.T) {
	for _, bits := range []int{64, 16, 8} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			eng, err := NewEngine(Options{IndexName: "rt", Bits: bits})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				rec := Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(512, int64(i+1))}
				if _, err := eng.Add(rec); err != nil {
					t.Fatal(err)
				}
			}
			ix := eng.Index()
			q := eng.Sketcher().Sketch(Record{Name: "q", Data: benchData(512, 1)})
			before, err := SearchTopK(ix, q, 10, 0, nil)
			if err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := LoadIndex(&buf)
			if err != nil {
				t.Fatalf("load bits=%d: %v", bits, err)
			}
			gm := got.Metadata()
			if gm.Format != CurrentFormat || gm.Bits != bits || gm.RecordCount != 50 {
				t.Fatalf("metadata = %+v, want format=%d bits=%d records=50", gm, CurrentFormat, bits)
			}
			if got.Bits() != bits {
				t.Fatalf("Bits() = %d, want %d", got.Bits(), bits)
			}
			for _, name := range ix.Names() {
				if !equalSig(got.Get(name).Signature, ix.Get(name).Signature) {
					t.Fatalf("bits=%d: sketch %q changed across round trip", bits, name)
				}
			}
			after, err := SearchTopK(got, q, 10, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(before) != len(after) {
				t.Fatalf("bits=%d: result count changed across round trip: %d vs %d", bits, len(before), len(after))
			}
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("bits=%d result %d changed: %+v vs %+v", bits, i, before[i], after[i])
				}
			}
			// Arena footprint survives too: bytes/record is the packed
			// width, not the full-width 1KB.
			if got.Arena().BytesPerRecord != float64(DefaultSignatureSize*bits/8) {
				t.Fatalf("bits=%d loaded bytes/record = %v", bits, got.Arena().BytesPerRecord)
			}
		})
	}
}

// TestLoadV3IndexIntoArena: v3 files predate packing and must load into
// a full-width 64-bit arena with signatures and search behavior
// unchanged.
func TestLoadV3IndexIntoArena(t *testing.T) {
	const v3 = `{"meta":{"name":"v3db","version":"0.4.0","format":3,"created_at":"2026-01-02T03:04:05Z","updated_at":"2026-01-02T03:04:05Z","record_count":2,"k":4,"signature_size":8,"scheme":"oph","bands":2,"rows_per_band":4,"shards":4},"sketches":[{"name":"a","k":4,"shingles":3,"signature":[1,2,3,4,5,6,7,8]},{"name":"b","k":4,"shingles":3,"signature":[1,2,3,4,9,9,9,9]}]}`
	ix, err := LoadIndex(bytes.NewReader([]byte(v3)))
	if err != nil {
		t.Fatalf("load v3: %v", err)
	}
	meta := ix.Metadata()
	if meta.Format != CurrentFormat || meta.Bits != 64 || meta.Scheme != SchemeOPH {
		t.Fatalf("v3 metadata = %+v, want format=%d bits=64 scheme=oph", meta, CurrentFormat)
	}
	if got := ix.Get("a").Signature; !equalSig(got, []uint64{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("v3 signature loaded as %v", got)
	}
	// "a" and "b" share band 0 (rows 1,2,3,4): the rebuilt postings must
	// make each a candidate of the other.
	if res, err := SearchTopKLSH(ix, ix.Get("a"), 1, 0, nil); err != nil || len(res) != 1 || res[0].Ref != "b" {
		t.Fatalf("v3 LSH search = %v, %v; want b", res, err)
	}
}

// TestLoadV4RejectsBadBits: a v4 file must carry a supported packing
// width, and b-bit files whose slot values exceed the width are corrupt.
func TestLoadV4RejectsBadBits(t *testing.T) {
	for name, payload := range map[string]string{
		"bad bits":        `{"meta":{"name":"x","format":4,"k":4,"signature_size":2,"scheme":"oph","bits":12,"bands":1,"rows_per_band":2,"shards":4},"sketches":[]}`,
		"value too wide":  `{"meta":{"name":"x","format":4,"k":4,"signature_size":2,"scheme":"oph","bits":8,"bands":1,"rows_per_band":2,"shards":4},"sketches":[{"name":"a","k":4,"shingles":1,"signature":[1,256]}]}`,
		"value too wide2": `{"meta":{"name":"x","format":4,"k":4,"signature_size":2,"scheme":"oph","bits":16,"bands":1,"rows_per_band":2,"shards":4},"sketches":[{"name":"a","k":4,"shingles":1,"signature":[65536,1]}]}`,
	} {
		if _, err := LoadIndex(bytes.NewReader([]byte(payload))); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	// The in-range twin of the corrupt files loads fine.
	const ok = `{"meta":{"name":"x","format":4,"k":4,"signature_size":2,"scheme":"oph","bits":8,"bands":1,"rows_per_band":2,"shards":4},"sketches":[{"name":"a","k":4,"shingles":1,"signature":[1,255]}]}`
	if _, err := LoadIndex(bytes.NewReader([]byte(ok))); err != nil {
		t.Errorf("in-range 8-bit file rejected: %v", err)
	}
}

func TestLoadIndexRejectsBadFormats(t *testing.T) {
	for name, payload := range map[string]string{
		"future format": `{"meta":{"name":"x","format":99,"k":4,"signature_size":2},"sketches":[]}`,
		"v2 bad bands":  `{"meta":{"name":"x","format":2,"k":4,"signature_size":2,"bands":3,"rows_per_band":3,"shards":4},"sketches":[]}`,
		"v2 no shards":  `{"meta":{"name":"x","format":2,"k":4,"signature_size":2,"bands":1,"rows_per_band":2},"sketches":[]}`,
		"v3 bad scheme": `{"meta":{"name":"x","format":3,"k":4,"signature_size":2,"scheme":"simhash","bands":1,"rows_per_band":2,"shards":4},"sketches":[]}`,
	} {
		if _, err := LoadIndex(bytes.NewReader([]byte(payload))); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")
	// Start from a corrupt pre-existing file: SaveFile must replace it
	// wholesale, never append or partially overwrite.
	if err := os.WriteFile(path, []byte("garbage that is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ix := NewIndex("atomic", 4, 32)
	s := mustSketcher(t, 4, 32)
	if _, err := ix.Add(s.Sketch(Record{Name: "rec", Data: []byte("payload for the atomic save test")})); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatalf("load after SaveFile: %v", err)
	}
	if got.Len() != 1 || got.Get("rec") == nil {
		t.Fatalf("loaded index: len=%d", got.Len())
	}
	// The renamed file must be world-readable, not CreateTemp's 0600.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm != 0o644 {
		t.Fatalf("saved index mode = %o, want 644", perm)
	}
	// No temp files may be left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "index.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory contents after SaveFile: %v", names)
	}
	// A failed save (unwritable directory) must report an error and
	// leave the existing file intact.
	if err := ix.SaveFile(filepath.Join(dir, "missing", "index.json")); err == nil {
		t.Fatal("SaveFile into missing directory: want error")
	}
	if _, err := LoadIndexFile(path); err != nil { //nolint:staticcheck // deprecated wrapper must keep working
		t.Fatalf("existing file damaged by failed save: %v", err)
	}
}

func TestLoadIndexRejectsCorrupt(t *testing.T) {
	for name, payload := range map[string]string{
		"not json":       "not json at all",
		"bad meta":       `{"meta":{"name":"x","k":0,"signature_size":0},"sketches":[]}`,
		"empty name":     `{"meta":{"name":"x","k":4,"signature_size":2},"sketches":[{"name":"","k":4,"shingles":1,"signature":[1,2]}]}`,
		"wrong sig size": `{"meta":{"name":"x","k":4,"signature_size":2},"sketches":[{"name":"a","k":4,"shingles":1,"signature":[1]}]}`,
		"wrong k":        `{"meta":{"name":"x","k":4,"signature_size":2},"sketches":[{"name":"a","k":8,"shingles":1,"signature":[1,2]}]}`,
		"duplicate name": `{"meta":{"name":"x","k":4,"signature_size":1},"sketches":[{"name":"a","k":4,"shingles":1,"signature":[1]},{"name":"a","k":4,"shingles":1,"signature":[2]}]}`,
		"null sketch":    `{"meta":{"name":"x","k":4,"signature_size":1},"sketches":[null]}`,
	} {
		if _, err := LoadIndex(bytes.NewReader([]byte(payload))); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

// TestConcurrentAddAndQuery hammers the index from concurrent writers
// and readers; it exists to run under -race.
func TestConcurrentAddAndQuery(t *testing.T) {
	ix := NewIndex("conc", 4, 32)
	s := mustSketcher(t, 4, 32)
	q := s.Sketch(Record{Name: "query", Data: []byte("the query payload used by all readers")})

	const writers, readers, perWriter = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{
					Name: fmt.Sprintf("w%d-rec%d", w, i),
					Data: []byte(fmt.Sprintf("record payload %d from writer %d with extra text", i, w)),
				}
				if _, err := ix.Add(s.Sketch(rec)); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := SearchTopK(ix, q, 3, 0, NewPool(2)); err != nil {
					t.Errorf("search: %v", err)
					return
				}
				ix.Len()
				ix.Metadata()
				ix.Names()
			}
		}()
	}
	wg.Wait()
	if ix.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", ix.Len(), writers*perWriter)
	}
}

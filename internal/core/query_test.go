package core

import (
	"fmt"
	"runtime"
	"testing"
)

// buildTestIndex returns an index of n records where record i shares a
// progressively smaller prefix with the query payload, so similarity to
// the query strictly decreases with i.
func buildTestIndex(t *testing.T, n int) (*Index, *Sketch) {
	t.Helper()
	s := mustSketcher(t, 4, 128)
	base := []byte("abcdefghijklmnopqrstuvwxyz0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ")
	ix := NewIndex("test", 4, 128)
	for i := 0; i < n; i++ {
		// Replace a growing suffix with record-specific filler.
		data := append([]byte{}, base...)
		cut := len(base) - (i+1)*len(base)/(n+1)
		for j := cut; j < len(data); j++ {
			data[j] = byte('!' + (i+j)%90)
		}
		if _, err := ix.Add(s.Sketch(Record{Name: fmt.Sprintf("rec-%02d", i), Data: data})); err != nil {
			t.Fatal(err)
		}
	}
	return ix, s.Sketch(Record{Name: "query", Data: base})
}

func TestSearchTopKOrderingAndBounds(t *testing.T) {
	ix, q := buildTestIndex(t, 10)
	results, err := SearchTopK(ix, q, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Similarity > results[i-1].Similarity {
			t.Fatalf("results out of order: %v", results)
		}
	}
	if results[0].Ref != "rec-00" {
		t.Fatalf("best match = %q, want rec-00", results[0].Ref)
	}
	// topK larger than the index returns everything.
	all, err := SearchTopK(ix, q, 100, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("got %d results, want 10", len(all))
	}
	// minSim filters.
	strict, err := SearchTopK(ix, q, 100, all[0].Similarity, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) < 1 || strict[len(strict)-1].Similarity < all[0].Similarity {
		t.Fatalf("minSim filter failed: %v", strict)
	}
	if len(strict) == len(all) {
		t.Fatal("minSim filter removed nothing")
	}
}

func TestSearchTopKSkipsSelf(t *testing.T) {
	s := mustSketcher(t, 4, 64)
	ix := NewIndex("self", 4, 64)
	data := []byte("identical payload for self and other records here")
	for _, name := range []string{"self", "other"} {
		if _, err := ix.Add(s.Sketch(Record{Name: name, Data: data})); err != nil {
			t.Fatal(err)
		}
	}
	results, err := SearchTopK(ix, s.Sketch(Record{Name: "self", Data: data}), 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Ref != "other" {
		t.Fatalf("results = %v, want single hit on \"other\"", results)
	}
	// A same-named record whose content differs from the query (e.g. the
	// file changed after indexing) is NOT a self-hit and must be reported.
	changed := s.Sketch(Record{Name: "self", Data: []byte("edited payload that no longer matches the indexed one")})
	results, err = SearchTopK(ix, changed, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %v, want both records reported for changed same-named query", results)
	}
}

func TestSearchTopKValidation(t *testing.T) {
	ix, q := buildTestIndex(t, 3)
	if _, err := SearchTopK(ix, q, 0, 0, nil); err == nil {
		t.Fatal("topK=0: want error")
	}
	bad := mustSketcher(t, 9, 128).Sketch(Record{Name: "bad", Data: []byte("some query data")})
	if _, err := SearchTopK(ix, bad, 3, 0, nil); err == nil {
		t.Fatal("incompatible query: want error")
	}
}

func TestPairwiseDistances(t *testing.T) {
	s := mustSketcher(t, 4, 128)
	var sketches []*Sketch
	for i := 0; i < 5; i++ {
		data := []byte(fmt.Sprintf("shared prefix payload %c%c%c unique tail %d%d%d", 'a'+i, 'b'+i, 'c'+i, i, i*7, i*13))
		sketches = append(sketches, s.Sketch(Record{Name: fmt.Sprintf("s%d", i), Data: data}))
	}
	results, err := PairwiseDistances(sketches, NewPool(3))
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * 4 / 2; len(results) != want {
		t.Fatalf("got %d pairs, want %d", len(results), want)
	}
	seen := map[string]bool{}
	for i, r := range results {
		if r.Query == r.Ref {
			t.Fatalf("self pair in results: %v", r)
		}
		key := r.Query + "|" + r.Ref
		if seen[key] {
			t.Fatalf("duplicate pair %s", key)
		}
		seen[key] = true
		if i > 0 && r.Similarity > results[i-1].Similarity {
			t.Fatalf("results out of order at %d: %v", i, results)
		}
	}
	// Fewer than two sketches: no pairs, no error.
	for _, in := range [][]*Sketch{nil, sketches[:1]} {
		out, err := PairwiseDistances(in, nil)
		if err != nil || len(out) != 0 {
			t.Fatalf("degenerate input: got %v, %v", out, err)
		}
	}
	// Incompatible sketches error out.
	odd := mustSketcher(t, 9, 128).Sketch(Record{Name: "odd", Data: []byte("whatever data")})
	if _, err := PairwiseDistances(append(sketches[:2:2], odd), nil); err == nil {
		t.Fatal("incompatible sketches: want error")
	}
}

func TestPoolMap(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		p := NewPool(workers)
		if workers <= 0 {
			if p.Workers() != runtime.GOMAXPROCS(0) {
				t.Fatalf("Workers() = %d, want GOMAXPROCS", p.Workers())
			}
		} else if p.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
		}
		const n = 100
		hits := make([]int32, n)
		p.Map(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, h)
			}
		}
		p.Map(0, func(int) { t.Fatal("fn called for n=0") })
	}
}

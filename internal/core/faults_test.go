package core

import (
	"errors"
	"fmt"
	"testing"

	"sketchengine/internal/fault"
)

// These tests drive the disk faultpoints (wal.write, wal.fsync,
// segment.seal, manifest.commit) and pin the durability contract under
// injected failures: a failed ack never lies — the caller saw the
// error — and the index stays loadable with every previously-acked
// record intact. Un-acked writes may or may not survive (acked state
// is a lower bound, exactly like a real crash).

// TestWALWriteFault: an injected write failure drops the buffered
// frame, so the ack fails and the record does not survive a reopen —
// while every record acked before and after it does.
func TestWALWriteFault(t *testing.T) {
	dir := t.TempDir()
	eng := walEngine(t, dir, 8)

	p, err := fault.Parse("wal.write:fail-once", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	defer fault.Disable()

	_, err = eng.Add(Record{Name: "rec-8", Data: benchData(256, 9)})
	var inj *fault.InjectedError
	if !errors.As(err, &inj) || inj.Point != "wal.write" {
		t.Fatalf("add through a wal.write fault = %v, want injected error", err)
	}
	// fail-once is consumed: the next ack is clean.
	if _, err := eng.Add(Record{Name: "rec-9", Data: benchData(256, 10)}); err != nil {
		t.Fatalf("add after the fault cleared: %v", err)
	}
	if err := eng.Index().Close(); err != nil {
		t.Fatal(err)
	}

	ix, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after an injected write failure: %v", err)
	}
	defer ix.Close()
	for i := 0; i < 8; i++ {
		if !ix.Has(fmt.Sprintf("rec-%d", i)) {
			t.Errorf("acked rec-%d lost", i)
		}
	}
	if !ix.Has("rec-9") {
		t.Error("rec-9, acked after the fault, lost")
	}
	if ix.Has("rec-8") {
		t.Error("rec-8 was never acked (its frame was dropped) but survived the reopen")
	}
	if ix.Len() != 9 {
		t.Errorf("recovered %d records, want 9", ix.Len())
	}
}

// TestWALFsyncFault: an injected fsync failure fails the ack. The
// frame may have reached the file (fsync durability is exactly what
// was not confirmed), so the failed record is allowed to reappear —
// but every acked record must.
func TestWALFsyncFault(t *testing.T) {
	dir := t.TempDir()
	eng := walEngine(t, dir, 8)

	p, err := fault.Parse("wal.fsync:fail-once", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	defer fault.Disable()

	_, err = eng.Add(Record{Name: "rec-8", Data: benchData(256, 9)})
	var inj *fault.InjectedError
	if !errors.As(err, &inj) || inj.Point != "wal.fsync" {
		t.Fatalf("add through a wal.fsync fault = %v, want injected error", err)
	}
	if _, err := eng.Add(Record{Name: "rec-9", Data: benchData(256, 10)}); err != nil {
		t.Fatalf("add after the fault cleared: %v", err)
	}
	if err := eng.Index().Close(); err != nil {
		t.Fatal(err)
	}

	ix, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after an injected fsync failure: %v", err)
	}
	defer ix.Close()
	for i := 0; i < 8; i++ {
		if !ix.Has(fmt.Sprintf("rec-%d", i)) {
			t.Errorf("acked rec-%d lost", i)
		}
	}
	if !ix.Has("rec-9") {
		t.Error("rec-9, acked after the fault, lost")
	}
	if p.Counters()["wal.fsync:fail-once"] != 1 {
		t.Errorf("fault counters = %v, want one wal.fsync injection", p.Counters())
	}
}

// TestSnapshotFaults: an injected failure in the snapshot path —
// sealing a segment or committing the manifest — fails SaveDir without
// corrupting anything: the live index keeps serving, a retried
// snapshot succeeds, and a reopen recovers every acked record.
func TestSnapshotFaults(t *testing.T) {
	for _, point := range []string{"segment.seal", "manifest.commit"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			eng := walEngine(t, dir, 8)
			for i := 8; i < 20; i++ {
				if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(256, int64(i+1))}); err != nil {
					t.Fatal(err)
				}
			}

			p, err := fault.Parse(point+":fail-once", 1)
			if err != nil {
				t.Fatal(err)
			}
			fault.Enable(p)
			defer fault.Disable()

			err = eng.Index().SaveDir()
			var inj *fault.InjectedError
			if !errors.As(err, &inj) || inj.Point != point {
				t.Fatalf("SaveDir through a %s fault = %v, want injected error", point, err)
			}
			// The live index is unharmed: mutations and a retried snapshot
			// both succeed.
			if _, err := eng.Add(Record{Name: "rec-20", Data: benchData(256, 21)}); err != nil {
				t.Fatalf("add after failed snapshot: %v", err)
			}
			if err := eng.Index().SaveDir(); err != nil {
				t.Fatalf("retried SaveDir: %v", err)
			}
			if err := eng.Index().Close(); err != nil {
				t.Fatal(err)
			}

			ix, err := Open(dir)
			if err != nil {
				t.Fatalf("Open after a failed-then-retried snapshot: %v", err)
			}
			defer ix.Close()
			if ix.Len() != 21 {
				t.Fatalf("recovered %d records, want 21", ix.Len())
			}
			for i := 0; i < 21; i++ {
				if !ix.Has(fmt.Sprintf("rec-%d", i)) {
					t.Errorf("acked rec-%d lost across the failed snapshot", i)
				}
			}
		})
	}
}

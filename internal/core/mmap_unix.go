//go:build linux || darwin

package core

import (
	"os"
	"syscall"
)

// mmapAvailable reports whether this build can memory-map segment
// files. On supported platforms the pread fallback is still used when
// mapping fails, the host is big-endian, or mapping is disabled (see
// openSegment and mmapForceFallback).
const mmapAvailable = true

// mapFile maps size bytes of f read-only and shared. The mapping stays
// valid after f is closed; release it with unmapFile.
func mapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(b []byte) error { return syscall.Munmap(b) }

package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// benchData returns n bytes of deterministic pseudo-random payload.
func benchData(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	for i := range data {
		data[i] = byte('a' + rng.Intn(26))
	}
	return data
}

// benchSketchScheme runs the sketch throughput benchmark for one
// scheme across payload sizes.
func benchSketchScheme(b *testing.B, scheme Scheme) {
	for _, size := range []int{1 << 10, 16 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			s, err := NewSketcherScheme(DefaultK, DefaultSignatureSize, scheme)
			if err != nil {
				b.Fatal(err)
			}
			rec := Record{Name: "bench", Data: benchData(size, 1)}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sketch(rec)
			}
		})
	}
}

// BenchmarkSketch measures the default (OPH) scheme; the name is kept
// stable so BENCH_baseline.json comparisons track the default path
// across the scheme switch.
func BenchmarkSketch(b *testing.B) { benchSketchScheme(b, SchemeOPH) }

// BenchmarkSketchKMH pins the legacy k-minhash path, which pays the
// per-slot inner loop for every shingle.
func BenchmarkSketchKMH(b *testing.B) { benchSketchScheme(b, SchemeKMH) }

func BenchmarkSimilarity(b *testing.B) {
	s, err := NewSketcher(DefaultK, DefaultSignatureSize)
	if err != nil {
		b.Fatal(err)
	}
	x := s.Sketch(Record{Name: "x", Data: benchData(4<<10, 2)})
	y := s.Sketch(Record{Name: "y", Data: benchData(4<<10, 3)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Similarity(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarityPacked measures the word-parallel packed
// comparator at each packing width over default-size signatures: at 8
// bits one XOR+SWAR word op compares 8 slots. bits=64 is the same
// full-width compare BenchmarkSimilarity measures, via the packed entry
// point.
func BenchmarkSimilarityPacked(b *testing.B) {
	s, err := NewSketcher(DefaultK, DefaultSignatureSize)
	if err != nil {
		b.Fatal(err)
	}
	x := s.Sketch(Record{Name: "x", Data: benchData(4<<10, 2)})
	y := s.Sketch(Record{Name: "y", Data: benchData(4<<10, 3)})
	for _, bits := range []int{64, 16, 8} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			px := packSignatureAppend(nil, x.Signature, bits)
			py := packSignatureAppend(nil, y.Signature, bits)
			sink := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += packedMatchingSlots(px, py, DefaultSignatureSize, bits)
			}
			if sink < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

func benchIndex(b *testing.B, n, bits int) (*Index, *Sketch) {
	b.Helper()
	s, err := NewSketcher(DefaultK, DefaultSignatureSize)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := NewIndexWith("bench", DefaultK, DefaultSignatureSize, DefaultScheme,
		DefaultLSHParams(DefaultSignatureSize), DefaultShards, bits)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := Record{Name: fmt.Sprintf("rec-%d", i), Data: benchData(2<<10, int64(i+10))}
		if _, err := ix.Add(s.Sketch(rec)); err != nil {
			b.Fatal(err)
		}
	}
	return ix, s.Sketch(Record{Name: "query", Data: benchData(2<<10, 10)})
}

func BenchmarkSearchTopK(b *testing.B) {
	for _, n := range []int{100, 1000} {
		ix, q := benchIndex(b, n, DefaultBits)
		for _, threads := range []int{1, 0} { // 0 = GOMAXPROCS
			name := fmt.Sprintf("n=%d/threads=%d", n, threads)
			if threads == 0 {
				name = fmt.Sprintf("n=%d/threads=max", n)
			}
			b.Run(name, func(b *testing.B) {
				pool := NewPool(threads)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := SearchTopK(ix, q, 10, 0, pool); err != nil {
						b.Fatal(err)
					}
				}
				// After the loop: ResetTimer deletes user-reported metrics.
				b.ReportMetric(ix.Arena().BytesPerRecord, "bytes/rec")
			})
		}
	}
}

// BenchmarkPackedStore measures the arena scan at each packing width on
// a 1000-record corpus — the working-set effect the b-bit store exists
// for — and reports the per-record signature footprint alongside ns/op
// so BENCH_*.json tracks memory regressions too.
func BenchmarkPackedStore(b *testing.B) {
	for _, bits := range []int{64, 16, 8} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			ix, q := benchIndex(b, 1000, bits)
			pool := NewPool(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SearchTopK(ix, q, 10, 0, pool); err != nil {
					b.Fatal(err)
				}
			}
			// After the loop: ResetTimer deletes user-reported metrics.
			b.ReportMetric(ix.Arena().BytesPerRecord, "bytes/rec")
		})
	}
}

// lshBench caches the 10k-record corpus shared by BenchmarkSearchExact
// and BenchmarkSearchLSH; building it sketches 10k records, so it is
// done once per test binary.
var lshBench struct {
	once sync.Once
	ix   *Index
	q    *Sketch
}

func lshBenchCorpus(b *testing.B) (*Index, *Sketch) {
	b.Helper()
	lshBench.once.Do(func() {
		// 10k records, 50 of them near-duplicates of the query: enough
		// true neighbors to fill topK=10 from candidates alone.
		lshBench.ix, lshBench.q = plantedCorpus(b, 10000, 50, 7)
	})
	return lshBench.ix, lshBench.q
}

// BenchmarkSearchExact is the brute-force baseline on the 10k corpus:
// cost scales with corpus size.
func BenchmarkSearchExact(b *testing.B) {
	ix, q := lshBenchCorpus(b)
	pool := NewPool(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchTopK(ix, q, 10, 0, pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchLSH probes band buckets and exact-scores only the
// candidates; cost scales with the number of plausible matches.
func BenchmarkSearchLSH(b *testing.B) {
	ix, q := lshBenchCorpus(b)
	pool := NewPool(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchTopKLSH(ix, q, 10, 0, pool); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairwiseDistances(b *testing.B) {
	s, err := NewSketcher(DefaultK, DefaultSignatureSize)
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	sketches := make([]*Sketch, n)
	for i := range sketches {
		sketches[i] = s.Sketch(Record{Name: fmt.Sprintf("s%d", i), Data: benchData(2<<10, int64(i+100))})
	}
	for _, threads := range []int{1, 0} {
		name := fmt.Sprintf("threads=%d", threads)
		if threads == 0 {
			name = "threads=max"
		}
		b.Run(name, func(b *testing.B) {
			pool := NewPool(threads)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := PairwiseDistances(sketches, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDurableIngest measures the acked-add path on a WAL-attached
// tiered index: sketch, shard insert, WAL append, and the group-commit
// fsync that makes the ack durable. It reports ingest_ack_ns (wall
// time per acknowledged add) and wal_fsync_ns (mean fsync batch
// latency) so BENCH_*.json tracks the durability tax separately from
// pure in-memory ingest.
func BenchmarkDurableIngest(b *testing.B) {
	dir := b.TempDir()
	eng, err := NewEngine(Options{
		IndexName: "bench-wal", Bits: 8,
		Tiered: true, DataDir: dir, SegmentRows: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Index().Close()
	// The first SaveDir commits the manifest and attaches the WALs;
	// without it, adds would be RAM-only and measure nothing durable.
	if err := eng.Index().SaveDir(); err != nil {
		b.Fatal(err)
	}
	data := benchData(2<<10, 42)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Add(Record{Name: fmt.Sprintf("rec-%d", i), Data: data}); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N), "ingest_ack_ns")
	if ws := eng.Index().WAL(); ws != nil && ws.Fsyncs > 0 {
		b.ReportMetric(float64(ws.FsyncNanos)/float64(ws.Fsyncs), "wal_fsync_ns")
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sketchengine/internal/core"
)

func testEngine(t testing.TB) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.Options{K: 4, SignatureSize: 64, IndexName: "servertest", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// newTestServer wraps a fresh engine in a Server and an httptest
// front end; both are torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(testEngine(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, ts
}

func postJSON(t testing.TB, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func ingestBody(names ...string) IngestRequest {
	var req IngestRequest
	for _, n := range names {
		req.Records = append(req.Records, IngestRecord{
			Name: n,
			Data: "shared payload stem for " + n + " with plenty of overlapping shingles",
		})
	}
	return req
}

func TestIngestSearchRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := ts.Client()

	resp, body := postJSON(t, client, ts.URL+"/v1/records", ingestBody("alpha", "beta", "gamma"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %s", resp.StatusCode, body)
	}
	var ing IngestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Received != 3 || ing.Added != 3 || ing.Skipped != 0 {
		t.Fatalf("ingest = %+v, want 3 received/added", ing)
	}

	// Re-ingesting the same names is skip-existing, like the CLI.
	resp, body = postJSON(t, client, ts.URL+"/v1/records", ingestBody("alpha", "delta"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-ingest status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Added != 1 || ing.Skipped != 1 {
		t.Fatalf("re-ingest = %+v, want 1 added 1 skipped", ing)
	}

	// Search must rank alpha's near-duplicate payload first, in both
	// modes, including the per-request exact override.
	for _, mode := range []string{"", "lsh", "exact"} {
		resp, body = postJSON(t, client, ts.URL+"/v1/search", SearchRequest{
			Name: "q",
			Data: "shared payload stem for alpha with plenty of overlapping shingles",
			K:    2,
			Mode: mode,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search status = %d, body %s", resp.StatusCode, body)
		}
		var sr SearchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Results) == 0 || sr.Results[0].Ref != "alpha" || sr.Results[0].Rank != 1 {
			t.Fatalf("search (mode %q) = %+v, want alpha first", mode, sr)
		}
	}

	// Record lookup, health, and stats.
	resp, err := client.Get(ts.URL + "/v1/records/beta")
	if err != nil {
		t.Fatal(err)
	}
	var rec RecordResponse
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rec.Name != "beta" || rec.K != 4 || rec.SignatureSize != 64 {
		t.Fatalf("get record = %d %+v", resp.StatusCode, rec)
	}

	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Records != 4 {
		t.Fatalf("health = %+v, want ok with 4 records", health)
	}

	resp, err = client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Engine.Records != 4 || stats.Engine.IndexName != "servertest" {
		t.Fatalf("stats engine = %+v", stats.Engine)
	}
	if stats.Ingest.RecordsAdded != 4 || stats.Ingest.Batches == 0 {
		t.Fatalf("stats ingest = %+v", stats.Ingest)
	}
	if stats.Requests.Total == 0 || stats.Requests.Status2xx == 0 {
		t.Fatalf("stats requests = %+v", stats.Requests)
	}
	if got := len(stats.Engine.ShardOccupancy); got != 4 {
		t.Fatalf("shard occupancy has %d entries, want 4", got)
	}
	// Arena memory reporting: 4 records of 64 full-width slots is 4*512
	// signature bytes, 512 bytes/record at 64-bit packing.
	if stats.Engine.Bits != 64 || stats.Engine.SignatureBytes != 4*512 ||
		stats.Engine.BytesPerRecord != 512 {
		t.Fatalf("stats arena = bits=%d signature_bytes=%d bytes_per_record=%v, want 64/2048/512",
			stats.Engine.Bits, stats.Engine.SignatureBytes, stats.Engine.BytesPerRecord)
	}
	if u := stats.Engine.ArenaUtilized; u <= 0 || u > 1 {
		t.Fatalf("arena utilization = %v, want in (0,1]", u)
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2, MaxBodyBytes: 512})
	client := ts.Client()

	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(out)
	}

	cases := []struct {
		name     string
		path     string
		body     string
		wantCode int
	}{
		{"malformed ingest JSON", "/v1/records", `{"records": [`, http.StatusBadRequest},
		{"trailing garbage", "/v1/records", `{"records": []}{"x":1}`, http.StatusBadRequest},
		{"empty records", "/v1/records", `{"records": []}`, http.StatusBadRequest},
		{"empty record name", "/v1/records", `{"records": [{"name": "", "data": "x"}]}`, http.StatusBadRequest},
		{"oversized batch", "/v1/records",
			`{"records": [{"name":"a","data":"x"},{"name":"b","data":"x"},{"name":"c","data":"x"}]}`,
			http.StatusRequestEntityTooLarge},
		{"oversized body", "/v1/records",
			`{"records": [{"name":"big","data":"` + strings.Repeat("x", 1024) + `"}]}`,
			http.StatusRequestEntityTooLarge},
		{"malformed search JSON", "/v1/search", `not json`, http.StatusBadRequest},
		{"bad search mode", "/v1/search", `{"data": "abc", "mode": "fuzzy"}`, http.StatusBadRequest},
		{"negative k", "/v1/search", `{"data": "abc", "k": -3}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(tc.path, tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantCode, body)
			}
			var eb errorBody
			if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Code == "" || eb.Error.Message == "" {
				t.Fatalf("error body %q is not {\"error\":{\"code\",\"message\"}}: %v", body, err)
			}
		})
	}

	// Search against a completely empty index succeeds with an empty,
	// non-null result array.
	resp, body := post("/v1/search", `{"name": "q", "data": "anything at all here"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-index search status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"results":[]`) {
		t.Fatalf("empty-index search body = %s, want empty results array", body)
	}

	// Unknown record name.
	getResp, err := client.Get(ts.URL + "/v1/records/no-such-record")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown record status = %d, want 404", getResp.StatusCode)
	}

	// Wrong method on a typed route.
	getResp, err = client.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search status = %d, want 405", getResp.StatusCode)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")
	s, err := New(testEngine(t), Config{IndexPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The file does not exist yet, so the first snapshot is forced even
	// with an untouched index.
	wrote, err := s.Snapshot()
	if err != nil || !wrote {
		t.Fatalf("initial snapshot = %v, %v; want written", wrote, err)
	}
	// Clean index: the next snapshot is skipped.
	wrote, err = s.Snapshot()
	if err != nil || wrote {
		t.Fatalf("clean snapshot = %v, %v; want skipped", wrote, err)
	}
	if _, err := s.Engine().Add(core.Record{Name: "rec", Data: []byte("some payload for the snapshot")}); err != nil {
		t.Fatal(err)
	}
	wrote, err = s.Snapshot()
	if err != nil || !wrote {
		t.Fatalf("dirty snapshot = %v, %v; want written", wrote, err)
	}
	ix, err := core.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 || ix.Get("rec") == nil {
		t.Fatalf("snapshot holds %d records, want rec", ix.Len())
	}
}

// TestIngestAfterClose pins the timed-out-drain straggler behavior: an
// ingest that arrives after the queue shut down is refused with 503
// (never a send-on-closed-channel panic), while read-only endpoints
// keep serving.
func TestIngestAfterClose(t *testing.T) {
	s, err := New(testEngine(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Engine().Add(core.Record{Name: "kept", Data: []byte("payload indexed before the close")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/records", ingestBody("straggler"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close ingest status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/search", SearchRequest{
		Data: "payload indexed before the close",
	})
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ref":"kept"`)) {
		t.Fatalf("post-close search = %d %s, want 200 hitting kept", resp.StatusCode, body)
	}
}

func TestBatcherCoalesces(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 256})
	client := ts.Client()

	const clients = 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, body := postJSON(t, client, ts.URL+"/v1/records",
					ingestBody(fmt.Sprintf("rec-%d-%d", c, i)))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest status = %d, body %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()

	const total = clients * 8
	if got := s.Engine().Index().Len(); got != total {
		t.Fatalf("index has %d records, want %d", got, total)
	}
	m := s.metrics
	if m.recordsAdded.Load() != total || m.batchedRecords.Load() != total {
		t.Fatalf("added=%d batched=%d, want %d", m.recordsAdded.Load(), m.batchedRecords.Load(), total)
	}
	// Each flush answers at least one request; coalescing means flushes
	// never exceed requests, and under concurrency they are usually far
	// fewer. The hard bound is what we can assert deterministically.
	if b, r := m.batches.Load(), m.ingestRequests.Load(); b == 0 || b > r {
		t.Fatalf("batches=%d requests=%d, want 0 < batches <= requests", b, r)
	}
}

// startServer runs a real listener + Serve loop for load tests,
// returning the base URL and a stop func that cancels and waits for the
// drain to finish.
func startServer(t *testing.T, s *Server) (string, func() error) {
	t.Helper()
	s.cfg.Addr = "127.0.0.1:0"
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx) }()
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			return fmt.Errorf("server did not drain within 30s")
		}
	}
	t.Cleanup(func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	return "http://" + addr.String(), stop
}

// TestConcurrentLoad drives 32 clients mixing ingest and search against
// a live server; every response must be 2xx (the acceptance load test,
// run under -race by `make test`).
func TestConcurrentLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")
	s, err := New(testEngine(t), Config{IndexPath: path, MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	base, stop := startServer(t, s)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	defer client.CloseIdleConnections()

	const clients = 32
	const opsPerClient = 30
	var added atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				switch i % 3 {
				case 0, 1: // ingest a fresh record
					name := fmt.Sprintf("load-%d-%d", c, i)
					resp, body := postJSON(t, client, base+"/v1/records", ingestBody(name))
					if resp.StatusCode != http.StatusOK {
						t.Errorf("ingest status = %d, body %s", resp.StatusCode, body)
						return
					}
					var ing IngestResponse
					if err := json.Unmarshal(body, &ing); err != nil {
						t.Error(err)
						return
					}
					added.Add(int64(ing.Added))
				case 2: // search while others ingest
					resp, body := postJSON(t, client, base+"/v1/search", SearchRequest{
						Name: fmt.Sprintf("q-%d-%d", c, i),
						Data: fmt.Sprintf("shared payload stem for load-%d-%d with plenty of overlapping shingles", c, i-1),
						K:    3,
					})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("search status = %d, body %s", resp.StatusCode, body)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The limiter's bound held under load.
	resp, body := postJSON(t, client, base+"/v1/search", SearchRequest{Data: "final probe payload"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final search = %d, body %s", resp.StatusCode, body)
	}
	statsResp, err := client.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Requests.PeakInFlight > int64(s.cfg.MaxInFlight) {
		t.Fatalf("peak in-flight %d exceeded the limit %d", stats.Requests.PeakInFlight, s.cfg.MaxInFlight)
	}
	if stats.Requests.Status5xx != 0 {
		t.Fatalf("saw %d 5xx responses under load", stats.Requests.Status5xx)
	}

	// A clean stop drains and snapshots every acknowledged record.
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ix, err := core.Open(path)
	if err != nil {
		t.Fatalf("snapshot is not loadable: %v", err)
	}
	if int64(ix.Len()) != added.Load() {
		t.Fatalf("snapshot has %d records, want %d acknowledged adds", ix.Len(), added.Load())
	}
}

// TestShutdownMidLoad cancels the serve context while clients are still
// hammering the server: in-flight requests must drain, and every ingest
// the server acknowledged must survive in the final snapshot.
func TestShutdownMidLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")
	s, err := New(testEngine(t), Config{IndexPath: path})
	if err != nil {
		t.Fatal(err)
	}
	base, stop := startServer(t, s)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	defer client.CloseIdleConnections()

	var (
		stopping atomic.Bool // set before cancel; errors after it are expected
		ackedMu  sync.Mutex
		acked    []string
	)
	const clients = 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				if stopping.Load() {
					return
				}
				name := fmt.Sprintf("drain-%d-%d", c, i)
				raw, _ := json.Marshal(ingestBody(name))
				resp, err := client.Post(base+"/v1/records", "application/json", bytes.NewReader(raw))
				if err != nil {
					if !stopping.Load() {
						t.Errorf("ingest before shutdown failed: %v", err)
					}
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					if !stopping.Load() {
						t.Errorf("ingest status = %d, body %s", resp.StatusCode, body)
					}
					return
				}
				var ing IngestResponse
				if err := json.Unmarshal(body, &ing); err != nil {
					t.Error(err)
					return
				}
				if ing.Added == 1 {
					ackedMu.Lock()
					acked = append(acked, name)
					ackedMu.Unlock()
				}
			}
		}()
	}

	// Let the load build, then pull the plug mid-flight.
	time.Sleep(100 * time.Millisecond)
	stopping.Store(true)
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	ix, err := core.Open(path)
	if err != nil {
		t.Fatalf("post-shutdown snapshot is not loadable: %v", err)
	}
	ackedMu.Lock()
	defer ackedMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("load generated no acknowledged ingests; test is vacuous")
	}
	for _, name := range acked {
		if ix.Get(name) == nil {
			t.Fatalf("acknowledged record %q is missing from the snapshot (%d records, %d acked)",
				name, ix.Len(), len(acked))
		}
	}
}

package server

import (
	"context"
	"errors"
	"sync"

	"sketchengine/internal/core"
)

// errIngestClosed reports an enqueue against a shut-down queue; the
// handler maps it to 503 so stragglers that slip past a timed-out
// drain are refused instead of crashing the shutdown.
var errIngestClosed = errors.New("ingest queue is shut down")

// errQueueFull reports an enqueue against a full queue; the handler
// maps it to 429 with Retry-After so clients shed load instead of
// piling up blocked on the server.
var errQueueFull = errors.New("ingest queue is full")

// ingestItem is one ingest request waiting in the queue: its records
// and a buffered reply channel the batcher resolves exactly once.
type ingestItem struct {
	recs []core.Record
	resp chan ingestResult
}

// ingestResult carries per-record added flags (aligned with the
// request's records) or the batch error shared by every coalesced
// request.
type ingestResult struct {
	added []bool
	err   error
}

// batcher owns the bounded ingest queue. A single goroutine drains it,
// coalescing every immediately-pending request (up to maxBatch records)
// into one Engine.AddBatchResults call, so a storm of small requests
// pays for one pool fan-out instead of many tiny ones, while a lone
// request is flushed without waiting. Enqueueing against a full queue
// fails fast with errQueueFull — explicit load shedding (429 upstream)
// instead of parking clients on the channel, so a slow disk surfaces
// as backpressure the client can see and pace against.
type batcher struct {
	eng      *core.Engine
	ch       chan ingestItem
	done     chan struct{}
	maxBatch int
	metrics  *metrics

	// mu excludes close from in-flight sends: senders hold the read
	// side across their channel send, close takes the write side before
	// closing ch. Without it, a drain that times out with a handler
	// still blocked on a full queue would panic on send-to-closed.
	mu     sync.RWMutex
	closed bool
}

func newBatcher(eng *core.Engine, queueDepth, maxBatch int, m *metrics) *batcher {
	b := &batcher{
		eng:      eng,
		ch:       make(chan ingestItem, queueDepth),
		done:     make(chan struct{}),
		maxBatch: maxBatch,
		metrics:  m,
	}
	go b.run()
	return b
}

// enqueue submits recs and waits for the batcher's verdict. It returns
// errQueueFull immediately when the queue has no free slot, ctx.Err()
// if the reply does not arrive before the request context ends, and
// errIngestClosed after close; an abandoned reply is still delivered
// into the buffered channel, so the batcher never blocks on a gone
// client.
func (b *batcher) enqueue(ctx context.Context, recs []core.Record) ([]bool, error) {
	item := ingestItem{recs: recs, resp: make(chan ingestResult, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, errIngestClosed
	}
	// The read lock is held across the (non-blocking) send so close
	// cannot close the channel mid-send.
	select {
	case b.ch <- item:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		return nil, errQueueFull
	}
	select {
	case res := <-item.resp:
		return res.added, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// depth returns the number of requests currently queued.
func (b *batcher) depth() int { return len(b.ch) }

// close stops accepting work and blocks until every queued request has
// been flushed and answered. Safe against concurrent enqueues (they
// get errIngestClosed) and against repeated calls.
func (b *batcher) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.ch)
	}
	b.mu.Unlock()
	<-b.done
}

func (b *batcher) run() {
	defer close(b.done)
	for {
		item, ok := <-b.ch
		if !ok {
			return
		}
		pending := []ingestItem{item}
		total := len(item.recs)
		// Coalesce whatever is already queued; never wait for more, so
		// latency under light load is one AddBatch, not a timer.
	coalesce:
		for total < b.maxBatch {
			select {
			case more, ok := <-b.ch:
				if !ok {
					break coalesce
				}
				pending = append(pending, more)
				total += len(more.recs)
			default:
				break coalesce
			}
		}
		b.flush(pending, total)
	}
}

// flush runs one coalesced AddBatch and splits the per-record flags
// back across the waiting requests.
func (b *batcher) flush(pending []ingestItem, total int) {
	all := pending[0].recs
	if len(pending) > 1 {
		all = make([]core.Record, 0, total)
		for _, it := range pending {
			all = append(all, it.recs...)
		}
	}
	oks, err := b.eng.AddBatchResults(all)
	b.metrics.batches.Add(1)
	b.metrics.batchedRecords.Add(int64(total))
	off := 0
	for _, it := range pending {
		res := ingestResult{err: err}
		if err == nil {
			res.added = oks[off : off+len(it.recs)]
			for _, ok := range res.added {
				if ok {
					b.metrics.recordsAdded.Add(1)
				}
			}
		}
		off += len(it.recs)
		it.resp <- res
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sketchengine/internal/core"
	"sketchengine/internal/fault"
)

// IngestRecord is one record in an ingest request body. Data carries
// the record payload as a JSON string (UTF-8 text; arbitrary binary
// payloads should be transported in an escaped form of the caller's
// choosing — the engine sketches whatever bytes it is given).
type IngestRecord struct {
	Name string `json:"name"`
	Data string `json:"data"`
}

// IngestRequest is the body of POST /v1/records. Detailed asks the
// server to echo a per-record added flag in the response (Results);
// the cluster coordinator sets it so it can attribute added/skipped
// per record when a batch is split across replica sets. Plain clients
// leave it false and the response bytes are unchanged.
type IngestRequest struct {
	Records  []IngestRecord `json:"records"`
	Detailed bool           `json:"detailed,omitempty"`
}

// IngestResponse reports what happened to an ingest request's records.
// Skipped counts records whose names were already indexed (or repeated
// within the request). Results is present only when the request set
// Detailed: one flag per request record, true if that record was added.
type IngestResponse struct {
	Received int    `json:"received"`
	Added    int    `json:"added"`
	Skipped  int    `json:"skipped"`
	Results  []bool `json:"results,omitempty"`
}

// SearchRequest is the body of POST /v1/search. K, MinSimilarity and
// Mode override the server defaults per request; zero values keep them
// (K defaults to 10, Mode to the engine's mode).
type SearchRequest struct {
	Name          string  `json:"name"`
	Data          string  `json:"data"`
	K             int     `json:"k"`
	MinSimilarity float64 `json:"min_similarity"`
	Mode          string  `json:"mode"`
}

// SearchHit is one ranked search result.
type SearchHit struct {
	Rank       int     `json:"rank"`
	Ref        string  `json:"ref"`
	Similarity float64 `json:"similarity"`
	Distance   float64 `json:"distance"`
}

// SearchResponse is the body returned by POST /v1/search. Partial is
// set only by the cluster coordinator, when enough backends failed
// that a whole replica set may be unrepresented in Results;
// single-node servers never set it, so their responses are unchanged.
type SearchResponse struct {
	Query   string      `json:"query"`
	Mode    string      `json:"mode"`
	Results []SearchHit `json:"results"`
	Partial bool        `json:"partial,omitempty"`
}

// RecordResponse describes an indexed record (GET /v1/records/{name}).
// Shingles, Bits, and Signature are populated only when the request
// asked for them with ?signature=1 — the cluster repair path, which
// needs the stored sketch, not just existence.
type RecordResponse struct {
	Name          string   `json:"name"`
	K             int      `json:"k"`
	SignatureSize int      `json:"signature_size"`
	Shingles      int      `json:"shingles,omitempty"`
	Bits          int      `json:"bits,omitempty"`
	Signature     []uint64 `json:"signature,omitempty"`
}

// ReplicaRecord is one record in the replication wire format: the
// stored sketch as-is, so a copy lands byte-identical on the receiver
// without re-sketching. Bits says how wide the slot values are (64
// full-width; below that they are the truncated lanes a b-bit index
// stores, only accepted by an index packed at the same width).
type ReplicaRecord struct {
	Name      string   `json:"name"`
	Shingles  int      `json:"shingles"`
	Bits      int      `json:"bits,omitempty"`
	Signature []uint64 `json:"signature"`
}

// RecordListResponse is one page of GET /v1/records: records in
// insertion order plus the cursor for the next page (absent on the
// last page).
type RecordListResponse struct {
	Records    []ReplicaRecord `json:"records"`
	NextCursor string          `json:"next_cursor,omitempty"`
}

// ReplicateRequest is the body of POST /v1/admin/replicate: pre-built
// sketches to insert directly, bypassing the sketcher. The response is
// an IngestResponse; names already indexed count as skipped, which is
// what makes replays and repair sweeps idempotent.
type ReplicateRequest struct {
	Records []ReplicaRecord `json:"records"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Records int    `json:"records"`
}

// StatsResponse is the body of GET /stats: engine/index state plus the
// server's request and ingest counters. Faults appears only while a
// fault-injection spec is armed: injected-fault counts keyed
// "point:kind", so chaos runs can attribute failures to the spec.
type StatsResponse struct {
	Engine        core.Stats       `json:"engine"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      RequestStats     `json:"requests"`
	Ingest        IngestStats      `json:"ingest"`
	Snapshots     int64            `json:"snapshots"`
	Faults        map[string]int64 `json:"faults,omitempty"`
}

// RequestStats are the middleware counters. DeadlineExceeded counts
// searches aborted by an expired propagated deadline (504s); Canceled
// counts searches aborted because the caller disconnected mid-scan.
type RequestStats struct {
	Total            int64 `json:"total"`
	Status2xx        int64 `json:"status_2xx"`
	Status4xx        int64 `json:"status_4xx"`
	Status5xx        int64 `json:"status_5xx"`
	InFlight         int64 `json:"in_flight"`
	PeakInFlight     int64 `json:"peak_in_flight"`
	MaxInFlight      int   `json:"max_in_flight"`
	Searches         int64 `json:"searches"`
	DeadlineExceeded int64 `json:"deadline_exceeded,omitempty"`
	Canceled         int64 `json:"canceled,omitempty"`
}

// IngestStats describe the batching queue's behavior: Batches is the
// number of coalesced AddBatch calls that served IngestRequests
// requests, so BatchedRecords/Batches is the effective batch size.
type IngestStats struct {
	Requests       int64 `json:"requests"`
	RecordsAdded   int64 `json:"records_added"`
	Replicated     int64 `json:"replicated,omitempty"`
	Batches        int64 `json:"batches"`
	BatchedRecords int64 `json:"batched_records"`
	QueueDepth     int   `json:"queue_depth"`
	QueueCapacity  int   `json:"queue_capacity"`
	MaxBatch       int   `json:"max_batch"`
}

// DeleteResponse is the body of a successful DELETE /v1/records/{name}.
type DeleteResponse struct {
	Deleted string `json:"deleted"`
}

// RebucketRequest is the body of POST /v1/admin/rebucket. Shards left
// zero keeps the current shard count (the only legal choice on a
// tiered index).
type RebucketRequest struct {
	Bands       int `json:"bands"`
	RowsPerBand int `json:"rows_per_band"`
	Shards      int `json:"shards"`
}

// RebucketResponse echoes the banding scheme now in effect.
type RebucketResponse struct {
	Bands       int `json:"bands"`
	RowsPerBand int `json:"rows_per_band"`
	Shards      int `json:"shards"`
	Records     int `json:"records"`
}

// ErrorDetail is the error object inside every non-2xx response. Code
// is a stable machine-readable slug (the constants below); Message is
// prose for humans and logs. Records is set only by the cluster
// coordinator on quorum failures, one entry per record that missed its
// write quorum; single-node servers never populate it.
type ErrorDetail struct {
	Code    string        `json:"code"`
	Message string        `json:"message"`
	Records []RecordError `json:"records,omitempty"`
}

// RecordError is one record's failure inside a coordinator
// quorum_failed envelope.
type RecordError struct {
	Name    string `json:"name"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorBody is the JSON envelope of every non-2xx response:
// {"error":{"code":"...","message":"..."}}.
type errorBody struct {
	Error ErrorDetail `json:"error"`
}

// Error codes carried in ErrorDetail.Code.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodePayloadTooLarge  = "payload_too_large"
	CodeQueueFull        = "queue_full"
	CodeShuttingDown     = "shutting_down"
	CodeCanceled         = "canceled"
	CodeOverloaded       = "overloaded"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeInternal         = "internal"
	// CodeDeadlineExceeded (504): the request carried a deadline (the
	// coordinator's X-Sketch-Deadline header or the fan-out context) and
	// it expired before the work finished; in-flight scoring was aborted.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCursorGone (410): a GET /v1/records cursor names a record
	// that has since been deleted, so the walk cannot prove where to
	// resume. Restart the enumeration from the beginning.
	CodeCursorGone = "cursor_gone"
)

// DeadlineHeader carries a request's absolute deadline, as integer Unix
// milliseconds, from the cluster coordinator to a backend. An absolute
// timestamp (rather than a remaining-time duration) means queueing and
// network delays eat into the budget instead of silently extending it.
const DeadlineHeader = "X-Sketch-Deadline"

// CodeForStatus maps a bare HTTP status (from the routing layer, which
// never picks its own slug) to the closest error code.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return CodeQueueFull
	case http.StatusServiceUnavailable:
		return CodeOverloaded
	case http.StatusGatewayTimeout:
		return CodeDeadlineExceeded
	default:
		if status >= 500 {
			return CodeInternal
		}
		return CodeBadRequest
	}
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/records", s.timed("ingest", s.handleIngest))
	mux.HandleFunc("POST /v1/search", s.timed("search", s.handleSearch))
	mux.HandleFunc("GET /v1/records", s.timed("list_records", s.handleListRecords))
	mux.HandleFunc("GET /v1/records/{name}", s.timed("get_record", s.handleGetRecord))
	mux.HandleFunc("DELETE /v1/records/{name}", s.timed("delete_record", s.handleDeleteRecord))
	mux.HandleFunc("POST /v1/admin/rebucket", s.timed("rebucket", s.handleRebucket))
	mux.HandleFunc("POST /v1/admin/replicate", s.timed("replicate", s.handleReplicate))
	mux.HandleFunc("GET /healthz", s.timed("healthz", s.handleHealthz))
	mux.HandleFunc("GET /stats", s.timed("stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.timed("metrics", s.handleMetrics))
	return JSONErrors(mux)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.metrics.ingestRequests.Add(1)
	var req IngestRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "ingest: no records in request")
		return
	}
	if len(req.Records) > s.cfg.MaxBatch {
		WriteError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
			fmt.Sprintf("ingest: batch of %d records exceeds the %d-record limit", len(req.Records), s.cfg.MaxBatch))
		return
	}
	recs := make([]core.Record, len(req.Records))
	for i, rec := range req.Records {
		if rec.Name == "" {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("ingest: record %d has an empty name", i))
			return
		}
		recs[i] = core.Record{Name: rec.Name, Data: []byte(rec.Data)}
	}
	oks, err := s.ingest.enqueue(r.Context(), recs)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			// Fail fast instead of parking the client on a full queue: the
			// 429 carries Retry-After so well-behaved clients back off.
			w.Header().Set("Retry-After", "1")
			WriteError(w, http.StatusTooManyRequests, CodeQueueFull,
				fmt.Sprintf("ingest: queue is full (%d requests pending); retry later", s.cfg.QueueDepth))
			return
		}
		if errors.Is(err, errIngestClosed) {
			WriteError(w, http.StatusServiceUnavailable, CodeShuttingDown, "ingest: server is shutting down")
			return
		}
		if errors.Is(err, r.Context().Err()) {
			WriteError(w, http.StatusServiceUnavailable, CodeCanceled, "ingest: request canceled while queued")
			return
		}
		WriteError(w, http.StatusInternalServerError, CodeInternal, fmt.Sprintf("ingest: %v", err))
		return
	}
	resp := IngestResponse{Received: len(recs)}
	for _, ok := range oks {
		if ok {
			resp.Added++
		}
	}
	resp.Skipped = resp.Received - resp.Added
	if req.Detailed {
		resp.Results = oks
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	mode := s.eng.Mode()
	if req.Mode != "" {
		var err error
		if mode, err = core.ParseSearchMode(req.Mode); err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k < 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("search: k must be positive, got %d", k))
		return
	}
	// Honor a propagated coordinator deadline: the scoring loops poll
	// the derived context, so an expired budget aborts the scan instead
	// of computing an answer nobody is waiting for. The caller-gone case
	// (r.Context() canceled) rides the same context.
	ctx := r.Context()
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, perr := strconv.ParseInt(h, 10, 64)
		if perr != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("search: malformed %s header %q: want Unix milliseconds", DeadlineHeader, h))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.UnixMilli(ms))
		defer cancel()
	}
	s.metrics.searches.Add(1)
	results, err := s.eng.SearchModeCtx(ctx, core.Record{Name: req.Name, Data: []byte(req.Data)}, mode, k, req.MinSimilarity)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.deadlineExceeded.Add(1)
			WriteError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
				"search: deadline exceeded before scoring finished")
		case errors.Is(err, context.Canceled):
			s.metrics.searchCanceled.Add(1)
			WriteError(w, http.StatusServiceUnavailable, CodeCanceled, "search: request canceled by the caller")
		default:
			WriteError(w, http.StatusInternalServerError, CodeInternal, fmt.Sprintf("search: %v", err))
		}
		return
	}
	// The hit slice and the response struct come from pools: WriteJSON
	// has fully serialized them before this handler returns them, so
	// steady-state search responses reuse one warm buffer set instead of
	// allocating per request.
	hits := searchHitsPool.Get().(*[]SearchHit)
	*hits = (*hits)[:0]
	for i, res := range results {
		*hits = append(*hits, SearchHit{Rank: i + 1, Ref: res.Ref, Similarity: res.Similarity, Distance: res.Distance})
	}
	resp := searchRespPool.Get().(*SearchResponse)
	*resp = SearchResponse{Query: req.Name, Mode: string(mode), Results: *hits}
	WriteJSON(w, http.StatusOK, resp)
	resp.Results = nil
	searchRespPool.Put(resp)
	searchHitsPool.Put(hits)
}

var (
	// New returns a non-nil empty slice: zero-hit responses must encode
	// as "results":[] (nil would marshal as null).
	searchHitsPool = sync.Pool{New: func() any { s := make([]SearchHit, 0, 16); return &s }}
	searchRespPool = sync.Pool{New: func() any { return new(SearchResponse) }}
)

func (s *Server) handleGetRecord(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ix := s.eng.Index()
	meta := ix.Metadata()
	if v := r.URL.Query().Get("signature"); v == "1" || v == "true" {
		// The repair path wants the stored sketch, so pay for the arena
		// reconstruction.
		sk := ix.Get(name)
		if sk == nil {
			WriteError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("record %q is not indexed", name))
			return
		}
		WriteJSON(w, http.StatusOK, RecordResponse{
			Name:          name,
			K:             meta.K,
			SignatureSize: meta.SignatureSize,
			Shingles:      sk.Shingles,
			Bits:          sk.Bits,
			Signature:     sk.Signature,
		})
		return
	}
	// Has instead of Get: the response only carries metadata, and Get
	// would reconstruct (allocate + unpack) the record's signature from
	// the packed arena just to throw it away.
	if !ix.Has(name) {
		WriteError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("record %q is not indexed", name))
		return
	}
	WriteJSON(w, http.StatusOK, RecordResponse{
		Name:          name,
		K:             meta.K,
		SignatureSize: meta.SignatureSize,
	})
}

// handleListRecords pages through the corpus in insertion order:
// GET /v1/records?cursor=<last name>&limit=N. Each page carries the
// stored sketches in the replication wire format, so a consumer (the
// cluster rebalancer, a backup tool) can rebuild replicas without
// re-sketching. An empty next_cursor ends the walk; a cursor that
// went stale across a delete gets 410 cursor_gone — restart.
func (s *Server) handleListRecords(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := core.DefaultPageSize
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > s.cfg.MaxBatch {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("list: limit must be in [1, %d], got %q", s.cfg.MaxBatch, v))
			return
		}
		limit = n
	}
	sketches, next, err := s.eng.Index().Records(q.Get("cursor"), limit)
	if err != nil {
		if errors.Is(err, core.ErrCursorGone) {
			WriteError(w, http.StatusGone, CodeCursorGone, err.Error())
			return
		}
		WriteError(w, http.StatusInternalServerError, CodeInternal, fmt.Sprintf("list: %v", err))
		return
	}
	// Zero-record pages must encode as "records":[], matching the
	// ingest/search contract (nil would marshal as null).
	recs := make([]ReplicaRecord, 0, len(sketches))
	for _, sk := range sketches {
		recs = append(recs, ReplicaRecord{
			Name:      sk.Name,
			Shingles:  sk.Shingles,
			Bits:      sk.Bits,
			Signature: sk.Signature,
		})
	}
	WriteJSON(w, http.StatusOK, RecordListResponse{Records: recs, NextCursor: next})
}

// handleReplicate inserts pre-built sketches, bypassing the sketcher
// and the ingest queue: this is how a repaired or rebalanced copy
// arrives byte-identical to the original. Validation failures (wrong
// signature size, wrong packing width) are the sender's fault and get
// 400; a WAL sync failure after an accepted insert is 500 and the
// batch is not acknowledged.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var req ReplicateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "replicate: no records in request")
		return
	}
	if len(req.Records) > s.cfg.MaxBatch {
		WriteError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
			fmt.Sprintf("replicate: batch of %d records exceeds the %d-record limit", len(req.Records), s.cfg.MaxBatch))
		return
	}
	meta := s.eng.Index().Metadata()
	sketches := make([]*core.Sketch, len(req.Records))
	for i, rec := range req.Records {
		if rec.Name == "" {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("replicate: record %d has an empty name", i))
			return
		}
		sketches[i] = &core.Sketch{
			Name:      rec.Name,
			K:         meta.K,
			Shingles:  rec.Shingles,
			Scheme:    meta.Scheme,
			Bits:      rec.Bits,
			Signature: rec.Signature,
		}
	}
	oks, err := s.eng.AddSketches(sketches)
	added := 0
	for _, ok := range oks {
		if ok {
			added++
		}
	}
	if err != nil {
		status, code := http.StatusBadRequest, CodeBadRequest
		if added > 0 {
			// Inserts landed but the WAL barrier (or a later record) failed:
			// the batch is not durable as a whole, so refuse the ack the way
			// ingest does.
			status, code = http.StatusInternalServerError, CodeInternal
		}
		WriteError(w, status, code, fmt.Sprintf("replicate: %v", err))
		return
	}
	s.metrics.replicated.Add(int64(added))
	WriteJSON(w, http.StatusOK, IngestResponse{
		Received: len(req.Records),
		Added:    added,
		Skipped:  len(req.Records) - added,
	})
}

func (s *Server) handleDeleteRecord(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ok, err := s.eng.Delete(name)
	if err != nil {
		// The tombstone may be in memory but its WAL record did not reach
		// disk; withholding the ack keeps "deleted" meaning durable.
		WriteError(w, http.StatusInternalServerError, CodeInternal, fmt.Sprintf("delete: %v", err))
		return
	}
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("record %q is not indexed", name))
		return
	}
	s.metrics.deletes.Add(1)
	WriteJSON(w, http.StatusOK, DeleteResponse{Deleted: name})
}

func (s *Server) handleRebucket(w http.ResponseWriter, r *http.Request) {
	var req RebucketRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ix := s.eng.Index()
	shards := req.Shards
	if shards == 0 {
		shards = ix.Metadata().Shards
	}
	lsh := core.LSHParams{Bands: req.Bands, RowsPerBand: req.RowsPerBand}
	if err := ix.Rebucket(lsh, shards); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	s.metrics.rebuckets.Add(1)
	WriteJSON(w, http.StatusOK, RebucketResponse{
		Bands:       lsh.Bands,
		RowsPerBand: lsh.RowsPerBand,
		Shards:      shards,
		Records:     ix.Len(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, HealthResponse{Status: "ok", Records: s.eng.Index().Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	var faults map[string]int64
	if p := fault.Active(); p != nil {
		faults = p.Counters()
	}
	WriteJSON(w, http.StatusOK, StatsResponse{
		Faults: faults,
		Engine:        s.eng.Stats(),
		UptimeSeconds: m.uptime().Seconds(),
		Requests: RequestStats{
			Total:            m.requests.Load(),
			Status2xx:        m.status2xx.Load(),
			Status4xx:        m.status4xx.Load(),
			Status5xx:        m.status5xx.Load(),
			InFlight:         m.inFlight.Load(),
			PeakInFlight:     m.peakInFlight.Load(),
			MaxInFlight:      s.cfg.MaxInFlight,
			Searches:         m.searches.Load(),
			DeadlineExceeded: m.deadlineExceeded.Load(),
			Canceled:         m.searchCanceled.Load(),
		},
		Ingest: IngestStats{
			Requests:       m.ingestRequests.Load(),
			RecordsAdded:   m.recordsAdded.Load(),
			Replicated:     m.replicated.Load(),
			Batches:        m.batches.Load(),
			BatchedRecords: m.batchedRecords.Load(),
			QueueDepth:     s.ingest.depth(),
			QueueCapacity:  s.cfg.QueueDepth,
			MaxBatch:       s.cfg.MaxBatch,
		},
		Snapshots: m.snapshots.Load(),
	})
}

// decodeBody decodes a JSON request body into v, enforcing the body
// size cap and rejecting trailing garbage. It writes the error response
// itself and reports whether decoding succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			WriteError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		WriteError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("malformed JSON body: %v", err))
		return false
	}
	if dec.More() {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "malformed JSON body: trailing data")
		return false
	}
	return true
}

// jsonBufPool recycles the encode buffers behind every JSON response.
// Encoding into a pooled buffer first (instead of streaming into the
// ResponseWriter) costs one copy but saves the per-response encoder
// allocations and lets us emit Content-Length.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBufBytes caps the encode buffers kept in the pool so one
// giant response cannot pin its buffer forever.
const maxPooledBufBytes = 1 << 20

// WriteJSON serializes v into a pooled buffer and writes it with
// Content-Length set. It is the one JSON emitter for this package and
// the cluster coordinator, so the Content-Type discriminator JSONErrors
// relies on is set consistently.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	// Encoding these response types cannot fail; a broken connection
	// surfaces on the Write below, to the client.
	_ = json.NewEncoder(buf).Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBufBytes {
		jsonBufPool.Put(buf)
	}
}

// WriteError writes the standard error envelope
// {"error":{"code":code,"message":msg}} with the given status.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	WriteJSON(w, status, errorBody{Error: ErrorDetail{Code: code, Message: msg}})
}

// WriteErrorDetail writes an envelope around a caller-built ErrorDetail,
// for errors that carry more than a code and a message (the
// coordinator's per-record quorum failures).
func WriteErrorDetail(w http.ResponseWriter, status int, d ErrorDetail) {
	WriteJSON(w, status, errorBody{Error: d})
}

// marshalError renders the envelope for the routing-layer interceptor,
// which writes it directly rather than through WriteJSON.
func marshalError(code, msg string) []byte {
	b, _ := json.Marshal(errorBody{Error: ErrorDetail{Code: code, Message: msg}})
	return append(b, '\n')
}

package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"sketchengine/internal/fault"
)

// handleMetrics renders the server's counters in the Prometheus text
// exposition format (hand-rolled; the format is a few lines of fprintf
// and not worth a dependency). Everything is namespaced under
// sketchengine_.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	st := s.eng.Stats()
	var buf bytes.Buffer

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&buf, "# HELP sketchengine_%s %s\n# TYPE sketchengine_%s counter\nsketchengine_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&buf, "# HELP sketchengine_%s %s\n# TYPE sketchengine_%s gauge\nsketchengine_%s %s\n", name, help, name, name,
			strconv.FormatFloat(v, 'g', -1, 64))
	}

	counter("requests_total", "HTTP requests accepted past the limiter.", m.requests.Load())
	fmt.Fprintf(&buf, "# HELP sketchengine_responses_total HTTP responses by status class.\n# TYPE sketchengine_responses_total counter\n")
	fmt.Fprintf(&buf, "sketchengine_responses_total{class=\"2xx\"} %d\n", m.status2xx.Load())
	fmt.Fprintf(&buf, "sketchengine_responses_total{class=\"4xx\"} %d\n", m.status4xx.Load())
	fmt.Fprintf(&buf, "sketchengine_responses_total{class=\"5xx\"} %d\n", m.status5xx.Load())
	gauge("in_flight_requests", "Requests currently being served.", float64(m.inFlight.Load()))
	counter("searches_total", "Search requests served.", m.searches.Load())
	counter("deletes_total", "Records deleted over HTTP.", m.deletes.Load())
	counter("rebuckets_total", "Successful live rebucket operations.", m.rebuckets.Load())
	counter("ingest_requests_total", "Ingest requests received.", m.ingestRequests.Load())
	counter("records_added_total", "Records added by ingest.", m.recordsAdded.Load())
	counter("records_replicated_total", "Sketches accepted via the replicate endpoint.", m.replicated.Load())
	counter("ingest_batches_total", "Coalesced AddBatch calls.", m.batches.Load())
	counter("ingest_batched_records_total", "Records across coalesced batches.", m.batchedRecords.Load())
	gauge("ingest_queue_depth", "Ingest requests currently queued.", float64(s.ingest.depth()))
	gauge("ingest_queue_capacity", "Ingest queue capacity.", float64(s.cfg.QueueDepth))
	counter("snapshots_total", "Snapshots written.", m.snapshots.Load())
	counter("search_deadline_exceeded_total", "Searches aborted by an expired propagated deadline.", m.deadlineExceeded.Load())
	counter("search_canceled_total", "Searches aborted by caller disconnect.", m.searchCanceled.Load())
	writeFaultMetrics(&buf)

	gauge("records", "Live records in the index.", float64(st.Records))
	gauge("dead_rows", "Tombstoned rows awaiting compaction.", float64(st.DeadRows))
	gauge("tombstone_ratio", "Dead rows as a fraction of all rows.", st.TombstoneRatio)
	counter("compactions_total", "Shard compactions run.", int64(st.Compactions))
	counter("compacted_rows_total", "Dead rows reclaimed by compaction.", int64(st.CompactedRows))

	if wal := st.WAL; wal != nil {
		gauge("wal_frames", "Frames in the WALs since the last snapshot.", float64(wal.Frames))
		gauge("wal_bytes", "Bytes in the WALs since the last snapshot.", float64(wal.Bytes))
		counter("wal_appends_total", "Frames appended to the WALs.", int64(wal.Appends))
		counter("wal_fsyncs_total", "WAL fsync batches.", int64(wal.Fsyncs))
		fmt.Fprintf(&buf, "# HELP sketchengine_wal_fsync_seconds_total Time spent in WAL fsyncs.\n# TYPE sketchengine_wal_fsync_seconds_total counter\nsketchengine_wal_fsync_seconds_total %s\n",
			strconv.FormatFloat(float64(wal.FsyncNanos)/1e9, 'g', -1, 64))
		counter("wal_replayed_frames_total", "Frames replayed at the last open.", int64(wal.ReplayedFrames))
		counter("wal_torn_bytes_total", "Torn-tail bytes truncated at the last open.", int64(wal.TornBytes))
	}

	names := m.histNames()
	if len(names) > 0 {
		fmt.Fprintf(&buf, "# HELP sketchengine_http_request_duration_seconds Request latency by endpoint.\n# TYPE sketchengine_http_request_duration_seconds histogram\n")
	}
	for _, name := range names {
		WritePromHistogram(&buf, "sketchengine_http_request_duration_seconds",
			fmt.Sprintf("endpoint=%q", name), m.latencies[name])
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// writeFaultMetrics emits injected-fault counters when a fault plan is
// armed, one labeled series per point:kind rule, and nothing otherwise
// — scrape output is unchanged in normal operation. Exported through
// WriteFaultMetrics for the cluster coordinator's /metrics.
func writeFaultMetrics(w io.Writer) {
	p := fault.Active()
	if p == nil {
		return
	}
	counts := p.Counters()
	fmt.Fprintf(w, "# HELP sketchengine_fault_injections_total Faults injected by the armed fault spec, by point and kind.\n# TYPE sketchengine_fault_injections_total counter\n")
	for _, key := range p.CounterKeys() {
		point, kind, _ := strings.Cut(key, ":")
		fmt.Fprintf(w, "sketchengine_fault_injections_total{point=%q,kind=%q} %d\n", point, kind, counts[key])
	}
	fmt.Fprintf(w, "# HELP sketchengine_fault_spec_armed Whether a fault-injection spec is armed.\n# TYPE sketchengine_fault_spec_armed gauge\nsketchengine_fault_spec_armed 1\n")
}

// WriteFaultMetrics is writeFaultMetrics for other packages' /metrics
// renderers (the cluster coordinator).
func WriteFaultMetrics(w io.Writer) { writeFaultMetrics(w) }

// WritePromHistogram renders h as one Prometheus histogram series named
// metric with the given preformatted label pair (e.g. `endpoint="x"`):
// cumulative _bucket lines over LatencyBuckets, then _sum and _count.
// The # HELP / # TYPE header is the caller's job, since it is shared
// across all series of one metric. The cluster coordinator renders its
// fan-out histograms through the same helper.
func WritePromHistogram(w io.Writer, metric, labels string, h *Histogram) {
	var cum int64
	for i, ub := range LatencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n",
			metric, labels, strconv.FormatFloat(ub, 'g', -1, 64), cum)
	}
	cum += h.counts[len(LatencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", metric, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %s\n",
		metric, labels, strconv.FormatFloat(float64(h.sumNanos.Load())/1e9, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count{%s} %d\n", metric, labels, h.count.Load())
}

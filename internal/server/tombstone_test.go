package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"sketchengine/internal/core"
)

// These tests pin the tombstone lookup contract: once DELETE succeeds,
// GET /v1/records/{name} answers 404 with the not_found envelope — in
// memory, after a snapshot reload, and after a WAL-only crash replay —
// on both the JSON and the tiered directory layouts. A tombstoned
// record leaking back as 200 would also poison the cluster
// coordinator's first-200-wins lookup path.

func doDelete(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func wantGetNotFound(t *testing.T, client *http.Client, url string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET %s = %d, want 404; body %s", url, resp.StatusCode, out)
	}
	var env struct {
		Error ErrorDetail `json:"error"`
	}
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatalf("404 body is not the error envelope: %s", out)
	}
	if env.Error.Code != CodeNotFound {
		t.Fatalf("404 code = %q, want %q; body %s", env.Error.Code, CodeNotFound, out)
	}
}

func wantGetOK(t *testing.T, client *http.Client, url string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
}

func reopenedServer(t *testing.T, path string) (*Server, *httptest.Server) {
	t.Helper()
	ix, err := core.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngineWithIndex(ix, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close()
		ix.Close()
	})
	return s, ts
}

func TestTombstonedRecordNotFoundJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.json")
	s, ts := newTestServer(t, Config{IndexPath: path})
	client := ts.Client()

	resp, out := postJSON(t, client, ts.URL+"/v1/records", ingestBody("alpha", "beta"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	if resp, out = doDelete(t, client, ts.URL+"/v1/records/beta"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d, body %s", resp.StatusCode, out)
	}
	wantGetNotFound(t, client, ts.URL+"/v1/records/beta")
	wantGetOK(t, client, ts.URL+"/v1/records/alpha")

	// Snapshot and reload: the tombstone must survive serialization.
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	_, ts2 := reopenedServer(t, path)
	wantGetNotFound(t, ts2.Client(), ts2.URL+"/v1/records/beta")
	wantGetOK(t, ts2.Client(), ts2.URL+"/v1/records/alpha")
}

func TestTombstonedRecordNotFoundTiered(t *testing.T) {
	dir := t.TempDir()
	eng := tieredTestEngine(t, dir)
	s, err := New(eng, Config{DataDir: dir, SnapshotEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	closed := false
	t.Cleanup(func() {
		if !closed {
			ts.Close()
			_ = s.Close()
		}
	})
	client := ts.Client()

	resp, out := postJSON(t, client, ts.URL+"/v1/records", ingestBody("alpha", "beta", "gamma"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
	if resp, out = doDelete(t, client, ts.URL+"/v1/records/gamma"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d, body %s", resp.StatusCode, out)
	}
	wantGetNotFound(t, client, ts.URL+"/v1/records/gamma")

	// Crash without a snapshot: the delete only exists in the WAL, and
	// replay must reapply the tombstone, not resurrect the record.
	ts.Close()
	if err := eng.Index().Close(); err != nil {
		t.Fatal(err)
	}
	closed = true

	s2, ts2 := reopenedServer(t, dir)
	wantGetNotFound(t, ts2.Client(), ts2.URL+"/v1/records/gamma")
	wantGetOK(t, ts2.Client(), ts2.URL+"/v1/records/alpha")

	// Snapshot the replayed state and reload once more: the tombstone
	// must also survive the manifest/segment path.
	if _, err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	if err := s2.Engine().Index().Close(); err != nil {
		t.Fatal(err)
	}
	_, ts3 := reopenedServer(t, dir)
	wantGetNotFound(t, ts3.Client(), ts3.URL+"/v1/records/gamma")
	wantGetOK(t, ts3.Client(), ts3.URL+"/v1/records/alpha")
}

package server

import (
	"net/http"
	"sync/atomic"
	"time"
)

// metrics holds the server's request counters, all lock-free so the
// hot path never serializes on observability.
type metrics struct {
	start time.Time

	requests  atomic.Int64 // accepted past the limiter
	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64

	inFlight     atomic.Int64
	peakInFlight atomic.Int64 // high-water mark, proves the limiter's bound

	searches       atomic.Int64
	ingestRequests atomic.Int64
	recordsAdded   atomic.Int64
	batches        atomic.Int64 // coalesced AddBatch calls
	batchedRecords atomic.Int64 // records across those calls
	snapshots      atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

func (m *metrics) uptime() time.Duration { return time.Since(m.start) }

// trackInFlight bumps the in-flight gauge and maintains its high-water
// mark; the returned func undoes the bump.
func (m *metrics) trackInFlight() func() {
	n := m.inFlight.Add(1)
	for {
		peak := m.peakInFlight.Load()
		if n <= peak || m.peakInFlight.CompareAndSwap(peak, n) {
			break
		}
	}
	return func() { m.inFlight.Add(-1) }
}

func (m *metrics) observeStatus(code int) {
	switch {
	case code >= 500:
		m.status5xx.Add(1)
	case code >= 400:
		m.status4xx.Add(1)
	default:
		m.status2xx.Add(1)
	}
}

// statusWriter records the status code a handler wrote (200 when the
// handler never called WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// limit is the concurrency-limit middleware: at most MaxInFlight
// requests run at once, and excess requests wait on the semaphore
// rather than being shed, so bursts queue instead of failing. A client
// that gives up while waiting gets 503.
func (s *Server) limit(next http.Handler) http.Handler {
	sem := make(chan struct{}, s.cfg.MaxInFlight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable, "server overloaded")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// count is the observability middleware: request totals, status
// classes, and the in-flight gauge behind the limiter.
func (s *Server) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		defer s.metrics.trackInFlight()()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.metrics.observeStatus(sw.code)
	})
}

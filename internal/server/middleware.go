package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the server's request counters, all lock-free on the
// hot path so observability never serializes request handling.
type metrics struct {
	start time.Time

	requests  atomic.Int64 // accepted past the limiter
	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64

	inFlight     atomic.Int64
	peakInFlight atomic.Int64 // high-water mark, proves the limiter's bound

	searches       atomic.Int64
	deletes        atomic.Int64
	rebuckets      atomic.Int64
	ingestRequests atomic.Int64
	recordsAdded   atomic.Int64
	replicated     atomic.Int64 // sketches accepted via /v1/admin/replicate
	batches        atomic.Int64 // coalesced AddBatch calls
	batchedRecords atomic.Int64 // records across those calls
	snapshots      atomic.Int64

	deadlineExceeded atomic.Int64 // searches aborted by an expired deadline (504s)
	searchCanceled   atomic.Int64 // searches aborted because the caller went away

	// histMu guards registration only; routes() registers every endpoint
	// once at startup and handlers observe through the returned pointer.
	histMu    sync.Mutex
	latencies map[string]*Histogram
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), latencies: make(map[string]*Histogram)}
}

func (m *metrics) uptime() time.Duration { return time.Since(m.start) }

// LatencyBuckets are the fixed upper bounds, in seconds, of every
// endpoint latency histogram. They span sub-millisecond cache-warm
// searches through multi-second compacting snapshots; observations
// above the last bound land only in the implicit +Inf bucket. Treat as
// read-only; the cluster coordinator shares the same bounds so its
// fan-out histograms line up with the backends'.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket latency histogram in the Prometheus
// style: per-bucket counts (non-cumulative in memory, summed at render
// time), a running sum, and a total count, all atomics. It is shared
// with the cluster coordinator, which records fan-out latencies with
// the same bounds.
type Histogram struct {
	counts   []atomic.Int64 // len(LatencyBuckets)+1; last is +Inf overflow
	sumNanos atomic.Int64
	count    atomic.Int64
}

// NewHistogram returns an empty histogram over LatencyBuckets.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(LatencyBuckets)+1)}
}

// Observe records one duration. Safe for concurrent use.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(LatencyBuckets, secs)
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
	h.count.Add(1)
}

// hist returns the named endpoint's histogram, registering it on first
// use. Called once per endpoint while routes are built.
func (m *metrics) hist(name string) *Histogram {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	h, ok := m.latencies[name]
	if !ok {
		h = NewHistogram()
		m.latencies[name] = h
	}
	return h
}

// histNames returns the registered endpoint names, sorted so /metrics
// output is stable.
func (m *metrics) histNames() []string {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	names := make([]string, 0, len(m.latencies))
	for name := range m.latencies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// trackInFlight bumps the in-flight gauge and maintains its high-water
// mark; the returned func undoes the bump.
func (m *metrics) trackInFlight() func() {
	n := m.inFlight.Add(1)
	for {
		peak := m.peakInFlight.Load()
		if n <= peak || m.peakInFlight.CompareAndSwap(peak, n) {
			break
		}
	}
	return func() { m.inFlight.Add(-1) }
}

func (m *metrics) observeStatus(code int) {
	switch {
	case code >= 500:
		m.status5xx.Add(1)
	case code >= 400:
		m.status4xx.Add(1)
	default:
		m.status2xx.Add(1)
	}
}

// statusWriter records the status code a handler wrote (200 when the
// handler never called WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// limit is the concurrency-limit middleware: at most MaxInFlight
// requests run at once, and excess requests wait on the semaphore
// rather than being shed, so bursts queue instead of failing. A client
// that gives up while waiting gets 503.
func (s *Server) limit(next http.Handler) http.Handler {
	sem := make(chan struct{}, s.cfg.MaxInFlight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		case <-r.Context().Done():
			WriteError(w, http.StatusServiceUnavailable, CodeOverloaded, "server overloaded")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// count is the observability middleware: request totals, status
// classes, and the in-flight gauge behind the limiter.
func (s *Server) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		defer s.metrics.trackInFlight()()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.metrics.observeStatus(sw.code)
	})
}

// timed wraps one endpoint's handler with its latency histogram.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.hist(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start))
	}
}

// JSONErrors converts any plain-text error the routing layer emits —
// ServeMux's own 404s and 405s, mainly — into the JSON error envelope,
// so every error response on the API carries the same shape. Responses
// written through WriteJSON are untouched: it sets Content-Type to
// application/json before WriteHeader, which is the discriminator. The
// cluster coordinator mounts its routes behind the same middleware so
// both tiers speak one error shape.
func JSONErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

// envelopeWriter rewrites non-JSON error responses into the envelope.
// When it intercepts a status, the original handler's body is dropped
// (Write reports success so upstream writers don't error out).
type envelopeWriter struct {
	http.ResponseWriter
	wrote    bool
	suppress bool
}

func (w *envelopeWriter) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.wrote = true
	if code >= 400 && w.Header().Get("Content-Type") != "application/json" {
		w.suppress = true
		body := marshalError(CodeForStatus(code), http.StatusText(code))
		h := w.Header()
		h.Del("Content-Length")
		h.Set("Content-Type", "application/json")
		h.Set("X-Content-Type-Options", "nosniff")
		w.ResponseWriter.WriteHeader(code)
		_, _ = w.ResponseWriter.Write(body)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	if w.suppress {
		return len(p), nil
	}
	return w.ResponseWriter.Write(p)
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sketchengine/internal/core"
)

// ingestOne adds a single record through the HTTP API and fails the
// test on anything but a 200.
func ingestOne(t *testing.T, client *http.Client, url, name, data string) {
	t.Helper()
	resp, body := postJSON(t, client, url+"/v1/records", IngestRequest{
		Records: []IngestRecord{{Name: name, Data: data}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest %s: status %d, body %s", name, resp.StatusCode, body)
	}
}

// TestErrorEnvelope: every error response — handler-written or emitted
// by the routing layer itself — carries the same JSON envelope with a
// machine-readable code.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := ts.Client()

	check := func(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, wantStatus, body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("Content-Type = %q, want application/json (body %s)", ct, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("body %q is not the error envelope: %v", body, err)
		}
		if eb.Error.Code != wantCode || eb.Error.Message == "" {
			t.Fatalf("envelope = %+v, want code %q with a message", eb.Error, wantCode)
		}
	}

	// The mux's own 404: an unknown path.
	resp, err := client.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	check(t, resp, http.StatusNotFound, CodeNotFound)

	// The mux's own 405: wrong method on a typed route.
	resp, err = client.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	check(t, resp, http.StatusMethodNotAllowed, CodeMethodNotAllowed)

	// A handler-written error keeps its specific code.
	resp, err = client.Post(ts.URL+"/v1/search", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	check(t, resp, http.StatusBadRequest, CodeBadRequest)

	resp, err = client.Get(ts.URL + "/v1/records/no-such-record")
	if err != nil {
		t.Fatal(err)
	}
	check(t, resp, http.StatusNotFound, CodeNotFound)
}

// TestDeleteEndpoint: DELETE /v1/records/{name} removes the record,
// 404s on the second try, and the record stops appearing in searches.
func TestDeleteEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := ts.Client()
	ingestOne(t, client, ts.URL, "keep", "the payload that stays in the index")
	ingestOne(t, client, ts.URL, "doomed", "the payload that is about to go away")

	del := func(name string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/records/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := del("doomed")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d, body %s", resp.StatusCode, body)
	}
	var dr DeleteResponse
	if err := json.Unmarshal(body, &dr); err != nil || dr.Deleted != "doomed" {
		t.Fatalf("delete body %s: %v", body, err)
	}

	// Gone from GET and from a second DELETE.
	getResp, err := client.Get(ts.URL + "/v1/records/doomed")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete = %d, want 404", getResp.StatusCode)
	}
	if resp, _ := del("doomed"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete = %d, want 404", resp.StatusCode)
	}

	// Gone from search, even when queried with its own payload.
	resp, body = postJSON(t, client, ts.URL+"/v1/search", SearchRequest{
		Name: "q", Data: "the payload that is about to go away", K: 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	if strings.Contains(string(body), `"doomed"`) {
		t.Fatalf("deleted record in search results: %s", body)
	}
}

// TestIngestQueueFull: a full ingest queue yields 429 + Retry-After
// immediately instead of parking the request.
func TestIngestQueueFull(t *testing.T) {
	// A batcher that never drains: constructed by hand, no run loop.
	b := &batcher{
		eng:      testEngine(t),
		ch:       make(chan ingestItem, 1),
		done:     make(chan struct{}),
		maxBatch: 8,
		metrics:  newMetrics(),
	}
	b.ch <- ingestItem{} // occupy the only slot

	if _, err := b.enqueue(context.Background(), []core.Record{{Name: "x", Data: []byte("y")}}); err != errQueueFull {
		t.Fatalf("enqueue on a full queue = %v, want errQueueFull", err)
	}

	// End to end: a server whose queue is wedged returns the 429. The
	// replacement batcher has no drainer and a full one-slot queue; its
	// done channel is pre-closed so the harness's Close does not wait
	// for a drain that can never happen.
	s, ts := newTestServer(t, Config{QueueDepth: 1, MaxBatch: 4})
	done := make(chan struct{})
	close(done)
	wedged := &batcher{
		eng:      s.eng,
		ch:       make(chan ingestItem, 1),
		done:     done,
		maxBatch: 4,
		metrics:  s.metrics,
	}
	wedged.ch <- ingestItem{}
	s.ingest.close()
	s.ingest = wedged

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/records", IngestRequest{
		Records: []IngestRecord{{Name: "a", Data: "payload"}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != CodeQueueFull {
		t.Fatalf("429 body %s, want code %q", body, CodeQueueFull)
	}
}

// TestMetricsEndpoint: GET /metrics serves Prometheus text with the
// request histograms and counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := ts.Client()
	ingestOne(t, client, ts.URL, "m1", "some payload for the metrics test")
	if resp, _ := postJSON(t, client, ts.URL+"/v1/search", SearchRequest{Name: "q", Data: "some payload", K: 5}); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE sketchengine_requests_total counter",
		"sketchengine_searches_total 1",
		"sketchengine_records_added_total 1",
		"sketchengine_records 1",
		`sketchengine_responses_total{class="2xx"}`,
		`sketchengine_http_request_duration_seconds_bucket{endpoint="ingest",le="+Inf"} 1`,
		`sketchengine_http_request_duration_seconds_count{endpoint="search"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestRebucketEndpoint: POST /v1/admin/rebucket retunes the banding on
// a live server; bad schemes are rejected with the envelope.
func TestRebucketEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := ts.Client()
	for i := 0; i < 8; i++ {
		ingestOne(t, client, ts.URL, fmt.Sprintf("rec-%d", i), fmt.Sprintf("distinct payload number %d for rebucketing", i))
	}

	// The test engine uses 64-slot signatures: 16x4 covers it.
	resp, body := postJSON(t, client, ts.URL+"/v1/admin/rebucket", RebucketRequest{Bands: 16, RowsPerBand: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebucket status = %d, body %s", resp.StatusCode, body)
	}
	var rr RebucketResponse
	if err := json.Unmarshal(body, &rr); err != nil || rr.Bands != 16 || rr.RowsPerBand != 4 || rr.Records != 8 {
		t.Fatalf("rebucket body %s: %v", body, err)
	}

	// Search still works over the rebuilt postings.
	resp, body = postJSON(t, client, ts.URL+"/v1/search", SearchRequest{
		Name: "q", Data: "distinct payload number 3 for rebucketing", K: 3, Mode: "lsh",
	})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"rec-3"`) {
		t.Fatalf("post-rebucket search = %d, body %s", resp.StatusCode, body)
	}

	// A scheme that does not cover the signature is a 400 envelope.
	resp, body = postJSON(t, client, ts.URL+"/v1/admin/rebucket", RebucketRequest{Bands: 3, RowsPerBand: 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad rebucket status = %d, body %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != CodeBadRequest {
		t.Fatalf("bad rebucket body %s", body)
	}
}

// TestServerInitialSnapshot: a tiered server with an empty data dir
// commits the manifest (and thereby attaches the WALs) inside New,
// before it can acknowledge any write.
func TestServerInitialSnapshot(t *testing.T) {
	dir := t.TempDir()
	eng, err := core.NewEngine(core.Options{
		IndexName: "boot", Bits: 8, Tiered: true, DataDir: dir, SegmentRows: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, Config{DataDir: dir, SnapshotEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		eng.Index().Close()
	}()
	// The manifest exists and the WALs are live before any request.
	if ws := eng.Index().WAL(); ws == nil {
		t.Fatal("WALs not attached after New")
	}
}

package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sketchengine/internal/core"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultMaxInFlight  = 64
	DefaultMaxBatch     = 1024
	DefaultMaxBodyBytes = 8 << 20
	DefaultQueueDepth   = 64
	DefaultDrainTimeout = 10 * time.Second
)

// Config configures a Server. Zero values fall back to the package
// defaults above; an empty IndexPath disables snapshots entirely.
type Config struct {
	// Addr is the listen address, e.g. ":8080". Port 0 picks a free
	// port; Listen returns the bound address.
	Addr string
	// IndexPath is the snapshot destination for non-tiered indexes.
	// Snapshots reuse the index's atomic SaveFile (temp file + fsync +
	// rename), so a crash mid-save never corrupts the previous snapshot.
	// Empty disables JSON snapshots.
	IndexPath string
	// DataDir is the tiered index directory. When set, the served index
	// must be tiered and snapshots go through SaveDir instead of
	// SaveFile: each cycle seals the shards' unsealed rows into new
	// immutable segment files and atomically rewrites the small
	// manifest, so snapshot cost tracks the ingest delta rather than the
	// index size.
	DataDir string
	// SnapshotEvery is the periodic snapshot interval; 0 disables the
	// timer (a final snapshot is still written on shutdown). Snapshots
	// are skipped while the index generation is unchanged.
	SnapshotEvery time.Duration
	// MaxInFlight bounds concurrently-served requests; excess requests
	// queue on the limiter until a slot frees or the client gives up.
	MaxInFlight int
	// MaxBatch caps records per ingest request (oversized requests get
	// 413) and bounds how many records one coalesced AddBatch absorbs.
	MaxBatch int
	// MaxBodyBytes caps request body size.
	MaxBodyBytes int64
	// QueueDepth is the ingest queue capacity in pending requests; an
	// ingest that finds it full is refused with 429 and a Retry-After
	// header rather than parked.
	QueueDepth int
	// DrainTimeout bounds how long shutdown waits for in-flight
	// requests before closing connections.
	DrainTimeout time.Duration
	// Logf, when set, receives one-line operational events (snapshot
	// results, shutdown progress). nil means silent.
	Logf func(format string, args ...any)
}

// Server serves one core.Engine over HTTP.
type Server struct {
	cfg     Config
	eng     *core.Engine
	ingest  *batcher
	metrics *metrics
	handler http.Handler

	lis net.Listener

	snapMu    sync.Mutex // serializes snapshots
	savedGen  uint64     // index generation at the last snapshot
	forceSnap bool       // first snapshot must materialize a missing file

	closeOnce sync.Once
	closeErr  error
}

// New builds a Server around eng, applying defaults for zero Config
// fields. The engine must not be shared with writers outside the
// server while it is serving.
func New(eng *core.Engine, cfg Config) (*Server, error) {
	if eng == nil {
		return nil, errors.New("server: nil engine")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.DataDir != "" {
		if !eng.Index().Tiered() {
			return nil, errors.New("server: DataDir is set but the index is not tiered")
		}
		if got := eng.Index().DataDir(); got != cfg.DataDir {
			return nil, fmt.Errorf("server: DataDir %s does not match the index's data directory %s", cfg.DataDir, got)
		}
	}
	s := &Server{
		cfg:      cfg,
		eng:      eng,
		metrics:  newMetrics(),
		savedGen: eng.Index().Generation(),
	}
	if cfg.DataDir != "" {
		if _, err := os.Stat(filepath.Join(cfg.DataDir, core.ManifestFile)); err != nil {
			// No committed manifest yet: commit one now, synchronously.
			// The manifest rename is what attaches the per-shard WALs, and
			// every mutation acknowledged from the first request onward
			// must hit a WAL to survive a crash — so the index must be on
			// disk before the listener is.
			if err := eng.Index().SaveDir(); err != nil {
				return nil, fmt.Errorf("server: initial snapshot of %s: %w", cfg.DataDir, err)
			}
			s.savedGen = eng.Index().Generation()
		}
	} else if cfg.IndexPath != "" {
		if _, err := os.Stat(cfg.IndexPath); err != nil {
			// No snapshot file yet: force the first snapshot so a freshly
			// created index materializes on disk even before any ingest.
			s.forceSnap = true
		}
	}
	s.ingest = newBatcher(eng, cfg.QueueDepth, cfg.MaxBatch, s.metrics)
	s.handler = s.limit(s.count(s.routes()))
	return s, nil
}

// Handler returns the server's HTTP handler (routes wrapped in the
// counting and concurrency-limit middleware), for tests and embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// Engine returns the served engine.
func (s *Server) Engine() *core.Engine { return s.eng }

// Listen binds cfg.Addr and returns the bound address (useful with
// port 0). It must be called once, before Serve.
func (s *Server) Listen() (net.Addr, error) {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.lis = lis
	return lis.Addr(), nil
}

// Serve serves on the listener bound by Listen until ctx is canceled,
// then drains: in-flight requests get up to DrainTimeout to finish, the
// ingest queue is flushed, and a final snapshot is written. It returns
// nil on a clean drain.
func (s *Server) Serve(ctx context.Context) error {
	if s.lis == nil {
		return errors.New("server: Serve called before Listen")
	}
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(s.lis) }()

	var tick <-chan time.Time
	if (s.cfg.IndexPath != "" || s.cfg.DataDir != "") && s.cfg.SnapshotEvery > 0 {
		t := time.NewTicker(s.cfg.SnapshotEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			if wrote, err := s.Snapshot(); err != nil {
				s.logf("snapshot error: %v", err)
			} else if wrote {
				s.logf("snapshot written to %s (generation %d)", s.snapshotDest(), s.savedGeneration())
			}
		case err := <-errc:
			// Listener failure outside a requested shutdown; still flush
			// the queue and snapshot so acknowledged records survive.
			return errors.Join(err, s.Close())
		case <-ctx.Done():
			s.logf("shutdown requested, draining (timeout %s)", s.cfg.DrainTimeout)
			drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
			err := hs.Shutdown(drainCtx)
			cancel()
			<-errc // always http.ErrServerClosed after Shutdown
			// Handlers have returned, so no new ingest can be enqueued:
			// flushing the queue and snapshotting now covers every
			// acknowledged record.
			if cerr := s.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			s.logf("drained")
			return err
		}
	}
}

// Close flushes the ingest queue and writes a final snapshot. Serve
// calls it during shutdown; call it directly only when using Handler
// without Serve, after all requests have finished. Safe to call more
// than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.ingest.close()
		if _, err := s.Snapshot(); err != nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}

// snapshotDest names where snapshots land, for logs.
func (s *Server) snapshotDest() string {
	if s.cfg.DataDir != "" {
		return s.cfg.DataDir
	}
	return s.cfg.IndexPath
}

// Snapshot writes the index to its snapshot destination — the tiered
// data directory via SaveDir when DataDir is set, the JSON IndexPath
// via SaveFile otherwise — if it changed since the last snapshot (or
// none exists yet), reporting whether anything was written. It is safe
// for concurrent use and a no-op when snapshots are disabled.
func (s *Server) Snapshot() (bool, error) {
	if s.cfg.IndexPath == "" && s.cfg.DataDir == "" {
		return false, nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	gen := s.eng.Index().Generation()
	if gen == s.savedGen && !s.forceSnap {
		return false, nil
	}
	var err error
	if s.cfg.DataDir != "" {
		err = s.eng.Index().SaveDir()
	} else {
		err = s.eng.Index().SaveFile(s.cfg.IndexPath)
	}
	if err != nil {
		return false, err
	}
	// Records added between the generation read and the save are in the
	// file but not in savedGen; the next snapshot simply rewrites them.
	s.savedGen = gen
	s.forceSnap = false
	s.metrics.snapshots.Add(1)
	return true, nil
}

func (s *Server) savedGeneration() uint64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.savedGen
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

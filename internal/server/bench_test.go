package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"sketchengine/internal/core"
)

// benchPayload returns n bytes of deterministic pseudo-random text.
func benchPayload(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	for i := range data {
		data[i] = byte('a' + rng.Intn(26))
	}
	return string(data)
}

// newBenchServer preloads records records and fronts the server with a
// keep-alive HTTP test server, so benchmarks measure the full serving
// path: routing, middleware, JSON, queueing, and the engine.
func newBenchServer(b *testing.B, records int) (*httptest.Server, *http.Client) {
	b.Helper()
	eng, err := core.NewEngine(core.Options{K: 8, SignatureSize: 128, IndexName: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]core.Record, records)
	for i := range recs {
		recs[i] = core.Record{
			Name: fmt.Sprintf("bench-%d", i),
			Data: []byte(benchPayload(1<<10, int64(i+1))),
		}
	}
	if _, err := eng.AddBatch(recs); err != nil {
		b.Fatal(err)
	}
	s, err := New(eng, Config{QueueDepth: 256})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			b.Error(err)
		}
	})
	return ts, ts.Client()
}

func benchPost(b *testing.B, client *http.Client, url string, body []byte) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Error(err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Errorf("status %d", resp.StatusCode)
	}
}

// BenchmarkServeSearch measures concurrent top-K search throughput
// through the full HTTP stack against a 1k-record corpus.
func BenchmarkServeSearch(b *testing.B) {
	ts, client := newBenchServer(b, 1000)
	query, err := json.Marshal(SearchRequest{
		Name: "query",
		Data: benchPayload(1<<10, 1), // near-duplicate of bench-0
		K:    10,
	})
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/v1/search"
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, client, url, query)
		}
	})
}

// benchIngestSeq hands out globally unique record names so repeated
// benchmark runs in one process never collide into skip-existing adds.
var benchIngestSeq atomic.Int64

// BenchmarkServeIngestWhileSearch interleaves batched ingest with
// search across the parallel workers: the serving layer's
// ingest-under-read contention path, exercising the coalescing queue
// and the index's lock stripes together.
func BenchmarkServeIngestWhileSearch(b *testing.B) {
	ts, client := newBenchServer(b, 1000)
	searchURL := ts.URL + "/v1/search"
	ingestURL := ts.URL + "/v1/records"
	query, err := json.Marshal(SearchRequest{
		Name: "query",
		Data: benchPayload(1<<10, 2),
		K:    10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			seq := benchIngestSeq.Add(1)
			if seq%4 == 0 { // one ingest per three searches
				body, err := json.Marshal(IngestRequest{Records: []IngestRecord{{
					Name: fmt.Sprintf("ingest-%d", seq),
					Data: benchPayload(1<<10, seq+1_000_000),
				}}})
				if err != nil {
					b.Error(err)
					return
				}
				benchPost(b, client, ingestURL, body)
				continue
			}
			benchPost(b, client, searchURL, query)
		}
	})
}

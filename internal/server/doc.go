// Package server exposes a core.Engine over HTTP JSON as a long-lived
// serving layer: batched ingest through a bounded coalescing queue,
// top-K search with per-request overrides, record lookup, health and
// stats endpoints, periodic and shutdown snapshots, a configurable
// concurrency limit, and graceful connection draining.
//
// Lifecycle: New -> Listen -> Serve(ctx). Canceling ctx drains in-flight
// requests (bounded by DrainTimeout), flushes the ingest queue, and
// writes a final snapshot. Handler is exported for in-process tests
// that skip the listener; such callers must Close the server
// themselves.
//
// # Invariants
//
//   - Acknowledged ingest survives shutdown: a 200 on /v1/records means
//     the records reach the next snapshot. Shutdown orders handler
//     drain, then queue flush, then the final snapshot, so nothing
//     acknowledged can be lost to a clean SIGTERM.
//   - Snapshots are atomic at their commit point — the file rename in
//     SaveFile for JSON indexes (Config.IndexPath), the manifest rename
//     in SaveDir for tiered indexes (Config.DataDir). A crash mid-save
//     leaves the previous snapshot intact. Tiered snapshots only append
//     segment files; sealed segments are never rewritten, so periodic
//     snapshot cost tracks the ingest delta.
//   - Snapshots are generation-gated: an unchanged index is never
//     rewritten by the periodic timer.
//   - /stats is cheap and lock-light; its engine block includes the
//     tier sub-object (resident vs mapped bytes, prefilter survival)
//     exactly when the served index is tiered.
package server

package server

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain asserts the package leaks no goroutines: Server.Close must
// stop everything a Server starts, and test HTTP plumbing must unwind
// with its servers. The check retries with a grace period because
// net/http read loops exit asynchronously after their connections
// close, and keeps a small slack for runtime helpers that are not the
// package's to stop.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		http.DefaultClient.CloseIdleConnections()
		const slack = 4
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= baseline+slack {
				break
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				fmt.Fprintf(os.Stderr, "goroutine leak: %d live after tests, baseline %d (slack %d)\n%s\n",
					n, baseline, slack, buf)
				code = 1
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	os.Exit(code)
}

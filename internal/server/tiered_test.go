package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"sketchengine/internal/core"
)

func tieredTestEngine(t *testing.T, dir string) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.Options{
		K: 4, SignatureSize: 64, IndexName: "tieredsrv", Shards: 4,
		Bits: 8, Tiered: true, DataDir: dir, SegmentRows: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Index().Close() })
	return eng
}

// TestTieredSnapshotLifecycle: a server over a tiered engine snapshots
// through SaveDir — the first snapshot materializes the manifest,
// ingest survives Close, and the committed directory reloads with every
// acknowledged record.
func TestTieredSnapshotLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := New(tieredTestEngine(t, dir), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/records",
		ingestBody("alpha", "beta", "gamma", "delta"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %s", resp.StatusCode, body)
	}

	// /stats surfaces the tier: the prefilter width and resident/mapped
	// byte split ride along inside the engine block.
	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var st struct {
		Engine struct {
			Tier *core.TierStats `json:"tier"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats body %s: %v", body, err)
	}
	if st.Engine.Tier == nil || st.Engine.Tier.PrefilterBits != 8 {
		t.Fatalf("stats tier = %+v, want an 8-bit prefilter block", st.Engine.Tier)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, core.ManifestFile)); err != nil {
		t.Fatalf("shutdown snapshot wrote no manifest: %v", err)
	}
	ix, err := core.Open(dir)
	if err != nil {
		t.Fatalf("Open after shutdown: %v", err)
	}
	defer ix.Close()
	if ix.Len() != 4 || ix.Get("delta") == nil {
		t.Fatalf("reloaded tiered index: len=%d", ix.Len())
	}
}

// TestTieredConfigValidation: DataDir must describe the engine it is
// paired with — a non-tiered engine or a mismatched directory is a
// configuration bug New refuses.
func TestTieredConfigValidation(t *testing.T) {
	if _, err := New(testEngine(t), Config{DataDir: t.TempDir()}); err == nil {
		t.Fatal("New accepted DataDir on a non-tiered engine")
	}
	dir := t.TempDir()
	if _, err := New(tieredTestEngine(t, dir), Config{DataDir: t.TempDir()}); err == nil {
		t.Fatal("New accepted a DataDir that is not the index's data directory")
	}
	s, err := New(tieredTestEngine(t, dir), Config{DataDir: dir})
	if err != nil {
		t.Fatalf("matching DataDir rejected: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"

	"sketchengine/internal/core"
)

func getBody(t testing.TB, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func ingestN(t *testing.T, url string, n int) {
	t.Helper()
	var req IngestRequest
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("page-%02d.txt", i)
		req.Records = append(req.Records, IngestRecord{
			Name: name,
			Data: fmt.Sprintf("replica test payload for %s with shared overlapping stems", name),
		})
	}
	resp, out := postJSON(t, http.DefaultClient, url+"/v1/records", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d, body %s", resp.StatusCode, out)
	}
}

// TestListRecordsPagination: GET /v1/records walks the whole corpus in
// cursor-linked pages with full replica payloads (signatures included),
// no duplicates, no gaps.
func TestListRecordsPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const n = 10
	ingestN(t, ts.URL, n)

	seen := make(map[string]bool)
	cursor := ""
	pages := 0
	for {
		url := ts.URL + "/v1/records?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, out := getBody(t, http.DefaultClient, url)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list page = %d, body %s", resp.StatusCode, out)
		}
		var page RecordListResponse
		if err := json.Unmarshal(out, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Records) > 3 {
			t.Fatalf("page of %d records exceeds limit 3", len(page.Records))
		}
		for _, rec := range page.Records {
			if seen[rec.Name] {
				t.Fatalf("record %s appeared on two pages", rec.Name)
			}
			seen[rec.Name] = true
			if len(rec.Signature) == 0 {
				t.Fatalf("record %s listed without its signature", rec.Name)
			}
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != n {
		t.Fatalf("pagination walked %d records, want %d", len(seen), n)
	}
	if pages < 4 {
		t.Fatalf("10 records at limit 3 should take at least 4 pages, took %d", pages)
	}

	// An empty corpus still encodes "records":[] with no cursor.
	_, ts2 := newTestServer(t, Config{})
	resp, out := getBody(t, http.DefaultClient, ts2.URL+"/v1/records")
	if resp.StatusCode != http.StatusOK || string(out) != "{\"records\":[]}\n" {
		t.Fatalf("empty list = %d, body %q, want {\"records\":[]}", resp.StatusCode, out)
	}
}

// TestListRecordsCursorGone: a cursor naming a record that no longer
// exists (deleted between pages) is 410 cursor_gone — the walker
// restarts rather than silently skipping a gap.
func TestListRecordsCursorGone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ingestN(t, ts.URL, 4)

	resp, out := getBody(t, http.DefaultClient, ts.URL+"/v1/records?cursor=never-indexed.txt")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale cursor = %d, want 410; body %s", resp.StatusCode, out)
	}
	var env struct {
		Error ErrorDetail `json:"error"`
	}
	if err := json.Unmarshal(out, &env); err != nil || env.Error.Code != CodeCursorGone {
		t.Fatalf("want %s envelope, got %s", CodeCursorGone, out)
	}

	// Bad limits are 400s.
	for _, q := range []string{"limit=0", "limit=-2", "limit=notanumber", "limit=99999"} {
		resp, out := getBody(t, http.DefaultClient, ts.URL+"/v1/records?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("list with %s = %d, want 400; body %s", q, resp.StatusCode, out)
		}
	}
}

// TestReplicateEndpoint: POST /v1/admin/replicate inserts pre-built
// sketches byte-identically — the transport repair and rebalance use —
// and is idempotent.
func TestReplicateEndpoint(t *testing.T) {
	_, src := newTestServer(t, Config{})
	ingestN(t, src.URL, 3)

	// Pull one record with its signature; GET must honor ?signature=1.
	resp, out := getBody(t, http.DefaultClient, src.URL+"/v1/records/page-01.txt?signature=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get with signature = %d, body %s", resp.StatusCode, out)
	}
	var rec RecordResponse
	if err := json.Unmarshal(out, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Signature) != 64 {
		t.Fatalf("signature length = %d, want 64", len(rec.Signature))
	}
	// Without the flag the wire stays lean.
	_, lean := getBody(t, http.DefaultClient, src.URL+"/v1/records/page-01.txt")
	var leanRec RecordResponse
	if err := json.Unmarshal(lean, &leanRec); err != nil {
		t.Fatal(err)
	}
	if len(leanRec.Signature) != 0 {
		t.Fatalf("plain GET leaked the signature: %s", lean)
	}

	dstSrv, dst := newTestServer(t, Config{})
	rep := ReplicateRequest{Records: []ReplicaRecord{{
		Name: rec.Name, Shingles: rec.Shingles, Bits: rec.Bits, Signature: rec.Signature,
	}}}
	resp, out = postJSON(t, http.DefaultClient, dst.URL+"/v1/admin/replicate", rep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate = %d, body %s", resp.StatusCode, out)
	}
	var ing IngestResponse
	if err := json.Unmarshal(out, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Received != 1 || ing.Added != 1 {
		t.Fatalf("replicate response = %+v, want 1 received / 1 added", ing)
	}
	// The copy is byte-identical to the original.
	got := dstSrv.Engine().Index().Get("page-01.txt")
	if got == nil {
		t.Fatal("replicated record missing from the destination index")
	}
	for i, v := range got.Signature {
		if v != rec.Signature[i] {
			t.Fatalf("signature slot %d = %d, want %d — replication must not re-sketch", i, v, rec.Signature[i])
		}
	}

	// Idempotent: the same copy again is a skip, not an error.
	resp, out = postJSON(t, http.DefaultClient, dst.URL+"/v1/admin/replicate", rep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-replicate = %d, body %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Added != 0 || ing.Skipped != 1 {
		t.Fatalf("re-replicate response = %+v, want 0 added / 1 skipped", ing)
	}

	// A signature of the wrong width is the sender's fault: 400, and
	// nothing lands.
	bad := ReplicateRequest{Records: []ReplicaRecord{{
		Name: "bad.txt", Shingles: 5, Signature: make([]uint64, 7),
	}}}
	resp, out = postJSON(t, http.DefaultClient, dst.URL+"/v1/admin/replicate", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replicate with a short signature = %d, want 400; body %s", resp.StatusCode, out)
	}
	if dstSrv.Engine().Index().Has("bad.txt") {
		t.Fatal("rejected replicate must not leave the record behind")
	}

	// Replicated inserts are visible in /stats.
	_, stats := getBody(t, http.DefaultClient, dst.URL+"/stats")
	var st StatsResponse
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Ingest.Replicated != 1 {
		t.Fatalf("stats replicated = %d, want 1", st.Ingest.Replicated)
	}
}

// TestRecordsIterator exercises the core pagination primitive directly:
// stable walk, deleted-cursor detection, delete-during-walk tolerance.
func TestRecordsIterator(t *testing.T) {
	eng := testEngine(t)
	for i := 0; i < 7; i++ {
		if _, err := eng.Add(core.Record{
			Name: fmt.Sprintf("it-%d", i),
			Data: []byte(fmt.Sprintf("iterator corpus payload %d with stems", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ix := eng.Index()

	var all []string
	cursor := ""
	for {
		page, next, err := ix.Records(cursor, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, sk := range page {
			all = append(all, sk.Name)
		}
		if next == "" {
			break
		}
		cursor = next
	}
	if len(all) != 7 {
		t.Fatalf("iterator yielded %d records, want 7", len(all))
	}

	if _, _, err := ix.Records("no-such-record", 3); !errors.Is(err, core.ErrCursorGone) {
		t.Fatalf("unknown cursor error = %v, want ErrCursorGone", err)
	}

	// Deleting the record a cursor points past must not break the walk:
	// the cursor name stays in order (tombstoned) or the caller gets
	// cursor_gone and restarts — either way, no silent gap. Here the
	// cursor record survives, a later record dies mid-walk.
	page, next, err := ix.Records("", 3)
	if err != nil || next == "" {
		t.Fatalf("first page: %v, next %q", err, next)
	}
	if _, err := ix.Delete(all[4]); err != nil {
		t.Fatal(err)
	}
	rest, _, err := ix.Records(next, 10)
	if err != nil {
		t.Fatalf("walk after a mid-corpus delete: %v", err)
	}
	for _, sk := range rest {
		if sk.Name == all[4] {
			t.Fatalf("deleted record %s still listed", all[4])
		}
	}
	if len(page)+len(rest) != 6 {
		t.Fatalf("walk after delete yielded %d, want 6", len(page)+len(rest))
	}
}

#!/usr/bin/env bash
# check_links.sh — verify that relative markdown links and heading
# anchors in the repo's documentation resolve. Catches renamed files,
# moved sections, and typo'd anchors before they land as dead links.
#
# Scope: README.md, ROADMAP.md, and everything under docs/. External
# (http/https/mailto) links are not fetched — this is a structural
# check, not a liveness probe.
#
# Usage: scripts/check_links.sh [file ...]
set -euo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
    files=(README.md ROADMAP.md)
    while IFS= read -r f; do files+=("$f"); done < <(find docs -name '*.md' 2>/dev/null | sort)
fi

# github_anchor TEXT — the GitHub-style anchor for a heading: lowercase,
# spaces to dashes, punctuation (except dashes/underscores) stripped.
# Inline code spans and links contribute their text.
github_anchor() {
    printf '%s' "$1" |
        sed -E 's/\[([^]]*)\]\([^)]*\)/\1/g; s/`//g' |
        tr '[:upper:]' '[:lower:]' |
        sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
    echo
}

# anchors_of FILE — every heading anchor the file defines, one per
# line, with GitHub's -1, -2 suffixes for duplicates.
anchors_of() {
    local file="$1"
    awk '/^```/ { fence = !fence } !fence && /^#+ / { sub(/^#+ /, ""); print }' "$file" |
        while IFS= read -r heading; do
            github_anchor "$heading"
        done |
        awk '{ if (seen[$0]++) print $0 "-" seen[$0]-1; else print }'
}

fail=0

for file in "${files[@]}"; do
    [[ -f "$file" ]] || { echo "check_links: $file not found" >&2; fail=1; continue; }
    dir="$(dirname "$file")"

    # Pull every inline markdown link target out of the file. Code
    # fences are skipped so shell snippets with [brackets](parens)
    # don't false-positive.
    while IFS= read -r target; do
        case "$target" in
        http://*|https://*|mailto:*) continue ;;
        esac
        path="${target%%#*}"
        anchor=""
        [[ "$target" == *#* ]] && anchor="${target#*#}"

        if [[ -z "$path" ]]; then
            dest="$file" # same-file anchor
        else
            dest="$dir/$path"
            # Links that climb out of the repo point at the hosting
            # site (badge/workflow URLs), not the working tree.
            if [[ "$(realpath -m "$dest")" != "$PWD"/* ]]; then
                continue
            fi
            if [[ ! -e "$dest" ]]; then
                echo "check_links: $file: broken link: $target ($dest does not exist)" >&2
                fail=1
                continue
            fi
        fi
        if [[ -n "$anchor" && -f "$dest" && "$dest" == *.md ]]; then
            if ! anchors_of "$dest" | grep -qxF "$anchor"; then
                echo "check_links: $file: broken anchor: $target (no heading for #$anchor in $dest)" >&2
                fail=1
            fi
        fi
    done < <(awk '/^```/ { fence = !fence } !fence' "$file" |
        grep -oE '\]\(([^)]+)\)' | sed -E 's/^\]\(//; s/\)$//' || true)
done

if [[ $fail -ne 0 ]]; then
    exit 1
fi
echo "check_links: all links and anchors resolve (${#files[@]} files)"

#!/usr/bin/env bash
# bench.sh — run the Go microbenchmarks and emit results as JSON, so
# BENCH_*.json files form a trajectory across PRs.
#
# Usage:
#   scripts/bench.sh [output.json] [benchtime]
#       Run all benchmarks and write a JSON report.
#       output.json  defaults to BENCH_<utc timestamp>.json
#       benchtime    passed to -benchtime (default 1x for a fast smoke run)
#
#   scripts/bench.sh compare [baseline.json] [benchtime]
#       Run a fresh pass and diff it against a committed baseline
#       (default BENCH_baseline.json), printing a markdown table.
#       Exits non-zero if any benchmark regresses by more than 25%
#       ns/op against the baseline.
#
# Writing BENCH_baseline.json is refused from a dirty working tree, so
# the committed baseline always matches the commit stamped into it.
# Set BENCH_ALLOW_DIRTY=1 to override (e.g. while iterating locally).
set -euo pipefail

cd "$(dirname "$0")/.."

# refuse_dirty_baseline OUT — a baseline recorded from uncommitted code
# lies about its "commit" field and poisons every later comparison.
refuse_dirty_baseline() {
    local out="$1"
    [[ "$(basename "$out")" == "BENCH_baseline.json" ]] || return 0
    [[ -z "${BENCH_ALLOW_DIRTY:-}" ]] || return 0
    if [[ -n "$(git status --porcelain 2>/dev/null)" ]]; then
        echo "bench.sh: refusing to write $out from a dirty working tree" >&2
        echo "bench.sh: commit first, or set BENCH_ALLOW_DIRTY=1 to override" >&2
        exit 2
    fi
}

# run_bench OUT BENCHTIME — run all benchmarks (core microbenchmarks
# and the internal/server HTTP serving benchmarks), write the JSON
# report. The explicit -timeout gives the HTTP benchmarks headroom on
# slow runners.
run_bench() {
    local out="$1" benchtime="$2" raw
    raw="$(go test -run '^$' -bench=. -benchmem -benchtime="$benchtime" -timeout 20m ./...)"

    awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
        -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes_op = ""; allocs = ""; mb_s = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes_op = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "MB/s")      mb_s = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    if (ns != "")       line = line sprintf(", \"ns_per_op\": %s", ns)
    if (mb_s != "")     line = line sprintf(", \"mb_per_s\": %s", mb_s)
    if (bytes_op != "") line = line sprintf(", \"bytes_per_op\": %s", bytes_op)
    if (allocs != "")   line = line sprintf(", \"allocs_per_op\": %s", allocs)
    results[n++] = line "}"
}
END {
    printf "{\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++)
        printf "%s%s\n", results[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' <<<"$raw" >"$out"

    echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)" >&2
}

# extract FILE — benchmark name/ns_per_op pairs, one per line, with the
# GOMAXPROCS suffix stripped so runs from machines with different core
# counts stay comparable.
extract() {
    awk -F'"' '/"name":/ {
        name = $4
        sub(/-[0-9]+$/, "", name)
        if (match($0, /"ns_per_op": [0-9.]+/))
            print name "\t" substr($0, RSTART + 13, RLENGTH - 13)
    }' "$1"
}

# compare BASELINE CURRENT — markdown diff table; exit 1 on >25% ns/op
# regression in any benchmark present in both files.
compare() {
    local baseline="$1" current="$2"
    awk -F'\t' '
NR == FNR { base[$1] = $2; next }
{ cur[$1] = $2; order[n++] = $1 }
END {
    printf "| benchmark | baseline ns/op | current ns/op | delta |\n"
    printf "|---|---:|---:|---:|\n"
    fail = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in base)) {
            printf "| %s | - | %s | new |\n", name, cur[name]
            continue
        }
        delta = (cur[name] - base[name]) / base[name] * 100
        mark = ""
        if (cur[name] > base[name] * 1.25) { mark = " **REGRESSION**"; fail = 1 }
        printf "| %s | %s | %s | %+.1f%%%s |\n", name, base[name], cur[name], delta, mark
    }
    for (name in base)
        if (!(name in cur))
            printf "| %s | %s | - | removed |\n", name, base[name]
    exit fail
}' <(extract "$baseline") <(extract "$current")
}

if [[ "${1:-}" == "compare" ]]; then
    baseline="${2:-BENCH_baseline.json}"
    benchtime="${3:-1x}"
    if [[ ! -f "$baseline" ]]; then
        echo "bench.sh: baseline $baseline not found" >&2
        exit 2
    fi
    fresh="$(mktemp -t bench-current.XXXXXX.json)"
    trap 'rm -f "$fresh"' EXIT
    run_bench "$fresh" "$benchtime"
    echo "### Benchmark comparison vs $baseline"
    if compare "$baseline" "$fresh"; then
        echo
        echo "No >25% ns/op regressions."
    else
        echo
        echo "At least one benchmark regressed by >25% ns/op." >&2
        exit 1
    fi
else
    out="${1:-BENCH_$(date -u +%Y%m%dT%H%M%SZ).json}"
    refuse_dirty_baseline "$out"
    run_bench "$out" "${2:-1x}"
fi

#!/usr/bin/env bash
# bench.sh — run the Go microbenchmarks and emit results as JSON, so
# BENCH_*.json files form a trajectory across PRs.
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH_<utc timestamp>.json
#   benchtime    passed to -benchtime (default 1x for a fast smoke run)
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date -u +%Y%m%dT%H%M%SZ).json}"
benchtime="${2:-1x}"

raw="$(go test -run '^$' -bench=. -benchmem -benchtime="$benchtime" ./...)"

awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes_op = ""; allocs = ""; mb_s = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes_op = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "MB/s")      mb_s = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    if (ns != "")       line = line sprintf(", \"ns_per_op\": %s", ns)
    if (mb_s != "")     line = line sprintf(", \"mb_per_s\": %s", mb_s)
    if (bytes_op != "") line = line sprintf(", \"bytes_per_op\": %s", bytes_op)
    if (allocs != "")   line = line sprintf(", \"allocs_per_op\": %s", allocs)
    results[n++] = line "}"
}
END {
    printf "{\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++)
        printf "%s%s\n", results[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' <<<"$raw" >"$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)" >&2

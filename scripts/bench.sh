#!/usr/bin/env bash
# bench.sh — run the Go microbenchmarks and emit results as JSON, so
# BENCH_*.json files form a trajectory across PRs.
#
# Usage:
#   scripts/bench.sh [output.json] [benchtime]
#       Run all benchmarks and write a JSON report.
#       output.json  defaults to BENCH_<utc timestamp>.json
#       benchtime    passed to -benchtime (default 1x for a fast smoke run)
#
#   scripts/bench.sh compare [baseline.json] [benchtime]
#       Run a fresh pass and diff it against a committed baseline
#       (default BENCH_baseline.json), printing a markdown table.
#       Exits non-zero if any benchmark regresses by more than 25%
#       in ns/op or bytes/rec against the baseline.
#
# Writing BENCH_baseline.json is refused from a dirty working tree, so
# the committed baseline always matches the commit stamped into it.
# Set BENCH_ALLOW_DIRTY=1 to override (e.g. while iterating locally).
set -euo pipefail

cd "$(dirname "$0")/.."

# refuse_dirty_baseline OUT — a baseline recorded from uncommitted code
# lies about its "commit" field and poisons every later comparison.
refuse_dirty_baseline() {
    local out="$1"
    [[ "$(basename "$out")" == "BENCH_baseline.json" ]] || return 0
    [[ -z "${BENCH_ALLOW_DIRTY:-}" ]] || return 0
    if [[ -n "$(git status --porcelain 2>/dev/null)" ]]; then
        echo "bench.sh: refusing to write $out from a dirty working tree" >&2
        echo "bench.sh: commit first, or set BENCH_ALLOW_DIRTY=1 to override" >&2
        exit 2
    fi
}

# run_bench OUT BENCHTIME — run all benchmarks (core microbenchmarks
# and the internal/server HTTP serving benchmarks), write the JSON
# report. The explicit -timeout gives the HTTP benchmarks headroom on
# slow runners.
run_bench() {
    local out="$1" benchtime="$2" raw ncpu gmp
    raw="$(go test -run '^$' -bench=. -benchmem -benchtime="$benchtime" -timeout 20m ./...)"
    # Record the parallelism the run actually had: ns/op on a 1-core CI
    # runner is not comparable to ns/op on a 16-core laptop, and the
    # compare gate uses these fields to tell the two apart instead of
    # relying on a prose caveat in the PR.
    ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)"
    gmp="${GOMAXPROCS:-$ncpu}"

    awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
        -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
        -v ncpu="$ncpu" -v gmp="$gmp" '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes_op = ""; allocs = ""; mb_s = ""; bytes_rec = ""
    survival = ""; mapped_rec = ""; ack_ns = ""; fsync_ns = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")         ns = $i
        if ($(i+1) == "B/op")          bytes_op = $i
        if ($(i+1) == "allocs/op")     allocs = $i
        if ($(i+1) == "MB/s")          mb_s = $i
        if ($(i+1) == "bytes/rec")     bytes_rec = $i
        if ($(i+1) == "survival")      survival = $i
        if ($(i+1) == "mappedB/rec")   mapped_rec = $i
        if ($(i+1) == "ingest_ack_ns") ack_ns = $i
        if ($(i+1) == "wal_fsync_ns")  fsync_ns = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    if (ns != "")         line = line sprintf(", \"ns_per_op\": %s", ns)
    if (mb_s != "")       line = line sprintf(", \"mb_per_s\": %s", mb_s)
    if (bytes_rec != "")  line = line sprintf(", \"bytes_per_record\": %s", bytes_rec)
    if (survival != "")   line = line sprintf(", \"survival_rate\": %s", survival)
    if (mapped_rec != "") line = line sprintf(", \"mapped_bytes_per_record\": %s", mapped_rec)
    if (ack_ns != "")     line = line sprintf(", \"ingest_ack_ns\": %s", ack_ns)
    if (fsync_ns != "")   line = line sprintf(", \"wal_fsync_ns\": %s", fsync_ns)
    if (bytes_op != "")   line = line sprintf(", \"bytes_per_op\": %s", bytes_op)
    if (allocs != "")     line = line sprintf(", \"allocs_per_op\": %s", allocs)
    results[n++] = line "}"
}
END {
    printf "{\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"num_cpu\": %d,\n", ncpu
    printf "  \"gomaxprocs\": %d,\n", gmp
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++)
        printf "%s%s\n", results[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' <<<"$raw" >"$out"

    echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)" >&2
}

# extract FILE — benchmark name/metric/value triples, one per line,
# with the GOMAXPROCS suffix stripped so runs from machines with
# different core counts stay comparable. Covers the time metric
# (ns/op), the memory metric (bytes/rec), the tier-health metrics
# (survival rate, mapped bytes per record), and the durability metrics
# (acked-ingest latency, WAL fsync latency), so comparisons track
# speed, footprint, selectivity, and durability cost side by side.
extract() {
    awk -F'"' '/"name":/ {
        name = $4
        sub(/-[0-9]+$/, "", name)
        if (match($0, /"ns_per_op": [0-9.]+/))
            print name "\tns/op\t" substr($0, RSTART + 13, RLENGTH - 13)
        if (match($0, /"bytes_per_record": [0-9.]+/))
            print name "\tbytes/rec\t" substr($0, RSTART + 20, RLENGTH - 20)
        if (match($0, /"survival_rate": [0-9.]+/))
            print name "\tsurvival\t" substr($0, RSTART + 17, RLENGTH - 17)
        if (match($0, /"mapped_bytes_per_record": [0-9.]+/))
            print name "\tmappedB/rec\t" substr($0, RSTART + 27, RLENGTH - 27)
        if (match($0, /"ingest_ack_ns": [0-9.]+/))
            print name "\tingest_ack_ns\t" substr($0, RSTART + 17, RLENGTH - 17)
        if (match($0, /"wal_fsync_ns": [0-9.]+/))
            print name "\twal_fsync_ns\t" substr($0, RSTART + 16, RLENGTH - 16)
    }' "$1"
}

# cpu_shape FILE — "num_cpu/gomaxprocs" from a report's metadata, or
# "?" for reports that predate those fields.
cpu_shape() {
    awk -F': ' '
        /"num_cpu":/    { gsub(/[ ,]/, "", $2); n = $2 }
        /"gomaxprocs":/ { gsub(/[ ,]/, "", $2); g = $2 }
        END { if (n == "" && g == "") print "?"; else print n "/" g }
    ' "$1"
}

# compare BASELINE CURRENT — markdown diff table over every recorded
# metric; exit 1 on a >25% regression (ns/op or bytes/rec) in any
# benchmark present in both files. When the two reports were taken at
# different CPU shapes (num_cpu/GOMAXPROCS), wall-clock metrics are not
# comparable, so ns/op regressions demote to warnings and only the
# machine-independent bytes/rec metric still gates.
compare() {
    local baseline="$1" current="$2" bshape cshape cpumatch=1
    bshape="$(cpu_shape "$baseline")"
    cshape="$(cpu_shape "$current")"
    if [[ "$bshape" != "$cshape" ]]; then
        cpumatch=0
        echo "bench.sh: CPU shape mismatch: baseline ran at ${bshape} (num_cpu/GOMAXPROCS), current at ${cshape}." >&2
        echo "bench.sh: ns/op deltas are not comparable across shapes; gating on bytes/rec only." >&2
    fi
    awk -F'\t' -v cpumatch="$cpumatch" '
NR == FNR { base[$1 "|" $2] = $3; next }
{ key = $1 "|" $2; cur[key] = $3; name[key] = $1; metric[key] = $2; order[n++] = key }
END {
    printf "| benchmark | metric | baseline | current | delta |\n"
    printf "|---|---|---:|---:|---:|\n"
    fail = 0
    for (i = 0; i < n; i++) {
        key = order[i]
        if (!(key in base)) {
            printf "| %s | %s | - | %s | new |\n", name[key], metric[key], cur[key]
            continue
        }
        delta = (cur[key] - base[key]) / base[key] * 100
        mark = ""
        # Only the stable metrics gate: fsync and ack latencies are
        # disk-jittery and recorded for trend-watching, not CI failure.
        # ns/op additionally requires a matching CPU shape between the
        # two reports (see the mismatch banner above).
        gated = (metric[key] == "bytes/rec" || (metric[key] == "ns/op" && cpumatch))
        if (gated && cur[key] > base[key] * 1.25) { mark = " **REGRESSION**"; fail = 1 }
        else if (metric[key] == "ns/op" && !cpumatch && cur[key] > base[key] * 1.25)
            mark = " (ns/op not gated: cpu shape mismatch)"
        printf "| %s | %s | %s | %s | %+.1f%%%s |\n", name[key], metric[key], base[key], cur[key], delta, mark
    }
    for (key in base)
        if (!(key in cur)) {
            split(key, parts, "|")
            printf "| %s | %s | %s | - | removed |\n", parts[1], parts[2], base[key]
        }
    exit fail
}' <(extract "$baseline") <(extract "$current")
}

if [[ "${1:-}" == "compare" ]]; then
    baseline="${2:-BENCH_baseline.json}"
    benchtime="${3:-1x}"
    if [[ ! -f "$baseline" ]]; then
        echo "bench.sh: baseline $baseline not found" >&2
        exit 2
    fi
    fresh="$(mktemp -t bench-current.XXXXXX.json)"
    trap 'rm -f "$fresh"' EXIT
    run_bench "$fresh" "$benchtime"
    echo "### Benchmark comparison vs $baseline"
    if compare "$baseline" "$fresh"; then
        echo
        echo "No >25% regressions (ns/op or bytes/rec)."
    else
        echo
        echo "At least one benchmark regressed by >25% (ns/op or bytes/rec)." >&2
        exit 1
    fi
else
    out="${1:-BENCH_$(date -u +%Y%m%dT%H%M%SZ).json}"
    refuse_dirty_baseline "$out"
    run_bench "$out" "${2:-1x}"
fi

#!/usr/bin/env bash
# smoke_http.sh — end-to-end smoke test of `engine serve`: start a
# server on a free port over a fresh index, ingest the CLI testdata
# over HTTP, assert a search hit plus healthy /healthz and /stats, then
# SIGTERM the process and verify the shutdown snapshot is loadable by
# `engine search`. CI runs this after the unit tests; `make smoke`
# mirrors it locally.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d -t engine-smoke.XXXXXX)"
serve_pid=""
extra_pids=()
cleanup() {
    if [[ -n "$serve_pid" ]]; then
        kill -9 "$serve_pid" 2>/dev/null || true
    fi
    for pid in "${extra_pids[@]:-}"; do
        [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

# wait_addr OUTFILE — poll a serve process's stdout for the serving
# line and print the bound address, empty on timeout.
wait_addr() {
    local addr
    for _ in $(seq 1 100); do
        addr="$(grep -oE 'addr=[^[:space:]]+' "$1" 2>/dev/null | head -1 | cut -d= -f2 || true)"
        if [[ -n "$addr" ]]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo ""
}

go build -o "$tmp/engine" ./cmd/engine

index="$tmp/index.json"
"$tmp/engine" serve -addr 127.0.0.1:0 -d "$index" -snapshot-every 1s \
    >"$tmp/serve.out" 2>"$tmp/serve.err" &
serve_pid=$!

# Wait for the serving line and extract the bound address.
base=""
for _ in $(seq 1 100); do
    if addr="$(grep -oE 'addr=[^[:space:]]+' "$tmp/serve.out" | head -1 | cut -d= -f2)"; then
        if [[ -n "$addr" ]]; then
            base="http://$addr"
            break
        fi
    fi
    sleep 0.1
done
if [[ -z "$base" ]]; then
    echo "smoke: server never reported its address" >&2
    cat "$tmp/serve.err" >&2
    exit 1
fi

fail() {
    echo "smoke: $1" >&2
    cat "$tmp/serve.err" >&2
    exit 1
}

curl -fsS "$base/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

# Ingest the CLI testdata. The files are single-line plain text with no
# JSON metacharacters, so embedding them in a JSON string is safe.
payload() { tr -d '\n' <"$1"; }
body="$(printf '{"records": [{"name": "alpha.txt", "data": "%s"}, {"name": "beta.txt", "data": "%s"}, {"name": "gamma.txt", "data": "%s"}]}' \
    "$(payload cmd/engine/testdata/alpha.txt)" \
    "$(payload cmd/engine/testdata/beta.txt)" \
    "$(payload cmd/engine/testdata/gamma.txt)")"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "$base/v1/records" \
    | grep -q '"added":3' || fail "ingest did not add 3 records"

# A near-duplicate of alpha.txt must come back as the top hit.
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"name": "q", "data": "the quick brown fox jumps over the lazy dog and keeps running through the quiet forest until dusk", "k": 2}' \
    "$base/v1/search" | grep -q '"ref":"alpha.txt"' || fail "search did not hit alpha.txt"

curl -fsS "$base/v1/records/beta.txt" | grep -q '"name":"beta.txt"' || fail "record lookup failed"
curl -fsS "$base/stats" | grep -q '"records_added":3' || fail "stats did not count the ingest"

# Graceful shutdown on SIGTERM: the process must exit 0 and leave a
# snapshot the CLI can search. The query file keeps its trailing
# newline (the HTTP ingest stripped it), so beta.txt matches itself at
# rank 1 and the cross-file hit alpha.txt lands in the top 2.
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    fail "serve exited nonzero after SIGTERM"
fi
serve_pid=""

out="$("$tmp/engine" search -d "$index" -top 2 cmd/engine/testdata/beta.txt)"
grep -q 'alpha.txt' <<<"$out" || fail "snapshot left by SIGTERM is not searchable"

# ---------------------------------------------------------------------
# Phase 2: durability. A tiered server is SIGKILLed — no drain, no
# shutdown snapshot — after acknowledged adds and a delete; reopening
# the data directory must replay the WAL to exactly the acked state.
datadir="$tmp/tiered"
"$tmp/engine" serve -addr 127.0.0.1:0 -tiered -data-dir "$datadir" -snapshot-every 1h \
    >"$tmp/serve2.out" 2>"$tmp/serve2.err" &
serve_pid=$!

base=""
for _ in $(seq 1 100); do
    if addr="$(grep -oE 'addr=[^[:space:]]+' "$tmp/serve2.out" | head -1 | cut -d= -f2)"; then
        if [[ -n "$addr" ]]; then
            base="http://$addr"
            break
        fi
    fi
    sleep 0.1
done
if [[ -z "$base" ]]; then
    echo "smoke: tiered server never reported its address" >&2
    cat "$tmp/serve2.err" >&2
    exit 1
fi
fail2() {
    echo "smoke: $1" >&2
    cat "$tmp/serve2.err" >&2
    exit 1
}

curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "$base/v1/records" \
    | grep -q '"added":3' || fail2 "tiered ingest did not add 3 records"

# Delete one record and verify the error envelope on a second try.
curl -fsS -X DELETE "$base/v1/records/gamma.txt" \
    | grep -q '"deleted":"gamma.txt"' || fail2 "delete did not ack"
code="$(curl -s -o "$tmp/del2.json" -w '%{http_code}' -X DELETE "$base/v1/records/gamma.txt")"
[[ "$code" == "404" ]] || fail2 "second delete returned $code, want 404"
grep -q '"code":"not_found"' "$tmp/del2.json" || fail2 "404 body is not the error envelope"

# One more acked add after the delete, then sample /metrics.
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"records": [{"name": "delta.txt", "data": "an entirely different payload that only exists in the write-ahead log"}]}' \
    "$base/v1/records" | grep -q '"added":1' || fail2 "post-delete ingest failed"
# Capture /metrics before grepping: `curl | grep -q` races under
# pipefail (grep exits at first match, curl dies on EPIPE mid-body).
metrics="$(curl -fsS "$base/metrics")"
grep -q '^sketchengine_wal_appends_total' <<<"$metrics" || fail2 "/metrics has no WAL counters"
grep -q 'sketchengine_deletes_total 1' <<<"$metrics" || fail2 "/metrics did not count the delete"

# The crash: SIGKILL, so nothing gets to flush except what the WAL
# already holds from the per-request acks.
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

out="$("$tmp/engine" search -data-dir "$datadir" -top 3 cmd/engine/testdata/alpha.txt)"
grep -q 'alpha.txt' <<<"$out" || fail2 "acked record lost in the crash"
if grep -q 'gamma.txt' <<<"$out"; then
    fail2 "deleted record resurrected by WAL replay"
fi
out="$("$tmp/engine" search -data-dir "$datadir" -top 3 cmd/engine/testdata/beta.txt)"
grep -q 'beta.txt' <<<"$out" || fail2 "acked record beta.txt lost in the crash"
# delta.txt was acked after the last snapshot: it lives only in the
# WAL, so finding it proves the replay path end to end.
echo "an entirely different payload that only exists in the write-ahead log" >"$tmp/delta-query.txt"
out="$("$tmp/engine" search -data-dir "$datadir" -top 1 "$tmp/delta-query.txt")"
grep -q 'delta.txt' <<<"$out" || fail2 "WAL-only record delta.txt lost in the crash"

# ---------------------------------------------------------------------
# Phase 3: cluster. Three single-node backends behind one coordinator
# at replication=2: ingest and search through the coordinator, then
# SIGKILL a backend and assert the planted hit still comes back full —
# every record kept a live replica, so nothing may degrade to partial.
backend_addrs=()
for i in 1 2 3; do
    "$tmp/engine" serve -addr 127.0.0.1:0 -d "$tmp/backend$i.json" -snapshot-every 0 \
        >"$tmp/backend$i.out" 2>"$tmp/backend$i.err" &
    extra_pids+=($!)
done
for i in 1 2 3; do
    addr="$(wait_addr "$tmp/backend$i.out")"
    if [[ -z "$addr" ]]; then
        echo "smoke: backend $i never reported its address" >&2
        cat "$tmp/backend$i.err" >&2
        exit 1
    fi
    backend_addrs+=("$addr")
done

"$tmp/engine" serve -coordinator \
    -backends "$(IFS=,; echo "${backend_addrs[*]}")" -replication 2 \
    -addr 127.0.0.1:0 -health-every 250ms \
    >"$tmp/coord.out" 2>"$tmp/coord.err" &
serve_pid=$!

addr="$(wait_addr "$tmp/coord.out")"
if [[ -z "$addr" ]]; then
    echo "smoke: coordinator never reported its address" >&2
    cat "$tmp/coord.err" >&2
    exit 1
fi
base="http://$addr"
fail3() {
    echo "smoke: $1" >&2
    cat "$tmp/coord.err" >&2
    exit 1
}

grep -q 'coordinator=true' "$tmp/coord.out" || fail3 "serving line does not announce coordinator mode"
curl -fsS "$base/healthz" | grep -q '"status":"ok"' || fail3 "coordinator healthz not ok"

curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "$base/v1/records" \
    | grep -q '"added":3' || fail3 "coordinator ingest did not add 3 records"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"name": "q", "data": "the quick brown fox jumps over the lazy dog and keeps running through the quiet forest until dusk", "k": 2}' \
    "$base/v1/search" | grep -q '"ref":"alpha.txt"' || fail3 "coordinator search did not hit alpha.txt"
curl -fsS "$base/v1/records/beta.txt" | grep -q '"name":"beta.txt"' || fail3 "coordinator record lookup failed"

# The kill: one backend dies mid-service. With replication=2 every
# record still has a live replica, so the same search must return the
# planted hit with no "partial" degradation flag.
kill -9 "${extra_pids[0]}"
wait "${extra_pids[0]}" 2>/dev/null || true
post_kill="$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"name": "q", "data": "the quick brown fox jumps over the lazy dog and keeps running through the quiet forest until dusk", "k": 2}' \
    "$base/v1/search")" || fail3 "search errored after a backend SIGKILL"
grep -q '"ref":"alpha.txt"' <<<"$post_kill" || fail3 "planted hit lost after a backend SIGKILL"
if grep -q '"partial":true' <<<"$post_kill"; then
    fail3 "one dead backend of three must not degrade the search to partial"
fi
stats="$(curl -fsS "$base/stats")"
grep -q '"retries":' <<<"$stats" || fail3 "coordinator stats missing retry counter"
metrics="$(curl -fsS "$base/metrics")"
grep -q '^sketchengine_cluster_requests_total' <<<"$metrics" || fail3 "coordinator /metrics missing cluster counters"

# ---------------------------------------------------------------------
# Phase 4: self-healing replication. Three fresh backends behind a
# coordinator at replication=3 with durable hints. SIGKILL one backend,
# ingest through the degraded window (quorum 2/3 holds, the miss is
# hinted), restart the backend on its old port, and wait for the hint
# drainer to replay. The acked record must then be readable from the
# recovered backend DIRECTLY — no coordinator, no manual repair.
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
for pid in "${extra_pids[@]:-}"; do
    [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
done
extra_pids=()

heal_addrs=()
for i in 1 2 3; do
    "$tmp/engine" serve -addr 127.0.0.1:0 -d "$tmp/heal$i.json" -snapshot-every 1s \
        >"$tmp/heal$i.out" 2>"$tmp/heal$i.err" &
    extra_pids+=($!)
done
for i in 1 2 3; do
    addr="$(wait_addr "$tmp/heal$i.out")"
    if [[ -z "$addr" ]]; then
        echo "smoke: heal backend $i never reported its address" >&2
        cat "$tmp/heal$i.err" >&2
        exit 1
    fi
    heal_addrs+=("$addr")
done

"$tmp/engine" serve -coordinator \
    -backends "$(IFS=,; echo "${heal_addrs[*]}")" -replication 3 \
    -hints-dir "$tmp/hints" -health-every 100ms \
    -addr 127.0.0.1:0 \
    >"$tmp/coord2.out" 2>"$tmp/coord2.err" &
serve_pid=$!

addr="$(wait_addr "$tmp/coord2.out")"
if [[ -z "$addr" ]]; then
    echo "smoke: self-heal coordinator never reported its address" >&2
    cat "$tmp/coord2.err" >&2
    exit 1
fi
base="http://$addr"
fail4() {
    echo "smoke: $1" >&2
    cat "$tmp/coord2.err" >&2
    exit 1
}

curl -fsS "$base/healthz" | grep -q '"status":"ok"' || fail4 "self-heal cluster healthz not ok"

# The outage: backend 1 dies, hard.
victim_pid="${extra_pids[0]}"
victim_addr="${heal_addrs[0]}"
kill -9 "$victim_pid"
wait "$victim_pid" 2>/dev/null || true

# Ingest through the degraded window: 2/3 replicas ack (the quorum), the
# third miss becomes a durable hint.
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"records": [{"name": "omega.txt", "data": "a record acked while one of its three replicas was dead"}]}' \
    "$base/v1/records" | grep -q '"added":1' || fail4 "ingest through the outage did not ack"
curl -fsS "$base/stats" | grep -q '"queued":1' || fail4 "the missed write was not hinted"
ls "$tmp/hints"/*.hint >/dev/null 2>&1 || fail4 "no durable hint file on disk"

# Recovery: same port, same index file, no operator involvement beyond
# the restart itself.
"$tmp/engine" serve -addr "$victim_addr" -d "$tmp/heal1.json" -snapshot-every 1s \
    >"$tmp/heal1b.out" 2>"$tmp/heal1b.err" &
extra_pids+=($!)
[[ -n "$(wait_addr "$tmp/heal1b.out")" ]] || fail4 "victim backend did not come back on $victim_addr"

# The hint drainer notices the backend is back and replays. Poll the
# coordinator until the hint queue is empty.
drained=""
for _ in $(seq 1 100); do
    if curl -fsS "$base/stats" | grep -q '"pending":0'; then
        drained=1
        break
    fi
    sleep 0.2
done
[[ -n "$drained" ]] || fail4 "hint queue never drained after the backend recovered"

# The proof: the record acked during the outage, read from the recovered
# replica itself.
curl -fsS "http://$victim_addr/v1/records/omega.txt" \
    | grep -q '"name":"omega.txt"' || fail4 "recovered backend cannot serve the write it missed"

# ---------------------------------------------------------------------
# Phase 5: resilience under injected faults. Replace the coordinator
# with one that has -fault-spec armed: every outgoing backend call rolls
# for an injected 5xx or added latency. Traffic through that coordinator
# must still converge — ingest acks (retried by the client on quorum
# failure, which is the documented contract), searches return the
# planted hit with no partial flag, and the armed faults are advertised
# in /stats and /metrics. Also proves the deadline path: an already-
# expired X-Sketch-Deadline gets an explicit 504, never a truncation.
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

"$tmp/engine" serve -coordinator \
    -backends "$(IFS=,; echo "${heal_addrs[*]}")" -replication 3 \
    -health-every 100ms -addr 127.0.0.1:0 \
    -fault-spec 'backend.rt:delay=5ms@0.3;backend.rt:error=0.1' -fault-seed 42 \
    >"$tmp/coord3.out" 2>"$tmp/coord3.err" &
serve_pid=$!

addr="$(wait_addr "$tmp/coord3.out")"
if [[ -z "$addr" ]]; then
    echo "smoke: chaos coordinator never reported its address" >&2
    cat "$tmp/coord3.err" >&2
    exit 1
fi
base="http://$addr"
fail5() {
    echo "smoke: $1" >&2
    cat "$tmp/coord3.err" >&2
    exit 1
}

grep -q 'FAULT INJECTION ARMED' "$tmp/coord3.err" || fail5 "armed fault spec was not announced on stderr"

# Ingest through the faults. A roll of injected errors can fail quorum
# for a record (502 quorum_failed) — acked records are never rolled
# back, so the client-side retry loop below is the documented recovery.
ingested=""
for _ in $(seq 1 10); do
    code="$(curl -s -o "$tmp/chaos-ingest.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' -d "$body" "$base/v1/records")"
    if [[ "$code" == "200" ]] && grep -q '"added":3' "$tmp/chaos-ingest.json"; then
        ingested=1
        break
    fi
    grep -q '"code":"quorum_failed"\|"code":"backend_down"' "$tmp/chaos-ingest.json" \
        || fail5 "chaos ingest failed with an unexpected body: $(cat "$tmp/chaos-ingest.json")"
    sleep 0.2
done
[[ -n "$ingested" ]] || fail5 "ingest never reached quorum through the injected faults"

# Searches through the fault window: with replication=3 every live
# backend holds every record, so a response may only be partial if ALL
# backends fail — injected errors must be absorbed by the retry wave.
for i in $(seq 1 10); do
    out="$(curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"name": "q", "data": "the quick brown fox jumps over the lazy dog and keeps running through the quiet forest until dusk", "k": 2}' \
        "$base/v1/search")" || fail5 "chaos search $i errored outright"
    grep -q '"ref":"alpha.txt"' <<<"$out" || fail5 "chaos search $i lost the planted hit"
    if grep -q '"partial":true' <<<"$out"; then
        fail5 "chaos search $i degraded to partial despite replication=3"
    fi
done

# An expired deadline is an explicit 504, straight from a backend.
code="$(curl -s -o "$tmp/deadline.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' -H 'X-Sketch-Deadline: 1' \
    -d '{"name": "q", "data": "whatever", "k": 1}' "http://${heal_addrs[1]}/v1/search")"
[[ "$code" == "504" ]] || fail5 "expired deadline returned $code, want 504"
grep -q '"code":"deadline_exceeded"' "$tmp/deadline.json" || fail5 "504 body is not the deadline envelope"

# The armed spec and its injection counts are observable.
stats="$(curl -fsS "$base/stats")"
grep -q '"faults":{' <<<"$stats" || fail5 "/stats does not advertise the armed fault spec"
grep -q '"retry_budget":{' <<<"$stats" || fail5 "/stats missing the retry budget block"
metrics="$(curl -fsS "$base/metrics")"
grep -q '^sketchengine_fault_spec_armed 1' <<<"$metrics" || fail5 "/metrics missing the armed-spec gauge"
grep -q '^sketchengine_fault_injections_total' <<<"$metrics" || fail5 "/metrics missing injection counters after traffic"
grep -q '^sketchengine_cluster_backend_breaker_state' <<<"$metrics" || fail5 "/metrics missing breaker state series"

echo "smoke: ok"

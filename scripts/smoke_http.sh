#!/usr/bin/env bash
# smoke_http.sh — end-to-end smoke test of `engine serve`: start a
# server on a free port over a fresh index, ingest the CLI testdata
# over HTTP, assert a search hit plus healthy /healthz and /stats, then
# SIGTERM the process and verify the shutdown snapshot is loadable by
# `engine search`. CI runs this after the unit tests; `make smoke`
# mirrors it locally.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d -t engine-smoke.XXXXXX)"
serve_pid=""
cleanup() {
    if [[ -n "$serve_pid" ]]; then
        kill -9 "$serve_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/engine" ./cmd/engine

index="$tmp/index.json"
"$tmp/engine" serve -addr 127.0.0.1:0 -d "$index" -snapshot-every 1s \
    >"$tmp/serve.out" 2>"$tmp/serve.err" &
serve_pid=$!

# Wait for the serving line and extract the bound address.
base=""
for _ in $(seq 1 100); do
    if addr="$(grep -oE 'addr=[^[:space:]]+' "$tmp/serve.out" | head -1 | cut -d= -f2)"; then
        if [[ -n "$addr" ]]; then
            base="http://$addr"
            break
        fi
    fi
    sleep 0.1
done
if [[ -z "$base" ]]; then
    echo "smoke: server never reported its address" >&2
    cat "$tmp/serve.err" >&2
    exit 1
fi

fail() {
    echo "smoke: $1" >&2
    cat "$tmp/serve.err" >&2
    exit 1
}

curl -fsS "$base/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

# Ingest the CLI testdata. The files are single-line plain text with no
# JSON metacharacters, so embedding them in a JSON string is safe.
payload() { tr -d '\n' <"$1"; }
body="$(printf '{"records": [{"name": "alpha.txt", "data": "%s"}, {"name": "beta.txt", "data": "%s"}, {"name": "gamma.txt", "data": "%s"}]}' \
    "$(payload cmd/engine/testdata/alpha.txt)" \
    "$(payload cmd/engine/testdata/beta.txt)" \
    "$(payload cmd/engine/testdata/gamma.txt)")"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "$base/v1/records" \
    | grep -q '"added":3' || fail "ingest did not add 3 records"

# A near-duplicate of alpha.txt must come back as the top hit.
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"name": "q", "data": "the quick brown fox jumps over the lazy dog and keeps running through the quiet forest until dusk", "k": 2}' \
    "$base/v1/search" | grep -q '"ref":"alpha.txt"' || fail "search did not hit alpha.txt"

curl -fsS "$base/v1/records/beta.txt" | grep -q '"name":"beta.txt"' || fail "record lookup failed"
curl -fsS "$base/stats" | grep -q '"records_added":3' || fail "stats did not count the ingest"

# Graceful shutdown on SIGTERM: the process must exit 0 and leave a
# snapshot the CLI can search. The query file keeps its trailing
# newline (the HTTP ingest stripped it), so beta.txt matches itself at
# rank 1 and the cross-file hit alpha.txt lands in the top 2.
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    fail "serve exited nonzero after SIGTERM"
fi
serve_pid=""

"$tmp/engine" search -d "$index" -top 2 cmd/engine/testdata/beta.txt \
    | grep -q 'alpha.txt' || fail "snapshot left by SIGTERM is not searchable"

echo "smoke: ok"

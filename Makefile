# Local targets mirror .github/workflows/ci.yml so CI and dev runs are
# identical.

GO ?= go

.PHONY: all build vet test bench bench-json lint clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x ./...

bench-json:
	./scripts/bench.sh

lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

clean:
	$(GO) clean ./...
	rm -f bench_*.json BENCH_*.json

# Local targets mirror .github/workflows/ci.yml so CI and dev runs are
# identical.

GO ?= go

.PHONY: all build vet test cover bench bench-json bench-compare smoke chaos lint linkcheck clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { exit (t + 0 >= 70 ? 0 : 1) }' || \
		{ echo "total coverage $$total% is below the 70% floor"; exit 1; }

bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x ./...

bench-json:
	./scripts/bench.sh

bench-compare:
	./scripts/bench.sh compare BENCH_baseline.json

smoke:
	./scripts/smoke_http.sh

# Failure matrix under the race detector: 25 pinned fault schedules
# plus one rotating seed. Reproduce a CI failure with
# `CHAOS_SEED=<n> make chaos`.
chaos:
	CHAOS_SEED=$${CHAOS_SEED:-$$RANDOM} $(GO) test -race -count=1 -run 'TestFailureMatrix' -v ./internal/cluster

linkcheck:
	./scripts/check_links.sh

lint: linkcheck
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

clean:
	$(GO) clean ./...
	rm -f bench_*.json cover.out
	find . -maxdepth 1 -name 'BENCH_*.json' ! -name 'BENCH_baseline.json' -delete
